// Clean fixture mirroring internal/cluster's actual seams: shard
// health flips on consecutive-failure counts and heals via every-Nth
// arrival probes (no clocks anywhere in the decision), fan-out legs
// inherit the request context so deadlines and trace parentage
// survive the scatter, and state dumps collect shard IDs into a slice
// sorted before printing.
package good

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
)

type shard struct {
	consecFails atomic.Int64
	probeTick   atomic.Uint64
}

// healthy is a pure counter comparison: the same request sequence
// downs and heals shards at the same ordinals on every machine.
func (s *shard) healthy(threshold int64) bool {
	return s.consecFails.Load() < threshold
}

// shouldProbe admits every Nth arrival to a down shard — request
// arrival order, not elapsed time, drives healing.
func (s *shard) shouldProbe(every uint64) bool {
	return s.probeTick.Add(1)%every == 0
}

// scatter threads the caller's context through every leg: the
// request's deadline bounds the slowest shard and per-shard spans
// parent into its trace.
func scatter(ctx context.Context, legs []func(context.Context) error) {
	for _, leg := range legs {
		go leg(ctx)
	}
}

// dumpState sorts shard IDs before rendering, so the report is stable
// run to run.
func dumpState(byID map[int]*shard) {
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("shard %d: fails=%d\n", id, byID[id].consecFails.Load())
	}
}

var (
	_ = (*shard).healthy
	_ = (*shard).shouldProbe
	_ = scatter
	_ = dumpState
)
