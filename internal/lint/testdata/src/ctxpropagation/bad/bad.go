// Violating fixture for the ctx-propagation rule.
package bad

import "context"

func lookup(ctx context.Context, id int) error { return ctx.Err() }

// fetch receives a context but mints a fresh one instead of forwarding.
func fetch(ctx context.Context, id int) error {
	return lookup(context.Background(), id) // want ctx-propagation
}

// refresh has no context and is not allowlisted, so Background is
// banned outside main packages.
func refresh() error {
	return lookup(context.TODO(), 7) // want ctx-propagation
}
