// Clean fixture for the ctx-propagation rule.
package good

import "context"

func lookup(ctx context.Context, id int) error { return ctx.Err() }

// fetch forwards the context it received.
func fetch(ctx context.Context, id int) error {
	return lookup(ctx, id)
}

// derive may build on the received context.
func derive(ctx context.Context, id int) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return lookup(sub, id)
}

// allowed models the engine's legacy compat wrappers: the test config
// puts it on the ctx allowlist.
func allowed(id int) error {
	return lookup(context.Background(), id)
}
