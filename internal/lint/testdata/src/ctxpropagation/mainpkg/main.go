// Clean fixture for the ctx-propagation rule: main packages own the
// root context, so Background is allowed without an allowlist entry.
package main

import "context"

func run(ctx context.Context) error { return ctx.Err() }

func main() {
	if err := run(context.Background()); err != nil {
		panic(err)
	}
}
