// Violating fixture for the determinism rule: wall-clock reads,
// math/rand, and map iteration feeding an output sink.
package bad

import (
	"fmt"
	"math/rand" // want determinism
	"time"
)

func seed() int64 {
	return time.Now().UnixNano() // want determinism
}

func shuffle(n int) []int {
	return rand.Perm(n)
}

func report(scores map[string]float64) {
	for name, s := range scores { // want determinism
		fmt.Printf("%s=%.3f\n", name, s)
	}
}

var _ = seed
var _ = shuffle
var _ = report
