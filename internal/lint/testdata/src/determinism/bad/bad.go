// Violating fixture for the determinism rule: wall-clock reads,
// math/rand, and map iteration feeding an output sink.
package bad

import (
	"fmt"
	"math/rand" // want determinism
	"time"
)

func seed() int64 {
	return time.Now().UnixNano() // want determinism
}

func shuffle(n int) []int {
	return rand.Perm(n)
}

func report(scores map[string]float64) {
	for name, s := range scores { // want determinism
		fmt.Printf("%s=%.3f\n", name, s)
	}
}

// backoff derives retry jitter from the wall clock: two runs of the
// same failing test back off differently, so the failure cannot be
// replayed. The resilience layer must draw jitter from a seeded
// internal/rng stream instead.
func backoff(base time.Duration) time.Duration {
	return base/2 + time.Duration(time.Now().UnixNano()%int64(base/2)) // want determinism
}

var _ = seed
var _ = shuffle
var _ = report
var _ = backoff
