// Clean fixture for the determinism rule: randomness routes through
// internal/rng, and map iteration only accumulates — emission happens
// in sorted key order.
package good

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

func draw(seed uint64, n int) int {
	return rng.New(seed).Intn(n)
}

func report(scores map[string]float64) {
	names := make([]string, 0, len(scores))
	for name := range scores {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%s=%.3f\n", name, scores[name])
	}
}

var _ = draw
var _ = report
