// Clean fixture for the determinism rule: randomness routes through
// internal/rng, and map iteration only accumulates — emission happens
// in sorted key order.
package good

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/rng"
)

func draw(seed uint64, n int) int {
	return rng.New(seed).Intn(n)
}

func report(scores map[string]float64) {
	names := make([]string, 0, len(scores))
	for name := range scores {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%s=%.3f\n", name, scores[name])
	}
}

// backoff derives retry jitter from a seeded stream, the pattern
// internal/resilience uses: reproducible from the seed, yet still
// spreading concurrent retries apart.
func backoff(r *rng.RNG, base time.Duration) time.Duration {
	return base/2 + time.Duration(r.Float64()*float64(base/2))
}

var _ = draw
var _ = report
var _ = backoff
