// Directive-etiquette fixture: an ignore without a reason and an
// ignore naming an unknown rule are themselves findings, and neither
// suppresses anything.
package bad

import "strconv"

func missingReason(s string) int {
	//lint:ignore dropped-error
	n, _ := strconv.Atoi(s)
	return n
}

func unknownRule(s string) int {
	//lint:ignore no-such-rule because I said so
	n, _ := strconv.Atoi(s)
	return n
}

var _ = missingReason
var _ = unknownRule
