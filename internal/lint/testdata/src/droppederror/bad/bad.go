// Violating fixture for the dropped-error rule.
package bad

import (
	"fmt"
	"io"
	"strconv"
)

func parse(s string) int {
	n, _ := strconv.Atoi(s) // want dropped-error
	return n
}

func emit(w io.Writer) {
	_, _ = fmt.Fprintln(w, "total") // want dropped-error
}

func shut(c io.Closer) {
	_ = c.Close() // want dropped-error
}

var _ = parse
var _ = emit
var _ = shut
