// Clean fixture for the dropped-error rule: errors are handled, and
// blank discards of non-error values stay legal.
package good

import (
	"fmt"
	"io"
	"strconv"
)

func parse(s string) (int, error) {
	return strconv.Atoi(s)
}

func emit(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "total"); err != nil {
		return err
	}
	return nil
}

// first discards a bool, which is fine.
func first(m map[string]int) int {
	v, _ := m["k"]
	return v
}

var _ = parse
var _ = emit
var _ = first
