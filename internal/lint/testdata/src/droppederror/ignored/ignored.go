// Suppression fixture: both placement forms of //lint:ignore — the
// line above and inline — silence the dropped-error rule.
package ignored

import "strconv"

func lenient(s string) int {
	//lint:ignore dropped-error zero is the documented fallback for unparsable input
	n, _ := strconv.Atoi(s)
	return n
}

func inline(s string) int {
	n, _ := strconv.Atoi(s) //lint:ignore dropped-error zero is the documented fallback
	return n
}

var _ = lenient
var _ = inline
