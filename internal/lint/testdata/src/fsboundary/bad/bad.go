// Violating fixture for the fs-boundary rule: a serving package
// writing straight to the filesystem. Every one of these calls
// bypasses the durability layer — no fsync policy, no atomic-rename
// protocol, no crash-recovery coverage — so a crash can leave state
// the write-ahead log knows nothing about.
package bad

import "os"

func dumpProfile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want fs-boundary
}

func ensureDir(dir string) error {
	return os.MkdirAll(dir, 0o755) // want fs-boundary
}

func spill(path string, data []byte) error {
	f, err := os.Create(path) // want fs-boundary
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil { // want fs-boundary
		return err
	}
	if err := f.Sync(); err != nil { // want fs-boundary
		return err
	}
	return f.Close()
}

func swap(tmp, final string) error {
	return os.Rename(tmp, final) // want fs-boundary
}

func drop(path string) error {
	return os.Remove(path) // want fs-boundary
}

var (
	_ = dumpProfile
	_ = ensureDir
	_ = spill
	_ = swap
	_ = drop
)
