// Clean fixture for the fs-boundary rule: reads are free everywhere,
// and persistent writes route through an injected filesystem seam
// (the wal.FS pattern) so the durability layer's fsync policy and
// crash recovery cover them.
package good

import (
	"io"
	"os"
)

// FS is the injected boundary, shaped like wal.FS: the durability
// package hands this out; serving code never names os on a write.
type FS interface {
	Create(name string) (io.WriteCloser, error)
	Rename(oldname, newname string) error
}

func persist(fs FS, name string, data []byte) error {
	f, err := fs.Create(name + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(name+".tmp", name)
}

// Reading is not a durability hazard: recovery never depends on what
// this function saw.
func load(path string) ([]byte, error) {
	return os.ReadFile(path)
}

func inspect(path string) (int64, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

var (
	_ = persist
	_ = load
	_ = inspect
)
