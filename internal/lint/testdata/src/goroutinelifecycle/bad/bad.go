// Violating fixture for the goroutine-lifecycle rule: go statements
// with no recover guard anywhere in reach, or with a guard but no way
// for the outside world to stop them.
package bad

func work() {
	for i := 0; i < 100; i++ {
		_ = i * i
	}
}

func spawnNaked() {
	go work() // want goroutine-lifecycle
}

func spawnLit() {
	go func() { // want goroutine-lifecycle
		work()
	}()
}

func spawnNoCancel() {
	go func() { // want goroutine-lifecycle
		defer func() {
			if r := recover(); r != nil {
				_ = r
			}
		}()
		for {
			work()
		}
	}()
}

// guardedSpin installs its own recover guard but offers no
// cancellation path — the spawn is supervised yet unbounded.
func guardedSpin() {
	defer func() {
		_ = recover()
	}()
	for {
		work()
	}
}

func spawnGuardedNoCancel() {
	go guardedSpin() // want goroutine-lifecycle
}
