// Conforming fixture for the goroutine-lifecycle rule: every spawn is
// either WaitGroup-awaited, guarded and context- or channel-bounded,
// guarded transitively through a named callee, or launched from an
// allowlisted supervisor.
package good

import (
	"context"
	"sync"
)

func step() {}

// waited: structured concurrency — the WaitGroup bound counts as both
// supervision and cancellation (the goroutine's lifetime nests inside
// its caller's).
func waited() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		step()
	}()
	wg.Wait()
}

// guardedCtx: direct defer-recover plus a select on ctx.Done.
func guardedCtx(ctx context.Context) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				_ = r
			}
		}()
		select {
		case <-ctx.Done():
		default:
			step()
		}
	}()
}

// stopChan: a quit-channel receive is a cancellation path.
func stopChan(stop chan struct{}) {
	go func() {
		defer func() {
			_ = recover()
		}()
		<-stop
	}()
}

// guardedHelper installs the guard that runGuarded's goroutine relies
// on through a plain call edge.
func guardedHelper() {
	defer func() {
		_ = recover()
	}()
	step()
}

func runGuarded(ctx context.Context) {
	_ = ctx
	guardedHelper()
}

// reachableGuard: the spawned named function reaches a recover guard
// through the call graph, and the ctx argument bounds it.
func reachableGuard(ctx context.Context) {
	go runGuarded(ctx)
}

// spin has neither guard nor bound; allowlisted below is registered in
// Config.GoroutineAllowlist by the test, standing in for the engine's
// retrainAsync supervisor pattern.
func spin() {
	for {
		step()
	}
}

func allowlisted() {
	go spin()
}
