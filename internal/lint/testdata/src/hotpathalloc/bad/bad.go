// Violating fixture for the hot-path-alloc rule: the three allocation
// patterns it polices, inside stage functions on the read path.
package bad

import "fmt"

type entry struct{ id string }

func stageFormat(items []entry) []string {
	out := []string{}
	for _, it := range items {
		label := fmt.Sprintf("item-%s", it.id) // want hot-path-alloc
		out = append(out, label)               // want hot-path-alloc
	}
	return out
}

func stageTable(items []entry) int {
	weights := map[string]int{"a": 1, "b": 2} // want hot-path-alloc
	total := 0
	for _, it := range items {
		total += weights[it.id]
	}
	return total
}
