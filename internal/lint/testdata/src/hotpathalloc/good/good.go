// Conforming fixture for the hot-path-alloc rule: capacity-hinted
// appends, strconv instead of fmt, appends to slices the function did
// not create, and formatting outside stage functions.
package good

import (
	"fmt"
	"strconv"
)

type entry struct{ id int }

func stagePresized(items []entry) []string {
	out := make([]string, 0, len(items))
	for _, it := range items {
		out = append(out, strconv.Itoa(it.id))
	}
	return out
}

// stageAppendToParam extends a caller-owned slice; the heuristic only
// charges allocations to slices the function visibly creates.
func stageAppendToParam(dst []string, items []entry) []string {
	for _, it := range items {
		dst = append(dst, strconv.Itoa(it.id))
	}
	return dst
}

// describe is not a stage function, so formatting here is fine.
func describe(e entry) string {
	return fmt.Sprintf("entry-%d", e.id)
}
