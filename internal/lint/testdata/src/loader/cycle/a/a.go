// Half of an import cycle: a → b → a. The loader must diagnose the
// chain instead of recursing forever.
package a

import b "repro/internal/lint/testdata/src/loader/cycle/b"

const A = b.B + 1
