// The other half of the a → b → a import cycle.
package b

import a "repro/internal/lint/testdata/src/loader/cycle/a"

const B = a.A + 1
