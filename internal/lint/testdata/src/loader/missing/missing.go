// Imports a module package that does not exist; the loader must turn
// that into a diagnostic instead of a panic.
package missing

import "repro/internal/lint/testdata/src/loader/doesnotexist"

var _ = doesnotexist.Nothing
