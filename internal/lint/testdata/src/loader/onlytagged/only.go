//go:build neverbuildme

// Every file in this package is excluded by its build constraint; the
// loader should report NoFilesError, not a parse or type error.
package onlytagged

const Unreachable = 1
