//go:build neverbuildme

package tagged

const flavor = "tagged-out"
