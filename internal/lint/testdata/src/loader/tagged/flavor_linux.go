package tagged

const flavor = "linux"
