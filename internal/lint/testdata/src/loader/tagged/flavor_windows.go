package tagged

const flavor = "windows"
