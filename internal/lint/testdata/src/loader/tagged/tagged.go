// Build-constraint fixture: flavor is declared once per GOOS file and
// once in a tag-excluded file. If the loader's constraint filtering
// breaks, the duplicate declarations make type-checking fail loudly.
package tagged

func Flavor() string { return flavor }
