// Violating fixture for the lock-in-read-path rule: stage functions
// acquire mutexes, directly and through an embedded promotion.
package bad

import (
	"context"
	"sync"
)

type Request struct{}

type Response struct{ N int }

type shared struct {
	sync.RWMutex
	mu sync.Mutex
	n  int
}

var state shared

func stageCount(ctx context.Context, req *Request) (*Response, error) {
	state.mu.Lock() // want lock-in-read-path
	n := state.n
	state.mu.Unlock()
	return &Response{N: n}, nil
}

func stagePeek(ctx context.Context, req *Request) (*Response, error) {
	state.RLock() // want lock-in-read-path
	defer state.RUnlock()
	return &Response{N: state.n}, nil
}
