// Clean fixture for the lock-in-read-path rule: stages stay
// lock-free; the write path may lock freely.
package good

import (
	"context"
	"sync"
	"sync/atomic"
)

type Request struct{}

type Response struct{ N int }

var (
	mu      sync.Mutex
	pending int
	served  atomic.Int64
)

func stageServe(ctx context.Context, req *Request) (*Response, error) {
	return &Response{N: int(served.Add(1))}, nil
}

// enqueue is the write path; locking here is fine.
func enqueue(n int) {
	mu.Lock()
	defer mu.Unlock()
	pending += n
}
