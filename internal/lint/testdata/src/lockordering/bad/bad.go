// Violating fixture for the lock-ordering rule: three independent
// two-lock cycles — a same-function textual inversion, an inversion
// through a callee (the acquisition summary), and a sync.Mutex vs
// module chan-mutex inversion. Each cycle is reported once, at its
// earliest witness edge.
package bad

import "sync"

type server struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *server) ab() {
	s.a.Lock()
	s.b.Lock() // want lock-ordering
	s.b.Unlock()
	s.a.Unlock()
}

func (s *server) ba() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}

type pair struct {
	x sync.Mutex
	y sync.Mutex
}

func (p *pair) takeY() {
	p.y.Lock()
	defer p.y.Unlock()
}

func (p *pair) xThenY() {
	p.x.Lock()
	defer p.x.Unlock()
	p.takeY() // want lock-ordering
}

func (p *pair) yThenX() {
	p.y.Lock()
	defer p.y.Unlock()
	p.x.Lock()
	p.x.Unlock()
}

// chMutex mirrors the cluster router's channel-backed mutex; the rule
// recognises it by name and by its lock/unlock protocol.
type chMutex struct{ ch chan struct{} }

func (m *chMutex) lock()   { m.ch <- struct{}{} }
func (m *chMutex) unlock() { <-m.ch }

type mixed struct {
	mu sync.Mutex
	cm chMutex
}

func (x *mixed) muThenCm() {
	x.mu.Lock()
	x.cm.lock() // want lock-ordering
	x.cm.unlock()
	x.mu.Unlock()
}

func (x *mixed) cmThenMu() {
	x.cm.lock()
	x.mu.Lock()
	x.mu.Unlock()
	x.cm.unlock()
}
