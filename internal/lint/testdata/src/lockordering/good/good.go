// Conforming fixture for the lock-ordering rule: every path takes the
// locks in the same global order, and acquisitions on spawned
// goroutines do not count as held-across (a lock is not held on
// another goroutine's stack).
package good

import "sync"

type server struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *server) one() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

func (s *server) two() {
	s.a.Lock()
	defer s.a.Unlock()
	s.takeB()
}

func (s *server) takeB() {
	s.b.Lock()
	defer s.b.Unlock()
}

type pool struct {
	m sync.Mutex
	n sync.Mutex
}

// spawnWhileHeld acquires n on a fresh goroutine while m is held; that
// is not an m → n edge, so the n → m order below is not an inversion.
func (p *pool) spawnWhileHeld(wg *sync.WaitGroup) {
	p.m.Lock()
	defer p.m.Unlock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.n.Lock()
		p.n.Unlock()
	}()
}

func (p *pool) nThenM() {
	p.n.Lock()
	p.m.Lock()
	p.m.Unlock()
	p.n.Unlock()
}
