// Violating fixture modeling an artifact store built without
// internal/modelstore's seams: versions stamped from the wall clock,
// checksums salted with math/rand so two identically-seeded engines
// publish different artifact identities, a history dump that ranges a
// map straight into output, and a publish hook that severs itself
// from the caller's context — each the defect the determinism and
// ctx-propagation rules police in internal/modelstore.
package bad

import (
	"context"
	"fmt"
	"math/rand" // want determinism
	"time"
)

type artifact struct {
	version  uint64
	checksum uint64
}

type store struct {
	byVersion map[uint64]*artifact
}

// publish stamps the artifact's version from the wall clock: replaying
// the same training sequence on another machine (or a minute later)
// yields different version numbers, so debug dumps and rollback
// targets cannot be compared across runs.
func (s *store) publish(checksum uint64) *artifact {
	a := &artifact{
		version:  uint64(time.Now().UnixNano()), // want determinism
		checksum: checksum,
	}
	s.byVersion[a.version] = a
	return a
}

// saltChecksum perturbs the digest with global math/rand: the one
// number that should prove two models are the same model now differs
// on every publish.
func saltChecksum(sum uint64) uint64 {
	return sum ^ rand.Uint64()
}

// notifyPublished mints a fresh context for the publish hook instead
// of forwarding the caller's: the training run's deadline no longer
// bounds the notification.
func notifyPublished(hook func(context.Context, *artifact), a *artifact) {
	hook(context.Background(), a) // want ctx-propagation
}

// dumpHistory ranges the version map straight into the report: two
// dumps of the same store list artifacts in different orders.
func (s *store) dumpHistory() {
	for v, a := range s.byVersion { // want determinism
		fmt.Printf("v%d: checksum=%x\n", v, a.checksum)
	}
}

var (
	_ = (*store).publish
	_ = saltChecksum
	_ = notifyPublished
	_ = (*store).dumpHistory
)
