// Clean fixture mirroring internal/modelstore's actual seams:
// versions advance a monotonic counter (the same training sequence
// numbers artifacts identically on every machine), checksums are a
// pure function of the model, publish hooks inherit the caller's
// context, and history dumps walk versions in sorted order.
package good

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
)

type artifact struct {
	version  uint64
	checksum uint64
}

type store struct {
	next      atomic.Uint64
	byVersion map[uint64]*artifact
}

// publish numbers the artifact from a monotonic counter: version N is
// the Nth publish, everywhere, always.
func (s *store) publish(checksum uint64) *artifact {
	a := &artifact{
		version:  s.next.Add(1),
		checksum: checksum,
	}
	s.byVersion[a.version] = a
	return a
}

// checksumOf folds the factors with a fixed FNV-style walk — no salt,
// so identical models hash identically.
func checksumOf(factors []uint64) uint64 {
	sum := uint64(1469598103934665603)
	for _, f := range factors {
		sum = (sum ^ f) * 1099511628211
	}
	return sum
}

// notifyPublished forwards the caller's context to the hook, so the
// training run's deadline bounds the notification.
func notifyPublished(ctx context.Context, hook func(context.Context, *artifact), a *artifact) {
	hook(ctx, a)
}

// dumpHistory sorts versions before rendering, so the report is
// stable run to run.
func (s *store) dumpHistory() {
	versions := make([]uint64, 0, len(s.byVersion))
	for v := range s.byVersion {
		versions = append(versions, v)
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	for _, v := range versions {
		fmt.Printf("v%d: checksum=%x\n", v, s.byVersion[v].checksum)
	}
}

var (
	_ = (*store).publish
	_ = checksumOf
	_ = notifyPublished
	_ = (*store).dumpHistory
)
