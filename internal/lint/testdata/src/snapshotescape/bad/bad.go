// Violating fixture for the snapshot-escape rule: values mutated
// after being published through atomic.Pointer.Store or a Publish
// method, directly, through an alias, or via a mutating callee.
package bad

import "sync/atomic"

type artifact struct {
	scores map[string]float64
	items  []int
}

type store struct{ cur atomic.Pointer[artifact] }

func (s *store) Publish(a *artifact) { s.cur.Store(a) }

func directWrite(s *store) {
	a := &artifact{scores: map[string]float64{}}
	s.cur.Store(a)
	a.scores["x"] = 1 // want snapshot-escape
}

func sliceWrite(s *store) {
	a := &artifact{items: []int{1, 2}}
	s.cur.Store(a)
	a.items[0] = 9 // want snapshot-escape
}

func retainedAlias(s *store) {
	a := &artifact{scores: map[string]float64{}}
	m := a.scores
	s.cur.Store(a)
	m["x"] = 1 // want snapshot-escape
}

// fill writes through its parameter; the call graph's mutation
// summary marks it, so handing a published value to it is flagged at
// the call site.
func fill(m map[string]float64) { m["boost"] = 2 }

func mutatingCallee(s *store) {
	a := &artifact{scores: map[string]float64{}}
	s.cur.Store(a)
	fill(a.scores) // want snapshot-escape
}

func viaPublishMethod(s *store) {
	a := &artifact{items: []int{1}}
	s.Publish(a)
	a.items[0] = 2 // want snapshot-escape
}

func deleteAfterPublish(s *store) {
	a := &artifact{scores: map[string]float64{"x": 1}}
	s.cur.Store(a)
	delete(a.scores, "x") // want snapshot-escape
}
