// Conforming fixture for the snapshot-escape rule: the publish-last
// idiom — build and mutate first, publish as the final step, start a
// fresh generation for the next change.
package good

import "sync/atomic"

type artifact struct {
	scores map[string]float64
	items  []int
}

type store struct{ cur atomic.Pointer[artifact] }

func (s *store) Publish(a *artifact) { s.cur.Store(a) }

func buildThenPublish(s *store) {
	a := &artifact{scores: map[string]float64{}}
	a.scores["x"] = 1
	a.items = append(a.items, 7)
	s.cur.Store(a)
}

func freshGeneration(s *store) {
	old := s.cur.Load()
	next := &artifact{scores: cloneScores(old.scores)}
	next.scores["x"] = 2
	s.cur.Store(next)
}

// cloneScores writes only into the map it creates, so the mutation
// summary leaves its parameter unmarked and post-publish reads of the
// old artifact stay legal.
func cloneScores(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func readAfterPublish(s *store) float64 {
	a := &artifact{scores: map[string]float64{"x": 1}}
	s.cur.Store(a)
	return a.scores["x"] // reads are fine; the value is shared, not frozen to this goroutine
}

func rebindLocal(s *store) {
	a := &artifact{items: []int{1}}
	s.cur.Store(a)
	a = &artifact{items: []int{2}} // rebinding the variable is not a write through the published value
	a.items[0] = 3
	s.cur.Store(a)
}
