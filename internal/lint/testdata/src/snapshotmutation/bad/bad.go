// Violating fixture for the snapshot-mutation rule: stage functions
// write through values of the snapshot type.
package bad

import "context"

type Request struct{ N int }

type Response struct{ Total float64 }

type snapshot struct {
	ratings []float64
	hits    int
}

var cur = &snapshot{ratings: []float64{1, 2, 3}}

func current() *snapshot { return cur }

func stageAccumulate(ctx context.Context, req *Request) (*Response, error) {
	s := current()
	s.hits++         // want snapshot-mutation
	s.ratings[0] = 9 // want snapshot-mutation
	return &Response{}, nil
}

// observe has no stage prefix, but the handler signature marks it as a
// read-path stage all the same.
func observe(ctx context.Context, req *Request) (*Response, error) {
	current().hits = req.N // want snapshot-mutation
	return &Response{}, nil
}
