// Clean fixture for the snapshot-mutation rule: stages only read the
// snapshot; mutation happens on the write path, outside any stage.
package good

import "context"

type Request struct{ N int }

type Response struct{ Total float64 }

type snapshot struct {
	ratings []float64
	hits    int
}

var cur = &snapshot{ratings: []float64{1, 2, 3}}

func stageSum(ctx context.Context, req *Request) (*Response, error) {
	s := cur
	total := 0.0
	for _, v := range s.ratings {
		total += v
	}
	return &Response{Total: total}, nil
}

// publish is the write path: it may build and install a fresh
// generation, because it is not a stage function.
func publish(n int) {
	next := &snapshot{ratings: append([]float64(nil), cur.ratings...)}
	next.hits = n
	cur = next
}
