// Violating fixture modeling a tracer built without internal/trace's
// seams: span timestamps read the wall clock, the sampling draw comes
// from math/rand, and event recording mints a fresh context instead of
// threading the request's — each the exact defect the determinism and
// ctx-propagation rules were extended to catch in internal/trace.
package bad

import (
	"context"
	"math/rand" // want determinism
	"time"
)

type span struct {
	start time.Time
}

// startSpan stamps spans from the wall clock: two runs of the same
// test record different timestamps and durations, so a failing trace
// cannot be replayed bit-for-bit.
func startSpan() *span {
	return &span{start: time.Now()} // want determinism
}

// sampled draws the head-sampling decision from global math/rand: the
// set of retained traces changes run to run.
func sampled(rate float64) bool {
	return rand.Float64() < rate
}

// recordEvent detaches the event from the request that caused it; the
// span can never be parented into the right trace.
func recordEvent(record func(context.Context, string)) {
	record(context.Background(), "retry") // want ctx-propagation
}

var (
	_ = startSpan
	_ = sampled
	_ = recordEvent
)
