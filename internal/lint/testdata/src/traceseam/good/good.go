// Clean fixture mirroring internal/trace's actual seams: timestamps
// flow through an injected clock with a time.Unix logical-clock
// fallback (constructing times from numbers is deterministic — only
// *reading* the wall clock is banned), sampling draws come from a
// seeded splitmix64 counter stream, and events are recorded against
// the caller's context.
package good

import (
	"context"
	"sync/atomic"
	"time"
)

type tracer struct {
	clock   func() time.Time
	logical atomic.Int64
	seed    uint64
	seq     atomic.Uint64
}

// newTracer takes the clock as a seam: production wires time.Now from
// a main package, tests wire fakes, and nil selects a synthetic
// logical clock that advances one microsecond per reading.
func newTracer(clock func() time.Time) *tracer {
	t := &tracer{clock: clock, seed: 1}
	if t.clock == nil {
		t.clock = func() time.Time {
			return time.Unix(0, t.logical.Add(int64(time.Microsecond)))
		}
	}
	return t
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sampled derives the decision from the seed and the trace ordinal:
// a replayed run retains exactly the same traces.
func (t *tracer) sampled(rate float64) bool {
	draw := float64(splitmix64(t.seed+t.seq.Add(1))>>11) / (1 << 53)
	return draw < rate
}

// recordEvent threads the request context through, so the event lands
// in the trace of the request that caused it.
func (t *tracer) recordEvent(ctx context.Context, record func(context.Context, string)) {
	record(ctx, "retry")
}

var _ = newTracer
