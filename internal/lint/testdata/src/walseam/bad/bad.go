// Violating fixture modeling a write-ahead log built without
// internal/wal's seams: wall-clock segment stamps and record times
// (replay is no longer a pure function of the bytes on disk), a
// dropped fsync error (the one error a durable log exists to
// surface), an unsupervised background checkpointer, and a recovery
// report that ranges a map straight into output.
package bad

import (
	"fmt"
	"time"
)

type segment struct {
	name    string
	records int
}

type log struct {
	segs map[string]*segment
}

type syncer interface {
	Sync() error
}

// rotate names the new segment from the wall clock: two logs fed the
// same records produce different directory listings, and recovery
// order depends on when the test ran.
func (l *log) rotate() *segment {
	name := fmt.Sprintf("seg-%d", time.Now().UnixNano()) // want determinism
	s := &segment{name: name}
	l.segs[name] = s
	return s
}

// append drops the sync error: an acknowledged record may not be on
// disk, which is precisely the lie a WAL exists to prevent.
func (l *log) append(s syncer, rec []byte) {
	_ = s.Sync() // want dropped-error
}

// checkpointLoop runs forever with no recover guard and no way to
// stop it: a panic kills the process silently, and Close can never
// wait for the in-flight checkpoint.
func (l *log) checkpointLoop() {
	go func() { // want goroutine-lifecycle
		for {
			l.rotate()
		}
	}()
}

// report ranges the segment map straight into output: two reports of
// the same log list segments in different orders.
func (l *log) report() {
	for name, s := range l.segs { // want determinism
		fmt.Printf("%s: %d records\n", name, s.records)
	}
}

var (
	_ = (*log).rotate
	_ = (*log).append
	_ = (*log).checkpointLoop
	_ = (*log).report
)
