// Clean fixture modeling internal/wal's actual seams: segments named
// by a monotonic counter (recovery is a pure function of the bytes on
// disk), sync errors propagated and made sticky, checkpoints written
// synchronously by the caller that owns the error, and reports
// emitted in sorted order.
package good

import (
	"fmt"
	"sort"
)

type segment struct {
	name    string
	records int
}

type log struct {
	nextSeg uint64
	failed  bool
	segs    map[string]*segment
}

type syncer interface {
	Sync() error
}

// rotate names segments from a counter: equal record streams produce
// equal directories, on every machine, at any time.
func (l *log) rotate() *segment {
	l.nextSeg++
	s := &segment{name: fmt.Sprintf("seg-%08d", l.nextSeg)}
	l.segs[s.name] = s
	return s
}

// append surfaces the sync error and poisons the log: after a failed
// sync nothing further is acknowledged.
func (l *log) append(s syncer, rec []byte) error {
	if err := s.Sync(); err != nil {
		l.failed = true
		return err
	}
	return nil
}

// checkpoint runs synchronously under the caller: the caller owns the
// error and there is no goroutine to supervise.
func (l *log) checkpoint() *segment {
	return l.rotate()
}

func (l *log) report() {
	names := make([]string, 0, len(l.segs))
	for name := range l.segs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%s: %d records\n", name, l.segs[name].records)
	}
}

var (
	_ = (*log).append
	_ = (*log).checkpoint
	_ = (*log).report
)
