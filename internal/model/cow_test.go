package model

import "testing"

func seedMatrix() *Matrix {
	m := NewMatrix()
	m.Set(1, 10, 4)
	m.Set(1, 11, 2)
	m.Set(2, 10, 5)
	m.Set(2, 12, 3)
	m.Set(3, 11, 1)
	return m
}

func TestCloneSharedIsolation(t *testing.T) {
	orig := seedMatrix()
	cp := orig.CloneShared()

	// The clone initially mirrors the original exactly.
	if cp.Len() != orig.Len() || cp.GlobalMean() != orig.GlobalMean() {
		t.Fatalf("clone differs before mutation: len %d vs %d", cp.Len(), orig.Len())
	}

	// Overwrite, insert and delete on the clone...
	cp.Set(1, 10, 1) // overwrite shared row
	cp.Set(4, 13, 5) // brand-new user and item
	cp.Delete(2, 12) // delete from shared row

	// ...must be invisible in the original.
	if v, _ := orig.Get(1, 10); v != 4 {
		t.Fatalf("original saw clone's overwrite: %v", v)
	}
	if _, ok := orig.Get(4, 13); ok {
		t.Fatal("original saw clone's insert")
	}
	if v, ok := orig.Get(2, 12); !ok || v != 3 {
		t.Fatal("original saw clone's delete")
	}
	// And visible in the clone, with sums tracking.
	if v, _ := cp.Get(1, 10); v != 1 {
		t.Fatalf("clone lost its own write: %v", v)
	}
	if mean, ok := cp.UserMean(1); !ok || mean != 1.5 {
		t.Fatalf("clone user mean = %v %v", mean, ok)
	}
	if mean, ok := orig.UserMean(1); !ok || mean != 3 {
		t.Fatalf("original user mean drifted = %v %v", mean, ok)
	}
	if cp.Len() != orig.Len() { // +1 insert, -1 delete
		t.Fatalf("len: clone %d orig %d", cp.Len(), orig.Len())
	}
}

func TestCloneSharedWriteToDonorAfterClone(t *testing.T) {
	// The donor matrix is typically retired after cloning, but writes
	// to it must still not leak into the clone's unshared rows.
	orig := seedMatrix()
	cp := orig.CloneShared()
	cp.Set(1, 10, 5) // unshare row 1 in the clone

	orig.Set(1, 11, 5)
	if v, _ := cp.Get(1, 11); v != 2 {
		t.Fatalf("clone's owned row saw donor write: %v", v)
	}
}

func TestCloneSharedChain(t *testing.T) {
	// Clone-of-clone: each generation stays isolated.
	g0 := seedMatrix()
	g1 := g0.CloneShared()
	g1.Set(3, 11, 5)
	g2 := g1.CloneShared()
	g2.Delete(3, 11)

	if v, _ := g0.Get(3, 11); v != 1 {
		t.Fatalf("g0 = %v", v)
	}
	if v, _ := g1.Get(3, 11); v != 5 {
		t.Fatalf("g1 = %v", v)
	}
	if _, ok := g2.Get(3, 11); ok {
		t.Fatal("g2 still has deleted rating")
	}
	// Sums stay exact along the chain.
	if got := g1.GlobalMean(); got == g0.GlobalMean() {
		t.Fatal("g1 mean should differ after overwrite")
	}
	if g2.Len() != g1.Len()-1 {
		t.Fatalf("g2 len = %d, g1 len = %d", g2.Len(), g1.Len())
	}
}

func TestCloneSharedDeleteMissing(t *testing.T) {
	orig := seedMatrix()
	cp := orig.CloneShared()
	cp.Delete(1, 999) // absent item: no-op, must not unshare or corrupt
	if cp.Len() != orig.Len() {
		t.Fatalf("len changed: %d vs %d", cp.Len(), orig.Len())
	}
	if v, ok := cp.Get(1, 10); !ok || v != 4 {
		t.Fatalf("row corrupted: %v %v", v, ok)
	}
}
