// Package model defines the domain types shared by every recommender,
// explainer, presenter and experiment in this repository: items with
// content and attribute metadata, users, ratings, sparse rating
// matrices and attribute-typed catalogues.
//
// The survey spans very different item domains — movies, books, news,
// digital cameras, restaurants, holidays — so Item carries both
// unstructured content features (keywords such as genres or topics)
// and structured attributes (price, resolution, ...) described by an
// AttrDef schema on the owning Catalog. Collaborative filtering uses
// the rating Matrix; content-based recommenders use keywords;
// knowledge-based recommenders and critiquing use the attribute schema.
package model

import (
	"errors"
	"fmt"
	"sort"
)

// ItemID identifies an item within a catalogue.
type ItemID int

// UserID identifies a user within a community.
type UserID int

// Rating scale bounds used throughout (the paper's running example is
// a 0-5 star scale; we use 1-5 like MovieLens, the dataset behind most
// of the studies the survey cites).
const (
	MinRating = 1.0
	MaxRating = 5.0
)

// ClampRating clamps v into the valid rating scale.
func ClampRating(v float64) float64 {
	if v < MinRating {
		return MinRating
	}
	if v > MaxRating {
		return MaxRating
	}
	return v
}

// AttrKind classifies a structured item attribute.
type AttrKind int

// Attribute kinds.
const (
	// Numeric attributes support ordering, trade-off direction and
	// critiques such as "cheaper" or "higher resolution".
	Numeric AttrKind = iota
	// Categorical attributes support equality critiques such as
	// "a different brand" or hard constraints such as "cuisine=thai".
	Categorical
)

func (k AttrKind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("AttrKind(%d)", int(k))
	}
}

// AttrDef describes one structured attribute in a catalogue schema.
type AttrDef struct {
	Name string
	Kind AttrKind
	// LessIsBetter marks numeric attributes where smaller values are
	// generally preferable (price, weight). It drives the direction
	// language in trade-off explanations: "cheaper" vs "more expensive".
	LessIsBetter bool
	// Unit is a display suffix for numeric attributes, e.g. "$" or "MP".
	Unit string
}

// Item is a recommendable object.
type Item struct {
	ID      ItemID
	Title   string
	Creator string // author, director, artist, manufacturer...

	// Keywords are unstructured content features: genres, topics,
	// ingredients. Content-based recommenders and the content-style
	// explanations ("because you liked other comedies") consume these.
	Keywords []string

	// Numeric and Categorical hold structured attribute values keyed by
	// AttrDef.Name. Knowledge-based recommendation, critiquing and the
	// structured overview consume these.
	Numeric     map[string]float64
	Categorical map[string]string

	// Popularity in [0,1]; 1 is a blockbuster. Used by personality
	// (affirming vs serendipitous) and by "most popular item" text.
	Popularity float64
	// Recency in [0,1]; 1 is brand new. Used by the treemap shading and
	// by "most recent item" explanation text.
	Recency float64
}

// HasKeyword reports whether the item carries keyword k.
func (it *Item) HasKeyword(k string) bool {
	for _, kw := range it.Keywords {
		if kw == k {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the item. Interaction components that
// let users alter items (scrutability) operate on clones so the
// catalogue itself stays immutable.
func (it *Item) Clone() *Item {
	cp := *it
	cp.Keywords = append([]string(nil), it.Keywords...)
	if it.Numeric != nil {
		cp.Numeric = make(map[string]float64, len(it.Numeric))
		for k, v := range it.Numeric {
			cp.Numeric[k] = v
		}
	}
	if it.Categorical != nil {
		cp.Categorical = make(map[string]string, len(it.Categorical))
		for k, v := range it.Categorical {
			cp.Categorical[k] = v
		}
	}
	return &cp
}

// Catalog is a typed collection of items from one domain.
type Catalog struct {
	Domain string
	Attrs  []AttrDef
	items  []*Item
	byID   map[ItemID]*Item
}

// NewCatalog creates an empty catalogue for the named domain with the
// given attribute schema.
func NewCatalog(domain string, attrs ...AttrDef) *Catalog {
	return &Catalog{
		Domain: domain,
		Attrs:  attrs,
		byID:   make(map[ItemID]*Item),
	}
}

// ErrDuplicateItem is returned when adding an item whose ID already
// exists in the catalogue.
var ErrDuplicateItem = errors.New("model: duplicate item id")

// ErrUnknownItem is returned by lookups for absent item IDs.
var ErrUnknownItem = errors.New("model: unknown item id")

// Add inserts an item into the catalogue.
func (c *Catalog) Add(it *Item) error {
	if _, ok := c.byID[it.ID]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateItem, it.ID)
	}
	c.items = append(c.items, it)
	c.byID[it.ID] = it
	return nil
}

// MustAdd inserts an item and panics on duplicate IDs. Dataset
// generators, which control IDs, use this.
func (c *Catalog) MustAdd(it *Item) {
	if err := c.Add(it); err != nil {
		panic(err)
	}
}

// Item returns the item with the given ID.
func (c *Catalog) Item(id ItemID) (*Item, error) {
	it, ok := c.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownItem, id)
	}
	return it, nil
}

// Len returns the number of items.
func (c *Catalog) Len() int { return len(c.items) }

// Items returns the items in insertion order. The returned slice is
// shared; callers must not modify it.
func (c *Catalog) Items() []*Item { return c.items }

// AttrDef returns the schema entry for name.
func (c *Catalog) AttrDef(name string) (AttrDef, bool) {
	for _, a := range c.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return AttrDef{}, false
}

// Keywords returns the sorted set of all keywords appearing in the
// catalogue.
func (c *Catalog) Keywords() []string {
	set := map[string]bool{}
	for _, it := range c.items {
		for _, k := range it.Keywords {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NumericRange returns the min and max value of a numeric attribute
// across the catalogue. ok is false when no item carries the attribute.
func (c *Catalog) NumericRange(attr string) (lo, hi float64, ok bool) {
	first := true
	for _, it := range c.items {
		v, has := it.Numeric[attr]
		if !has {
			continue
		}
		if first {
			lo, hi, first = v, v, false
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, !first
}

// Rating is one (user, item, value) observation.
type Rating struct {
	User  UserID
	Item  ItemID
	Value float64
}

// Matrix is a sparse user-item rating matrix with dual (by-user and
// by-item) indexes. The zero value is not usable; construct with
// NewMatrix.
// Sums are maintained incrementally so that means never depend on map
// iteration order — experiment output must be bit-identical across
// runs, and floating-point addition is not commutative under
// reordering.
//
// Concurrency: a Matrix is safe for concurrent readers as long as no
// writer is active. Snapshot-style writers use CloneShared to obtain a
// copy-on-write clone, mutate the clone, and publish it; readers of
// the original never observe the mutation.
type Matrix struct {
	byUser   map[UserID]map[ItemID]float64
	byItem   map[ItemID]map[UserID]float64
	userSum  map[UserID]float64
	itemSum  map[ItemID]float64
	totalSum float64
	count    int

	// sharedUserRows / sharedItemRows mark rows whose inner maps are
	// shared with the Matrix this one was CloneShared from. Set and
	// Delete copy a shared row before mutating it, so the donor matrix
	// (and any concurrent readers of it) never see the change.
	sharedUserRows map[UserID]bool
	sharedItemRows map[ItemID]bool
}

// NewMatrix returns an empty rating matrix.
func NewMatrix() *Matrix {
	return &Matrix{
		byUser:  make(map[UserID]map[ItemID]float64),
		byItem:  make(map[ItemID]map[UserID]float64),
		userSum: make(map[UserID]float64),
		itemSum: make(map[ItemID]float64),
	}
}

// CloneShared returns a copy-on-write clone: the outer indexes and sum
// tables are copied (O(users+items)), but every row's inner map is
// shared with the receiver. Mutating the clone via Set or Delete copies
// only the touched rows, leaving the receiver — and any goroutines
// still reading it — untouched. This is the cheap publication step of
// the snapshot concurrency model (see DESIGN.md): clone, mutate, swap.
func (m *Matrix) CloneShared() *Matrix {
	cp := &Matrix{
		byUser:         make(map[UserID]map[ItemID]float64, len(m.byUser)),
		byItem:         make(map[ItemID]map[UserID]float64, len(m.byItem)),
		userSum:        make(map[UserID]float64, len(m.userSum)),
		itemSum:        make(map[ItemID]float64, len(m.itemSum)),
		totalSum:       m.totalSum,
		count:          m.count,
		sharedUserRows: make(map[UserID]bool, len(m.byUser)),
		sharedItemRows: make(map[ItemID]bool, len(m.byItem)),
	}
	for u, row := range m.byUser {
		cp.byUser[u] = row
		cp.sharedUserRows[u] = true
	}
	for i, row := range m.byItem {
		cp.byItem[i] = row
		cp.sharedItemRows[i] = true
	}
	for u, s := range m.userSum {
		cp.userSum[u] = s
	}
	for i, s := range m.itemSum {
		cp.itemSum[i] = s
	}
	return cp
}

// ownUserRow returns u's row, first unsharing it if it is still shared
// with a CloneShared donor.
func (m *Matrix) ownUserRow(u UserID) map[ItemID]float64 {
	row := m.byUser[u]
	if m.sharedUserRows != nil && m.sharedUserRows[u] {
		owned := make(map[ItemID]float64, len(row)+1)
		for k, v := range row {
			owned[k] = v
		}
		m.byUser[u] = owned
		delete(m.sharedUserRows, u)
		row = owned
	}
	return row
}

// ownItemRow returns i's row, first unsharing it if needed.
func (m *Matrix) ownItemRow(i ItemID) map[UserID]float64 {
	row := m.byItem[i]
	if m.sharedItemRows != nil && m.sharedItemRows[i] {
		owned := make(map[UserID]float64, len(row)+1)
		for k, v := range row {
			owned[k] = v
		}
		m.byItem[i] = owned
		delete(m.sharedItemRows, i)
		row = owned
	}
	return row
}

// Set records (or overwrites) a rating.
func (m *Matrix) Set(u UserID, i ItemID, v float64) {
	if m.byUser[u] == nil {
		m.byUser[u] = make(map[ItemID]float64)
	} else {
		m.ownUserRow(u)
	}
	if m.byItem[i] == nil {
		m.byItem[i] = make(map[UserID]float64)
	} else {
		m.ownItemRow(i)
	}
	if old, existed := m.byUser[u][i]; existed {
		m.userSum[u] -= old
		m.itemSum[i] -= old
		m.totalSum -= old
	} else {
		m.count++
	}
	m.byUser[u][i] = v
	m.byItem[i][u] = v
	m.userSum[u] += v
	m.itemSum[i] += v
	m.totalSum += v
}

// Delete removes a rating if present. Scrutable profiles use this when
// a user withdraws a past rating. Rows emptied by the deletion are
// dropped entirely, so Users and RatedItems never report ghosts — the
// cluster layer relies on this when it evicts a migrated user.
func (m *Matrix) Delete(u UserID, i ItemID) {
	old, ok := m.byUser[u][i]
	if !ok {
		return
	}
	userRow, itemRow := m.ownUserRow(u), m.ownItemRow(i)
	delete(userRow, i)
	delete(itemRow, u)
	m.userSum[u] -= old
	m.itemSum[i] -= old
	m.totalSum -= old
	m.count--
	if len(userRow) == 0 {
		delete(m.byUser, u)
		delete(m.userSum, u)
	}
	if len(itemRow) == 0 {
		delete(m.byItem, i)
		delete(m.itemSum, i)
	}
}

// Get returns the rating and whether it exists.
func (m *Matrix) Get(u UserID, i ItemID) (float64, bool) {
	v, ok := m.byUser[u][i]
	return v, ok
}

// Len returns the number of stored ratings.
func (m *Matrix) Len() int { return m.count }

// UserRatings returns u's ratings. The returned map is shared; callers
// must not modify it.
func (m *Matrix) UserRatings(u UserID) map[ItemID]float64 { return m.byUser[u] }

// ItemRatings returns all ratings of item i keyed by user. The returned
// map is shared; callers must not modify it.
func (m *Matrix) ItemRatings(i ItemID) map[UserID]float64 { return m.byItem[i] }

// Users returns the user IDs present in the matrix, sorted.
func (m *Matrix) Users() []UserID {
	out := make([]UserID, 0, len(m.byUser))
	for u := range m.byUser {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RatedItems returns the item IDs with at least one rating, sorted.
func (m *Matrix) RatedItems() []ItemID {
	out := make([]ItemID, 0, len(m.byItem))
	for i := range m.byItem {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// UserMean returns the mean of u's ratings; ok is false when u has no
// ratings.
func (m *Matrix) UserMean(u UserID) (float64, bool) {
	n := len(m.byUser[u])
	if n == 0 {
		return 0, false
	}
	return m.userSum[u] / float64(n), true
}

// ItemMean returns the mean rating of item i; ok is false when i has
// no ratings.
func (m *Matrix) ItemMean(i ItemID) (float64, bool) {
	n := len(m.byItem[i])
	if n == 0 {
		return 0, false
	}
	return m.itemSum[i] / float64(n), true
}

// GlobalMean returns the mean over all ratings, or the scale midpoint
// when empty (a serviceable prior).
func (m *Matrix) GlobalMean() float64 {
	if m.count == 0 {
		return (MinRating + MaxRating) / 2
	}
	return m.totalSum / float64(m.count)
}

// Clone returns a deep copy of the matrix. Experiments that mutate a
// community (scrutability corrections, re-rating) clone first. The
// copy is rebuilt in sorted order so its incremental sums are
// bit-identical across runs.
func (m *Matrix) Clone() *Matrix {
	cp := NewMatrix()
	for _, u := range m.Users() {
		rs := m.byUser[u]
		items := make([]ItemID, 0, len(rs))
		for i := range rs {
			items = append(items, i)
		}
		sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		for _, i := range items {
			cp.Set(u, i, rs[i])
		}
	}
	return cp
}
