package model

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestClampRating(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 1}, {1, 1}, {3.2, 3.2}, {5, 5}, {9, 5}, {-2, 1},
	}
	for _, c := range cases {
		if got := ClampRating(c.in); got != c.want {
			t.Fatalf("ClampRating(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAttrKindString(t *testing.T) {
	if Numeric.String() != "numeric" || Categorical.String() != "categorical" {
		t.Fatal("AttrKind strings wrong")
	}
	if AttrKind(99).String() == "" {
		t.Fatal("unknown kind should still stringify")
	}
}

func TestItemHasKeyword(t *testing.T) {
	it := &Item{Keywords: []string{"comedy", "romance"}}
	if !it.HasKeyword("comedy") || it.HasKeyword("horror") {
		t.Fatal("HasKeyword wrong")
	}
}

func TestItemCloneIsDeep(t *testing.T) {
	it := &Item{
		ID:          1,
		Title:       "Great Expectations",
		Keywords:    []string{"classic"},
		Numeric:     map[string]float64{"pages": 544},
		Categorical: map[string]string{"language": "en"},
	}
	cp := it.Clone()
	cp.Keywords[0] = "mutated"
	cp.Numeric["pages"] = 1
	cp.Categorical["language"] = "fr"
	if it.Keywords[0] != "classic" || it.Numeric["pages"] != 544 || it.Categorical["language"] != "en" {
		t.Fatal("Clone shares state with original")
	}
}

func TestItemCloneNilMaps(t *testing.T) {
	cp := (&Item{ID: 2}).Clone()
	if cp.Numeric != nil || cp.Categorical != nil {
		t.Fatal("Clone invented maps for nil originals")
	}
}

func TestCatalogAddAndLookup(t *testing.T) {
	c := NewCatalog("books", AttrDef{Name: "pages", Kind: Numeric})
	c.MustAdd(&Item{ID: 1, Title: "Oliver Twist"})
	if err := c.Add(&Item{ID: 1}); !errors.Is(err, ErrDuplicateItem) {
		t.Fatalf("duplicate add error = %v", err)
	}
	it, err := c.Item(1)
	if err != nil || it.Title != "Oliver Twist" {
		t.Fatalf("Item lookup = %v, %v", it, err)
	}
	if _, err := c.Item(99); !errors.Is(err, ErrUnknownItem) {
		t.Fatalf("missing lookup error = %v", err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCatalogMustAddPanics(t *testing.T) {
	c := NewCatalog("x")
	c.MustAdd(&Item{ID: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdd should panic on duplicate")
		}
	}()
	c.MustAdd(&Item{ID: 1})
}

func TestCatalogAttrDef(t *testing.T) {
	c := NewCatalog("cameras",
		AttrDef{Name: "price", Kind: Numeric, LessIsBetter: true, Unit: "$"},
		AttrDef{Name: "brand", Kind: Categorical},
	)
	def, ok := c.AttrDef("price")
	if !ok || !def.LessIsBetter || def.Unit != "$" {
		t.Fatalf("AttrDef(price) = %+v, %v", def, ok)
	}
	if _, ok := c.AttrDef("nope"); ok {
		t.Fatal("unexpected attr found")
	}
}

func TestCatalogKeywordsSortedUnique(t *testing.T) {
	c := NewCatalog("movies")
	c.MustAdd(&Item{ID: 1, Keywords: []string{"drama", "comedy"}})
	c.MustAdd(&Item{ID: 2, Keywords: []string{"comedy", "action"}})
	got := c.Keywords()
	want := []string{"action", "comedy", "drama"}
	if len(got) != len(want) {
		t.Fatalf("Keywords = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keywords = %v, want %v", got, want)
		}
	}
}

func TestNumericRange(t *testing.T) {
	c := NewCatalog("cameras", AttrDef{Name: "price", Kind: Numeric})
	c.MustAdd(&Item{ID: 1, Numeric: map[string]float64{"price": 300}})
	c.MustAdd(&Item{ID: 2, Numeric: map[string]float64{"price": 150}})
	c.MustAdd(&Item{ID: 3}) // no price
	lo, hi, ok := c.NumericRange("price")
	if !ok || lo != 150 || hi != 300 {
		t.Fatalf("NumericRange = %v %v %v", lo, hi, ok)
	}
	if _, _, ok := c.NumericRange("weight"); ok {
		t.Fatal("range of absent attribute should report !ok")
	}
}

func TestMatrixSetGetDelete(t *testing.T) {
	m := NewMatrix()
	m.Set(1, 10, 4)
	if v, ok := m.Get(1, 10); !ok || v != 4 {
		t.Fatalf("Get = %v %v", v, ok)
	}
	m.Set(1, 10, 5) // overwrite must not double count
	if m.Len() != 1 {
		t.Fatalf("Len after overwrite = %d", m.Len())
	}
	m.Delete(1, 10)
	if _, ok := m.Get(1, 10); ok || m.Len() != 0 {
		t.Fatal("Delete failed")
	}
	m.Delete(1, 10) // idempotent
	if m.Len() != 0 {
		t.Fatal("double delete corrupted count")
	}
}

func TestMatrixDualIndexConsistencyQuick(t *testing.T) {
	// Property: after any sequence of sets, the by-user and by-item
	// indexes agree on every rating.
	f := func(ops []struct {
		U uint8
		I uint8
		V uint8
	}) bool {
		m := NewMatrix()
		for _, op := range ops {
			m.Set(UserID(op.U%10), ItemID(op.I%10), float64(op.V%5)+1)
		}
		total := 0
		for _, u := range m.Users() {
			for i, v := range m.UserRatings(u) {
				got, ok := m.ItemRatings(i)[u]
				if !ok || got != v {
					return false
				}
				total++
			}
		}
		return total == m.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixMeans(t *testing.T) {
	m := NewMatrix()
	if _, ok := m.UserMean(1); ok {
		t.Fatal("mean of absent user should be !ok")
	}
	if gm := m.GlobalMean(); gm != 3 {
		t.Fatalf("empty global mean = %v, want midpoint 3", gm)
	}
	m.Set(1, 10, 2)
	m.Set(1, 11, 4)
	m.Set(2, 10, 5)
	if v, ok := m.UserMean(1); !ok || v != 3 {
		t.Fatalf("UserMean = %v %v", v, ok)
	}
	if v, ok := m.ItemMean(10); !ok || v != 3.5 {
		t.Fatalf("ItemMean = %v %v", v, ok)
	}
	if gm := m.GlobalMean(); gm != (2+4+5)/3.0 {
		t.Fatalf("GlobalMean = %v", gm)
	}
}

func TestMatrixUsersAndItemsSorted(t *testing.T) {
	m := NewMatrix()
	m.Set(3, 30, 1)
	m.Set(1, 10, 1)
	m.Set(2, 20, 1)
	us := m.Users()
	for i := 1; i < len(us); i++ {
		if us[i-1] >= us[i] {
			t.Fatalf("Users not sorted: %v", us)
		}
	}
	is := m.RatedItems()
	for i := 1; i < len(is); i++ {
		if is[i-1] >= is[i] {
			t.Fatalf("RatedItems not sorted: %v", is)
		}
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix()
	m.Set(1, 10, 4)
	cp := m.Clone()
	cp.Set(1, 10, 1)
	cp.Set(2, 20, 5)
	if v, _ := m.Get(1, 10); v != 4 {
		t.Fatal("Clone shares storage")
	}
	if m.Len() != 1 || cp.Len() != 2 {
		t.Fatalf("lens = %d %d", m.Len(), cp.Len())
	}
}
