// Artifact persistence: SaveArtifact writes one generation to disk as
// a versioned JSON envelope (atomic temp-file + fsync + rename, so a
// crash mid-save leaves the previous artifact intact), LoadArtifact
// reads it back, and Store.Restore seeds a fresh store with it so the
// serving version number survives a process restart. The model payload
// itself is opaque bytes: the caller supplies encode/decode hooks
// (e.g. mf.EncodeModel / mf.DecodeModel), keeping this package free of
// model-type knowledge.

package modelstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// SaveFormat versions the on-disk artifact envelope; LoadArtifact
// rejects files it does not understand rather than misreading them.
const SaveFormat = 1

// SavedArtifact is the on-disk JSON envelope around one generation.
// Checksum is hex text because JSON numbers cannot carry a full uint64
// exactly.
type SavedArtifact struct {
	Format   int             `json:"format"`
	Version  uint64          `json:"version"`
	Trainer  string          `json:"trainer"`
	DataRev  uint64          `json:"data_rev"`
	Checksum string          `json:"checksum"`
	Model    json.RawMessage `json:"model"`
}

// SaveArtifact persists a to path atomically: the bytes are written to
// a sibling temp file, fsynced, and renamed over the target, so a
// reader (or a recovering process) only ever sees the old artifact or
// the new one, never a torn mix. Parent directories are created.
func SaveArtifact[T any](path string, a *Artifact[T], encode func(T) ([]byte, error)) error {
	if a == nil {
		return fmt.Errorf("modelstore: SaveArtifact of a nil artifact")
	}
	if encode == nil {
		return fmt.Errorf("modelstore: SaveArtifact requires an encode hook")
	}
	payload, err := encode(a.Model)
	if err != nil {
		return fmt.Errorf("modelstore: encoding model: %w", err)
	}
	env := SavedArtifact{
		Format:   SaveFormat,
		Version:  a.Version,
		Trainer:  a.Trainer,
		DataRev:  a.DataRev,
		Checksum: fmt.Sprintf("%016x", a.Checksum),
		Model:    payload,
	}
	data, err := json.Marshal(&env)
	if err != nil {
		return fmt.Errorf("modelstore: encoding envelope: %w", err)
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("modelstore: %w", err)
		}
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("modelstore: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("modelstore: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("modelstore: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("modelstore: publishing %s: %w", path, err)
	}
	return nil
}

// LoadArtifact reads an artifact saved by SaveArtifact. A missing
// file, unreadable envelope, unknown format, or failing decode hook
// all error; the caller decides whether that means "cold start" or
// "operator problem".
func LoadArtifact[T any](path string, decode func([]byte) (T, error)) (*Artifact[T], error) {
	if decode == nil {
		return nil, fmt.Errorf("modelstore: LoadArtifact requires a decode hook")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	var env SavedArtifact
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("modelstore: decoding envelope %s: %w", path, err)
	}
	if env.Format != SaveFormat {
		return nil, fmt.Errorf("modelstore: %s has format %d, want %d", path, env.Format, SaveFormat)
	}
	if env.Version == 0 {
		return nil, fmt.Errorf("modelstore: %s has no version", path)
	}
	sum, err := strconv.ParseUint(env.Checksum, 16, 64)
	if err != nil {
		return nil, fmt.Errorf("modelstore: %s has a malformed checksum %q", path, env.Checksum)
	}
	m, err := decode(env.Model)
	if err != nil {
		return nil, fmt.Errorf("modelstore: decoding model from %s: %w", path, err)
	}
	return &Artifact[T]{
		Version:  env.Version,
		Trainer:  env.Trainer,
		DataRev:  env.DataRev,
		Checksum: sum,
		Model:    m,
	}, nil
}

// Restore seeds a store that has never published with a previously
// saved artifact, preserving its version so the serving generation
// number keeps climbing monotonically across process restarts. Errors
// on a store that already holds a generation.
func (s *Store[T]) Restore(a *Artifact[T]) error {
	if a == nil || a.Version == 0 {
		return fmt.Errorf("modelstore: Restore requires a published artifact")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.version != 0 || len(s.hist) != 0 {
		return fmt.Errorf("modelstore: Restore on a store that already published v%d", s.version)
	}
	s.version = a.Version
	s.push(a)
	s.cur.Store(a)
	return nil
}
