package modelstore

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func encodeString(s string) ([]byte, error) { return json.Marshal(s) }

func decodeString(data []byte) (string, error) {
	var s string
	err := json.Unmarshal(data, &s)
	return s, err
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifacts", "model.json")
	s := New[string](0)
	art := s.Publish("trainer-a", 7, 0xdeadbeefcafef00d, "the-model")
	if err := SaveArtifact(path, art, encodeString); err != nil {
		t.Fatal(err)
	}
	got, err := LoadArtifact(path, decodeString)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != art.Version || got.Trainer != art.Trainer ||
		got.DataRev != art.DataRev || got.Checksum != art.Checksum || got.Model != art.Model {
		t.Fatalf("round-trip mismatch: %+v != %+v", got, art)
	}
}

func TestSaveArtifactReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.json")
	s := New[string](0)
	a1 := s.Publish("t", 1, 1, "one")
	a2 := s.Publish("t", 2, 2, "two")
	if err := SaveArtifact(path, a1, encodeString); err != nil {
		t.Fatal(err)
	}
	if err := SaveArtifact(path, a2, encodeString); err != nil {
		t.Fatal(err)
	}
	got, err := LoadArtifact(path, decodeString)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 2 || got.Model != "two" {
		t.Fatalf("latest save did not win: %+v", got)
	}
	// No temp-file litter after a successful save.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want only the artifact", len(entries))
	}
}

func TestLoadArtifactRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"not-json.json":     "{torn",
		"bad-format.json":   `{"format":9,"version":1,"trainer":"t","checksum":"00","model":"x"}`,
		"no-version.json":   `{"format":1,"version":0,"trainer":"t","checksum":"00","model":"x"}`,
		"bad-checksum.json": `{"format":1,"version":1,"trainer":"t","checksum":"zz","model":"x"}`,
		"bad-model.json":    `{"format":1,"version":1,"trainer":"t","checksum":"00","model":42}`,
	}
	for name, content := range cases {
		if _, err := LoadArtifact(write(name, content), decodeString); err == nil {
			t.Fatalf("%s: LoadArtifact accepted it", name)
		}
	}
	if _, err := LoadArtifact(filepath.Join(dir, "missing.json"), decodeString); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want ErrNotExist", err)
	}
	if _, err := LoadArtifact[string](filepath.Join(dir, "bad-model.json"), nil); err == nil {
		t.Fatal("LoadArtifact accepted a nil decode hook")
	}
}

func TestRestoreSeedsVersionCounter(t *testing.T) {
	s := New[string](0)
	if err := s.Restore(&Artifact[string]{Version: 41, Trainer: "t", Checksum: 9, Model: "m"}); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 41 || s.Current().Model != "m" {
		t.Fatalf("restore did not seed the store: v%d", s.Version())
	}
	// The next publish keeps climbing from the restored version.
	if a := s.Publish("t", 0, 0, "m2"); a.Version != 42 {
		t.Fatalf("publish after restore = v%d, want v42", a.Version)
	}
	// And history now allows rolling back to the restored generation.
	if _, err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	if s.Current().Model != "m" {
		t.Fatal("rollback after restore did not surface the restored model")
	}
}

func TestRestoreRejectsNonEmptyStore(t *testing.T) {
	s := New[string](0)
	s.Publish("t", 0, 0, "m")
	if err := s.Restore(&Artifact[string]{Version: 5, Model: "x"}); err == nil {
		t.Fatal("Restore succeeded on a store that already published")
	}
	if err := New[string](0).Restore(nil); err == nil {
		t.Fatal("Restore accepted nil")
	}
	if err := New[string](0).Restore(&Artifact[string]{Version: 0}); err == nil {
		t.Fatal("Restore accepted an unversioned artifact")
	}
}
