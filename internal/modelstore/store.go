// Package modelstore keeps versioned, immutable trained-model
// artifacts behind an atomic pointer: trainers publish new generations
// without ever blocking readers, and a bounded history ring keeps the
// last few generations around for rollback.
//
// The store is deliberately clockless and unseeded: versions are a
// monotonic counter, provenance (trainer name, data revision,
// checksum) is supplied by the publisher, and nothing here reads the
// wall clock or draws randomness — the package sits inside
// recsyslint's determinism scope, so two runs that publish the same
// models record byte-identical artifact metadata. Timestamps, when an
// operator wants them, belong to the caller's injectable clock (see
// core.TrainerConfig.Clock).
package modelstore

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultHistory is the history-ring depth when the caller passes a
// non-positive one: the serving artifact plus three predecessors.
const DefaultHistory = 4

// ErrNoHistory is returned by Rollback when no predecessor generation
// is retained to roll back to.
var ErrNoHistory = errors.New("modelstore: no previous artifact to roll back to")

// Artifact is one immutable trained-model generation. The struct and
// everything it references must never be mutated after Publish; the
// model inside is shared by every reader that loaded this generation.
type Artifact[T any] struct {
	// Version is the store's monotonic generation counter, starting at
	// 1. A rollback republishes an old model under a *new* version, so
	// the serving version never moves backwards.
	Version uint64
	// Trainer is the producing trainer's name.
	Trainer string
	// DataRev is the write revision of the rating data the model was
	// trained against, so an operator can see how stale an artifact is.
	DataRev uint64
	// Checksum is the trainer-supplied digest of the model's
	// parameters; equal checksums prove equal models across rebuilds.
	Checksum uint64
	// Model is the trained model itself.
	Model T
}

// String renders the artifact's provenance line.
func (a *Artifact[T]) String() string {
	return fmt.Sprintf("v%d trainer=%s data_rev=%d checksum=%016x", a.Version, a.Trainer, a.DataRev, a.Checksum)
}

// Store is a versioned artifact store: lock-free Current for readers,
// mutex-serialised Publish/Rollback for the (rare) writers, and a
// bounded ring of past generations.
type Store[T any] struct {
	cur atomic.Pointer[Artifact[T]]

	mu      sync.Mutex
	version uint64
	hist    []*Artifact[T] // oldest first, bounded by capN, includes current
	capN    int
}

// New builds a store retaining up to history generations (including
// the serving one); history < 1 selects DefaultHistory.
func New[T any](history int) *Store[T] {
	if history < 1 {
		history = DefaultHistory
	}
	return &Store[T]{capN: history}
}

// Current returns the serving artifact, or nil before the first
// Publish. Lock-free: this is the read-path call.
func (s *Store[T]) Current() *Artifact[T] { return s.cur.Load() }

// Version returns the serving artifact's version (0 before the first
// Publish).
func (s *Store[T]) Version() uint64 {
	if a := s.cur.Load(); a != nil {
		return a.Version
	}
	return 0
}

// Publish records model as the next generation and atomically makes it
// current. The oldest retained generation falls off the ring when the
// history bound is exceeded.
func (s *Store[T]) Publish(trainer string, dataRev, checksum uint64, m T) *Artifact[T] {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	a := &Artifact[T]{
		Version:  s.version,
		Trainer:  trainer,
		DataRev:  dataRev,
		Checksum: checksum,
		Model:    m,
	}
	s.push(a)
	s.cur.Store(a)
	return a
}

// Rollback republishes the generation preceding the current one under
// a new version (versions stay monotonic; the rollback itself is an
// auditable generation). The rolled-back-from artifact stays in
// history until it ages off the ring.
func (s *Store[T]) Rollback() (*Artifact[T], error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.hist) < 2 {
		return nil, ErrNoHistory
	}
	prev := s.hist[len(s.hist)-2]
	s.version++
	a := &Artifact[T]{
		Version:  s.version,
		Trainer:  prev.Trainer,
		DataRev:  prev.DataRev,
		Checksum: prev.Checksum,
		Model:    prev.Model,
	}
	s.push(a)
	s.cur.Store(a)
	return a, nil
}

// push appends to the ring, evicting the oldest past the bound. Caller
// holds mu.
func (s *Store[T]) push(a *Artifact[T]) {
	s.hist = append(s.hist, a)
	if len(s.hist) > s.capN {
		over := len(s.hist) - s.capN
		s.hist = append(s.hist[:0:0], s.hist[over:]...)
	}
}

// History returns the retained generations, newest first (the serving
// artifact leads). The slice is a copy; the artifacts are shared and
// immutable.
func (s *Store[T]) History() []*Artifact[T] {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Artifact[T], len(s.hist))
	for i, a := range s.hist {
		out[len(s.hist)-1-i] = a
	}
	return out
}
