package modelstore

import (
	"sync"
	"testing"
)

func TestPublishMonotonicVersions(t *testing.T) {
	s := New[string](3)
	if s.Current() != nil || s.Version() != 0 {
		t.Fatalf("fresh store must be empty, got %v v%d", s.Current(), s.Version())
	}
	for i := 1; i <= 5; i++ {
		a := s.Publish("sgd", uint64(i*10), uint64(i), "model")
		if a.Version != uint64(i) {
			t.Fatalf("publish %d: version %d", i, a.Version)
		}
		if got := s.Current(); got != a {
			t.Fatalf("publish %d: Current() = %v, want the just-published artifact", i, got)
		}
	}
	if s.Version() != 5 {
		t.Fatalf("Version() = %d, want 5", s.Version())
	}
}

func TestHistoryBoundedNewestFirst(t *testing.T) {
	s := New[int](3)
	for i := 1; i <= 5; i++ {
		s.Publish("t", 0, uint64(i), i)
	}
	h := s.History()
	if len(h) != 3 {
		t.Fatalf("history length %d, want 3", len(h))
	}
	for i, wantV := range []uint64{5, 4, 3} {
		if h[i].Version != wantV {
			t.Errorf("history[%d].Version = %d, want %d", i, h[i].Version, wantV)
		}
	}
	if h[0] != s.Current() {
		t.Errorf("history must lead with the serving artifact")
	}
}

func TestRollbackRepublishesUnderNewVersion(t *testing.T) {
	s := New[string](4)
	if _, err := s.Rollback(); err != ErrNoHistory {
		t.Fatalf("rollback on empty store: err = %v, want ErrNoHistory", err)
	}
	s.Publish("sgd", 1, 11, "gen1")
	if _, err := s.Rollback(); err != ErrNoHistory {
		t.Fatalf("rollback with one generation: err = %v, want ErrNoHistory", err)
	}
	s.Publish("als-wr", 2, 22, "gen2")

	a, err := s.Rollback()
	if err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if a.Version != 3 {
		t.Errorf("rollback version = %d, want 3 (monotonic, never backwards)", a.Version)
	}
	if a.Model != "gen1" || a.Trainer != "sgd" || a.Checksum != 11 || a.DataRev != 1 {
		t.Errorf("rollback must republish gen1's payload and provenance, got %+v", a)
	}
	if s.Current() != a {
		t.Errorf("rolled-back artifact must be serving")
	}
	// Rolling back again returns to gen2 (the generation preceding the
	// rollback artifact), under version 4.
	b, err := s.Rollback()
	if err != nil {
		t.Fatalf("second rollback: %v", err)
	}
	if b.Version != 4 || b.Model != "gen2" {
		t.Errorf("second rollback = v%d %q, want v4 gen2", b.Version, b.Model)
	}
}

func TestDefaultHistory(t *testing.T) {
	s := New[int](0)
	for i := 0; i < 10; i++ {
		s.Publish("t", 0, 0, i)
	}
	if got := len(s.History()); got != DefaultHistory {
		t.Fatalf("history length %d, want DefaultHistory %d", got, DefaultHistory)
	}
}

// TestConcurrentReadersDuringPublish hammers Current/History from many
// goroutines while generations are published — the exact shape of
// reads racing a background rebuild swap. Run with -race.
func TestConcurrentReadersDuringPublish(t *testing.T) {
	s := New[int](4)
	s.Publish("t", 0, 0, 0)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				a := s.Current()
				if a == nil {
					t.Error("Current() nil after first publish")
					return
				}
				if a.Version < last {
					t.Errorf("version moved backwards: %d after %d", a.Version, last)
					return
				}
				last = a.Version
				if h := s.History(); len(h) == 0 || h[0].Version < last {
					t.Error("history lags the observed serving version")
					return
				}
			}
		}()
	}
	for i := 1; i <= 200; i++ {
		s.Publish("t", uint64(i), uint64(i), i)
	}
	close(done)
	wg.Wait()
}
