// The three stock interceptors every engine pipeline is built with.
// Composition order is part of the contract and is what the engine
// documents and tests:
//
//	Metrics ⟶ Trace ⟶ Deadline ⟶ Recover ⟶ stage
//
// Metrics is outermost so it observes every stage attempt — including
// ones Deadline refuses to start and panics Recover converted to
// errors — and its latency figure covers the full wrapped execution.
// Recover is innermost, closest to the stage, so a panic is turned
// into an ordinary error before it crosses Deadline or Metrics and the
// serving goroutine survives.
//
// Trace (internal/trace.Interceptor) sits just inside Metrics, outside
// the whole resilience chain the engine splices in between Trace and
// Deadline (Shed ⟶ Fallback ⟶ Breaker ⟶ Retry — see
// internal/core/resilience.go). One stage span therefore covers every
// retry attempt and any fallback reroute, and resilience events
// recorded mid-flight parent under it; an inner failure the chain
// absorbed leaves the span's own error empty, with the evidence
// attached as child event spans.
package pipeline

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"
)

// StatsRecorder consumes one observation per stage execution. The
// engine's usage counters implement it; tests substitute fakes.
// Implementations must be safe for concurrent use.
type StatsRecorder interface {
	RecordStage(pipeline, stage string, d time.Duration, err error)
}

// Metrics records one (duration, error) observation per stage
// execution into rec. Compose it outermost so the observation covers
// deadline refusals and recovered panics too.
func Metrics(rec StatsRecorder) Interceptor {
	return func(info StageInfo, next Handler) Handler {
		return func(ctx context.Context, req *Request) (*Response, error) {
			start := time.Now()
			resp, err := next(ctx, req)
			rec.RecordStage(info.Pipeline, info.Stage, time.Since(start), err)
			return resp, err
		}
	}
}

// Deadline enforces cancellation between stages: a stage never starts
// on a dead context (the context's error is returned verbatim, so
// callers still see context.Canceled / DeadlineExceeded). When
// perStage > 0 each stage additionally runs under its own deadline of
// that duration, bounding how long any single stage can stall a
// request.
func Deadline(perStage time.Duration) Interceptor {
	return func(info StageInfo, next Handler) Handler {
		return func(ctx context.Context, req *Request) (*Response, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if perStage > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, perStage)
				defer cancel()
			}
			return next(ctx, req)
		}
	}
}

// PanicError is the error a recovered stage panic is converted into.
type PanicError struct {
	Pipeline string
	Stage    string
	Value    any    // the recovered panic value
	Stack    []byte // goroutine stack at the panic site
}

// Error implements error.
func (p *PanicError) Error() string {
	return fmt.Sprintf("pipeline %s: stage %s panicked: %v", p.Pipeline, p.Stage, p.Value)
}

// Recover converts a stage panic into a *PanicError instead of letting
// it unwind the serving goroutine and kill the process. Compose it
// innermost so outer interceptors observe the converted error like any
// other stage failure.
func Recover() Interceptor {
	return func(info StageInfo, next Handler) Handler {
		return func(ctx context.Context, req *Request) (resp *Response, err error) {
			defer func() {
				if v := recover(); v != nil {
					resp = nil
					err = &PanicError{
						Pipeline: info.Pipeline,
						Stage:    info.Stage,
						Value:    v,
						Stack:    debug.Stack(),
					}
				}
			}()
			return next(ctx, req)
		}
	}
}
