// Package pipeline decomposes a serving operation into named,
// composable stages with wrap-around middleware, in the style of
// http.Handler chains and grpc interceptors.
//
// The survey frames explanation as a cycle — recommend, explain,
// present, interact — and its evaluation literature (Nunes & Jannach's
// taxonomy, Chen et al.'s per-layer measurements) treats content
// generation and presentation as independent layers. This package is
// that separation made executable: each of the engine's read
// operations is a Pipeline of Stages (rank, rerank, explainTopN,
// present, ...), and cross-cutting concerns — per-stage latency
// accounting, deadline enforcement, panic containment — are
// Interceptors wrapped around every stage rather than code threaded
// through the engine.
//
// A Stage is a named Handler. Stages in a pipeline execute in order,
// sharing one Request: early stages fill the request's working fields
// (predictions, resolved items, explanations) and a late stage returns
// the Response. A stage that returns a nil Response simply passes
// control to the next stage; the pipeline's result is the last
// non-nil Response. Any stage error aborts the run and is returned
// verbatim, so callers' errors.Is / == checks on sentinel errors
// (cold start, unknown item, context cancellation) keep working.
//
// Immutable model state (the engine's lock-free snapshot from PR 1)
// travels through the request context, not the Request: the engine
// loads its snapshot once per operation, attaches it to ctx, and every
// stage reads the same consistent generation. The pipeline itself
// holds no model state and is therefore safe for concurrent use.
package pipeline

import (
	"context"

	"repro/internal/explain"
	"repro/internal/model"
	"repro/internal/present"
	"repro/internal/recsys"
)

// Operation names used as pipeline names by the engine. They appear in
// StageInfo.Pipeline and in per-stage metrics labels.
const (
	OpRecommend = "recommend"
	OpExplain   = "explain"
	OpWhyLow    = "whylow"
	OpBrowse    = "browse"
	OpSimilar   = "similar"
)

// Request is one serving request flowing through a pipeline. The
// first block is the caller's input; the second is the working set
// stages use to hand intermediate results to their successors.
type Request struct {
	Op   string       // operation name (OpRecommend, ...)
	User model.UserID // requesting user
	Item model.ItemID // target/seed item, when the operation has one
	N    int          // requested list length, when the operation has one

	// Working set, filled progressively by stages.
	Preds       []recsys.Prediction  // candidate ranking (rank → rerank)
	Target      *model.Item          // resolved Item (resolve → *)
	Entries     []present.Entry      // explained entries (explainTopN → present)
	Explanation *explain.Explanation // single explanation (explain/explainLow → present)

	// Degraded is set by fallback interceptors when a primary stage
	// failed and a cheaper degraded-mode path filled the working set
	// instead; presentation stages copy it onto the terminal response
	// object so clients see the downgrade.
	Degraded bool
}

// Response is the terminal product of a pipeline run; exactly one
// field is set, matching the operation.
type Response struct {
	Presentation *present.Presentation
	Explanation  *explain.Explanation
	View         *present.RatingsView
}

// Handler processes a request. Returning a nil Response (and nil
// error) yields to the next stage; a non-nil Response becomes the
// pipeline's result.
type Handler func(ctx context.Context, req *Request) (*Response, error)

// Stage is a named pipeline step.
type Stage struct {
	Name string
	Run  Handler
}

// StageInfo identifies a stage to interceptors and metrics sinks.
type StageInfo struct {
	Pipeline string // pipeline (operation) name
	Stage    string // stage name within the pipeline
}

// Interceptor wraps a stage handler with cross-cutting behaviour. In a
// New call the first interceptor is outermost: New(name, stages, A, B)
// executes A(before) → B(before) → stage → B(after) → A(after).
type Interceptor func(info StageInfo, next Handler) Handler

// Pipeline is an ordered sequence of stages, each pre-wrapped with the
// pipeline's interceptors at construction time so Run pays no
// composition cost per request.
type Pipeline struct {
	name   string
	stages []Stage
}

// New composes stages into a pipeline, wrapping every stage with the
// given interceptors (first interceptor outermost).
func New(name string, stages []Stage, interceptors ...Interceptor) *Pipeline {
	p := &Pipeline{name: name, stages: make([]Stage, 0, len(stages))}
	for _, st := range stages {
		info := StageInfo{Pipeline: name, Stage: st.Name}
		h := st.Run
		for i := len(interceptors) - 1; i >= 0; i-- {
			h = interceptors[i](info, h)
		}
		p.stages = append(p.stages, Stage{Name: st.Name, Run: h})
	}
	return p
}

// Name returns the pipeline's (operation) name.
func (p *Pipeline) Name() string { return p.name }

// Run executes the stages in order against req. Errors abort the run
// and are returned verbatim; the result is the last non-nil Response a
// stage produced.
func (p *Pipeline) Run(ctx context.Context, req *Request) (*Response, error) {
	var resp *Response
	for i := range p.stages {
		r, err := p.stages[i].Run(ctx, req)
		if err != nil {
			return nil, err
		}
		if r != nil {
			resp = r
		}
	}
	return resp, nil
}
