package pipeline

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// passStage returns a stage that appends its name to log and yields.
func passStage(name string, log *[]string) Stage {
	return Stage{Name: name, Run: func(ctx context.Context, req *Request) (*Response, error) {
		*log = append(*log, name)
		return nil, nil
	}}
}

func TestRunExecutesStagesInOrder(t *testing.T) {
	var log []string
	p := New("op", []Stage{
		passStage("a", &log),
		passStage("b", &log),
		{Name: "c", Run: func(ctx context.Context, req *Request) (*Response, error) {
			log = append(log, "c")
			return &Response{}, nil
		}},
	})
	resp, err := p.Run(context.Background(), &Request{Op: "op"})
	if err != nil {
		t.Fatal(err)
	}
	if resp == nil {
		t.Fatal("final stage response lost")
	}
	if got := strings.Join(log, ","); got != "a,b,c" {
		t.Fatalf("stage order = %s", got)
	}
}

func TestRunKeepsLastNonNilResponse(t *testing.T) {
	early := &Response{}
	p := New("op", []Stage{
		{Name: "produce", Run: func(ctx context.Context, req *Request) (*Response, error) {
			return early, nil
		}},
		{Name: "passthrough", Run: func(ctx context.Context, req *Request) (*Response, error) {
			return nil, nil
		}},
	})
	resp, err := p.Run(context.Background(), &Request{})
	if err != nil {
		t.Fatal(err)
	}
	if resp != early {
		t.Fatal("nil response from a later stage overwrote the result")
	}
}

func TestRunAbortsOnErrorVerbatim(t *testing.T) {
	sentinel := errors.New("boom")
	ran := false
	p := New("op", []Stage{
		{Name: "fail", Run: func(ctx context.Context, req *Request) (*Response, error) {
			return nil, sentinel
		}},
		{Name: "after", Run: func(ctx context.Context, req *Request) (*Response, error) {
			ran = true
			return &Response{}, nil
		}},
	})
	_, err := p.Run(context.Background(), &Request{})
	// Verbatim, not wrapped: callers compare sentinel errors with ==.
	if err != sentinel {
		t.Fatalf("err = %v, want the sentinel itself", err)
	}
	if ran {
		t.Fatal("stage after a failure still ran")
	}
}

func TestRequestThreadsWorkingSet(t *testing.T) {
	p := New("op", []Stage{
		{Name: "fill", Run: func(ctx context.Context, req *Request) (*Response, error) {
			req.N = 42
			return nil, nil
		}},
		{Name: "read", Run: func(ctx context.Context, req *Request) (*Response, error) {
			if req.N != 42 {
				return nil, errors.New("working set not shared")
			}
			return &Response{}, nil
		}},
	})
	if _, err := p.Run(context.Background(), &Request{}); err != nil {
		t.Fatal(err)
	}
}

// labelInterceptor records enter/exit events around each stage.
func labelInterceptor(label string, events *[]string) Interceptor {
	return func(info StageInfo, next Handler) Handler {
		return func(ctx context.Context, req *Request) (*Response, error) {
			*events = append(*events, label+">"+info.Stage)
			resp, err := next(ctx, req)
			*events = append(*events, label+"<"+info.Stage)
			return resp, err
		}
	}
}

// TestInterceptorOrder proves the documented contract: the first
// interceptor passed to New is outermost.
func TestInterceptorOrder(t *testing.T) {
	var events []string
	p := New("op", []Stage{
		{Name: "s", Run: func(ctx context.Context, req *Request) (*Response, error) {
			events = append(events, "stage")
			return &Response{}, nil
		}},
	}, labelInterceptor("A", &events), labelInterceptor("B", &events))
	if _, err := p.Run(context.Background(), &Request{}); err != nil {
		t.Fatal(err)
	}
	want := "A>s,B>s,stage,B<s,A<s"
	if got := strings.Join(events, ","); got != want {
		t.Fatalf("interceptor order = %s, want %s", got, want)
	}
}

// recordingSink is a StatsRecorder fake.
type recordingSink struct {
	mu  sync.Mutex
	obs []struct {
		pipe, stage string
		d           time.Duration
		err         error
	}
}

func (r *recordingSink) RecordStage(pipe, stage string, d time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.obs = append(r.obs, struct {
		pipe, stage string
		d           time.Duration
		err         error
	}{pipe, stage, d, err})
}

func TestMetricsInterceptorRecords(t *testing.T) {
	sink := &recordingSink{}
	p := New("op", []Stage{
		{Name: "ok", Run: func(ctx context.Context, req *Request) (*Response, error) {
			return &Response{}, nil
		}},
	}, Metrics(sink))
	if _, err := p.Run(context.Background(), &Request{}); err != nil {
		t.Fatal(err)
	}
	if len(sink.obs) != 1 {
		t.Fatalf("observations = %d", len(sink.obs))
	}
	o := sink.obs[0]
	if o.pipe != "op" || o.stage != "ok" || o.err != nil || o.d < 0 {
		t.Fatalf("observation = %+v", o)
	}
}

func TestDeadlineStopsDeadContext(t *testing.T) {
	ran := false
	p := New("op", []Stage{
		{Name: "s", Run: func(ctx context.Context, req *Request) (*Response, error) {
			ran = true
			return &Response{}, nil
		}},
	}, Deadline(0))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.Run(ctx, &Request{})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled verbatim", err)
	}
	if ran {
		t.Fatal("stage ran on a cancelled context")
	}
}

func TestDeadlinePerStageTimeout(t *testing.T) {
	p := New("op", []Stage{
		{Name: "slow", Run: func(ctx context.Context, req *Request) (*Response, error) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(5 * time.Second):
				return &Response{}, nil
			}
		}},
	}, Deadline(5*time.Millisecond))
	_, err := p.Run(context.Background(), &Request{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestRecoverConvertsPanic(t *testing.T) {
	p := New("op", []Stage{
		{Name: "bad", Run: func(ctx context.Context, req *Request) (*Response, error) {
			panic("kaboom")
		}},
	}, Recover())
	_, err := p.Run(context.Background(), &Request{})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Pipeline != "op" || pe.Stage != "bad" || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = %+v", pe)
	}
	if !strings.Contains(pe.Error(), "kaboom") {
		t.Fatalf("Error() = %q", pe.Error())
	}
}

// TestStockInterceptorOrder proves the engine's documented composition
// — Metrics outermost, then Deadline, then Recover innermost — behaves
// as specified: a recovered panic is observed by the metrics sink as
// an ordinary stage error, and a deadline refusal is observed too
// (metrics wraps deadline), while the stage itself never runs.
func TestStockInterceptorOrder(t *testing.T) {
	sink := &recordingSink{}
	stock := []Interceptor{Metrics(sink), Deadline(0), Recover()}

	// A panicking stage: Recover (innermost) converts, Metrics
	// (outermost) still records the attempt with the converted error.
	p := New("op", []Stage{
		{Name: "bad", Run: func(ctx context.Context, req *Request) (*Response, error) {
			panic("kaboom")
		}},
	}, stock...)
	_, err := p.Run(context.Background(), &Request{})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic not converted: %v", err)
	}
	if len(sink.obs) != 1 {
		t.Fatalf("metrics observations = %d, want 1 (metrics must wrap recovery)", len(sink.obs))
	}
	if !errors.As(sink.obs[0].err, &pe) {
		t.Fatalf("metrics observed err = %v, want the PanicError", sink.obs[0].err)
	}

	// A dead context: Deadline refuses the stage, Metrics still sees it.
	sink.obs = nil
	ran := false
	p = New("op", []Stage{
		{Name: "s", Run: func(ctx context.Context, req *Request) (*Response, error) {
			ran = true
			return &Response{}, nil
		}},
	}, stock...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(ctx, &Request{}); err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("stage ran on dead context")
	}
	if len(sink.obs) != 1 || sink.obs[0].err != context.Canceled {
		t.Fatalf("metrics must wrap deadline: obs = %+v", sink.obs)
	}
}
