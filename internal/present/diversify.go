package present

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/recsys"
)

// Topic diversification after Ziegler, McNee, Konstan & Lausen
// (WWW'05, the survey's reference [39] for "diversity"): a greedy
// re-ranker that trades predicted score against similarity to the
// items already chosen, so the final list does not collapse onto one
// topic. Because the survey's transparency criterion applies to any
// factor that shapes recommendations, the re-ranker also produces a
// disclosure sentence.

// Diversify greedily selects up to n predictions: at each step the
// candidate maximising
//
//	lambda*normalisedScore - (1-lambda)*maxKeywordSimilarityToChosen
//
// is taken. lambda=1 reproduces the score ranking; lambda=0 ignores
// scores entirely. The input must be sorted by descending score (as
// Recommend returns); it is not modified.
func Diversify(cat *model.Catalog, preds []recsys.Prediction, lambda float64, n int) []recsys.Prediction {
	if lambda < 0 {
		lambda = 0
	}
	if lambda > 1 {
		lambda = 1
	}
	if n <= 0 || n > len(preds) {
		n = len(preds)
	}
	if len(preds) == 0 {
		return nil
	}
	remaining := append([]recsys.Prediction(nil), preds...)
	out := make([]recsys.Prediction, 0, n)
	var chosen []*model.Item
	for len(out) < n && len(remaining) > 0 {
		bestIdx := -1
		bestVal := 0.0
		for i, p := range remaining {
			it, err := cat.Item(p.Item)
			if err != nil {
				continue
			}
			norm := (p.Score - model.MinRating) / (model.MaxRating - model.MinRating)
			var maxSim float64
			for _, ch := range chosen {
				if s := keywordJaccard(it, ch); s > maxSim {
					maxSim = s
				}
			}
			val := lambda*norm - (1-lambda)*maxSim
			if bestIdx == -1 || val > bestVal {
				bestIdx, bestVal = i, val
			}
		}
		if bestIdx == -1 {
			break
		}
		pick := remaining[bestIdx]
		if it, err := cat.Item(pick.Item); err == nil {
			chosen = append(chosen, it)
		}
		out = append(out, pick)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return out
}

func keywordJaccard(a, b *model.Item) float64 {
	if len(a.Keywords) == 0 && len(b.Keywords) == 0 {
		return 1
	}
	set := map[string]bool{}
	union := map[string]bool{}
	for _, k := range a.Keywords {
		set[k] = true
		union[k] = true
	}
	var inter int
	for _, k := range b.Keywords {
		if set[k] {
			inter++
		}
		union[k] = true
	}
	if len(union) == 0 {
		return 0
	}
	return float64(inter) / float64(len(union))
}

// DiversificationNote is the transparency disclosure for a diversified
// list; empty at lambda >= 1 (no diversification happened).
func DiversificationNote(lambda float64) string {
	if lambda >= 1 {
		return ""
	}
	return fmt.Sprintf(
		"We varied the topics in this list (diversification strength %.0f%%), so some items outrank higher-scored but repetitive ones.",
		(1-lambda)*100)
}
