package present

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/recsys"
	"repro/internal/recsys/cf"
)

func diversifyFixture() (*model.Catalog, []recsys.Prediction) {
	cat := model.NewCatalog("news")
	add := func(id model.ItemID, score float64, kws ...string) recsys.Prediction {
		cat.MustAdd(&model.Item{ID: id, Keywords: kws})
		return recsys.Prediction{Item: id, Score: score}
	}
	preds := []recsys.Prediction{
		add(1, 4.8, "sport", "football"),
		add(2, 4.7, "sport", "football"),
		add(3, 4.6, "sport", "football"),
		add(4, 4.2, "technology", "gadgets"),
		add(5, 4.0, "culture", "film"),
	}
	return cat, preds
}

func TestDiversifyLambdaOneKeepsRanking(t *testing.T) {
	cat, preds := diversifyFixture()
	out := Diversify(cat, preds, 1, 5)
	for i := range preds {
		if out[i].Item != preds[i].Item {
			t.Fatalf("lambda=1 changed the ranking: %v", out)
		}
	}
}

func TestDiversifyBreaksTopicMonoculture(t *testing.T) {
	cat, preds := diversifyFixture()
	out := Diversify(cat, preds, 0.5, 3)
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	// The top pick keeps its place; the rest should not all be
	// football.
	if out[0].Item != 1 {
		t.Fatalf("best item displaced: %v", out)
	}
	topics := map[model.ItemID]bool{2: true, 3: true}
	if topics[out[1].Item] && topics[out[2].Item] {
		t.Fatalf("list is still all football: %v", out)
	}
	// Measured diversity improves over the plain top-3.
	plain := []model.ItemID{preds[0].Item, preds[1].Item, preds[2].Item}
	var divd []model.ItemID
	for _, p := range out {
		divd = append(divd, p.Item)
	}
	if eval.IntraListDiversity(cat, divd) <= eval.IntraListDiversity(cat, plain) {
		t.Fatal("diversification did not raise intra-list diversity")
	}
}

func TestDiversifyInputUntouched(t *testing.T) {
	cat, preds := diversifyFixture()
	first := preds[0].Item
	Diversify(cat, preds, 0.3, 5)
	if preds[0].Item != first {
		t.Fatal("input slice mutated")
	}
}

func TestDiversifyDegenerate(t *testing.T) {
	cat, preds := diversifyFixture()
	if out := Diversify(cat, nil, 0.5, 3); out != nil {
		t.Fatal("empty input should return nil")
	}
	// Out-of-range lambda clamps rather than panicking.
	if out := Diversify(cat, preds, -1, 2); len(out) != 2 {
		t.Fatalf("lambda clamp low: %v", out)
	}
	if out := Diversify(cat, preds, 2, 2); len(out) != 2 || out[0].Item != 1 {
		t.Fatalf("lambda clamp high: %v", out)
	}
	// n beyond input length returns everything.
	if out := Diversify(cat, preds, 0.5, 99); len(out) != len(preds) {
		t.Fatalf("n clamp: %v", out)
	}
}

func TestDiversifyOnRealRecommender(t *testing.T) {
	c := dataset.News(dataset.Config{Seed: 131, Users: 40, Items: 120, RatingsPerUser: 25})
	knn := cf.NewUserKNN(c.Ratings, c.Catalog, cf.Options{K: 15})
	u := model.UserID(1)
	preds := knn.Recommend(u, 30, recsys.ExcludeRated(c.Ratings, u))
	if len(preds) < 10 {
		t.Skip("not enough candidates")
	}
	plain := preds[:10]
	diverse := Diversify(c.Catalog, preds, 0.6, 10)
	toIDs := func(ps []recsys.Prediction) []model.ItemID {
		out := make([]model.ItemID, len(ps))
		for i, p := range ps {
			out[i] = p.Item
		}
		return out
	}
	if eval.IntraListDiversity(c.Catalog, toIDs(diverse)) <
		eval.IntraListDiversity(c.Catalog, toIDs(plain)) {
		t.Fatal("diversification reduced diversity on a real list")
	}
}

func TestDiversificationNote(t *testing.T) {
	if DiversificationNote(1) != "" {
		t.Fatal("no note at lambda=1")
	}
	note := DiversificationNote(0.6)
	if !strings.Contains(note, "40%") || !strings.Contains(note, "varied the topics") {
		t.Fatalf("note = %q", note)
	}
}
