package present

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// Faceted browsing (Yee et al. 2003, cited in Section 4.5): each item
// aspect becomes a facet with levels, and the user can see how many
// items are available at each level — "the user can see where they
// are in the search space".

// FacetLevel is one value of a facet with its item count.
type FacetLevel struct {
	Value string
	Count int
}

// Facet is one aspect of the items (a categorical attribute or the
// keyword vocabulary) with per-level counts.
type Facet struct {
	Name   string
	Levels []FacetLevel
}

// BuildFacets computes facets over the given items: one facet per
// categorical attribute in the schema, plus a "keyword" facet when
// items carry keywords. Levels are sorted by descending count, then
// value.
func BuildFacets(cat *model.Catalog, items []*model.Item) []Facet {
	var facets []Facet
	for _, def := range cat.Attrs {
		if def.Kind != model.Categorical {
			continue
		}
		counts := map[string]int{}
		for _, it := range items {
			if v, ok := it.Categorical[def.Name]; ok {
				counts[v]++
			}
		}
		if len(counts) > 0 {
			facets = append(facets, Facet{Name: def.Name, Levels: sortedLevels(counts)})
		}
	}
	kw := map[string]int{}
	for _, it := range items {
		for _, k := range it.Keywords {
			kw[k]++
		}
	}
	if len(kw) > 0 {
		facets = append(facets, Facet{Name: "keyword", Levels: sortedLevels(kw)})
	}
	return facets
}

func sortedLevels(counts map[string]int) []FacetLevel {
	levels := make([]FacetLevel, 0, len(counts))
	for v, c := range counts {
		levels = append(levels, FacetLevel{Value: v, Count: c})
	}
	sort.Slice(levels, func(a, b int) bool {
		if levels[a].Count != levels[b].Count {
			return levels[a].Count > levels[b].Count
		}
		return levels[a].Value < levels[b].Value
	})
	return levels
}

// Narrow returns the items matching one facet level: either a
// categorical attribute value or (for the "keyword" facet) a keyword.
func Narrow(items []*model.Item, facetName, value string) []*model.Item {
	var out []*model.Item
	for _, it := range items {
		if facetName == "keyword" {
			if it.HasKeyword(value) {
				out = append(out, it)
			}
			continue
		}
		if it.Categorical[facetName] == value {
			out = append(out, it)
		}
	}
	return out
}

// RenderFacets draws the facet sidebar: names, levels, counts.
func RenderFacets(facets []Facet) string {
	var b strings.Builder
	for _, f := range facets {
		fmt.Fprintf(&b, "%s:\n", f.Name)
		for _, l := range f.Levels {
			fmt.Fprintf(&b, "  %s (%d)\n", l.Value, l.Count)
		}
	}
	return b.String()
}
