package present

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/explain"
	"repro/internal/model"
	"repro/internal/recsys/knowledge"
)

// Overview is the structured overview of Pu & Chen (Section 4.5): the
// best-matching item at the top, followed by categories of trade-off
// alternatives, each titled by its shared trade-off pattern, e.g.
// "[these laptops]... are cheaper and lighter, but have lower
// processor speed".
type Overview struct {
	Best       knowledge.ScoredItem
	Categories []OverviewCategory
}

// OverviewCategory is one group of alternatives sharing a trade-off
// pattern against the best item.
type OverviewCategory struct {
	// Title is the human-readable trade-off description.
	Title string
	// Pattern is the canonical attribute-direction signature the
	// category groups by, e.g. "price:better|resolution:worse".
	Pattern string
	// Items are the members, best utility first.
	Items []knowledge.ScoredItem
	// MatchScore orders categories: mean utility of members, so
	// categories closer to the user's requirements come first.
	MatchScore float64
}

// BuildOverview groups scored alternatives by their trade-off pattern
// against the best item. Items whose pattern shows no differences are
// folded into the best item's own "very similar" category. maxPerCat
// bounds category size (0 means unbounded).
func BuildOverview(cat *model.Catalog, scored []knowledge.ScoredItem, maxPerCat int) (*Overview, error) {
	if len(scored) == 0 {
		return nil, fmt.Errorf("structured overview: %w", explain.ErrNoEvidence)
	}
	best := scored[0]
	groups := map[string]*OverviewCategory{}
	for _, s := range scored[1:] {
		tos := knowledge.Compare(cat, best.Item, s.Item)
		pattern := patternOf(tos)
		g, ok := groups[pattern]
		if !ok {
			g = &OverviewCategory{Title: titleOf(tos), Pattern: pattern}
			groups[pattern] = g
		}
		if maxPerCat <= 0 || len(g.Items) < maxPerCat {
			g.Items = append(g.Items, s)
		}
	}
	ov := &Overview{Best: best}
	for _, g := range groups {
		var sum float64
		for _, s := range g.Items {
			sum += s.Utility
		}
		g.MatchScore = sum / float64(len(g.Items))
		ov.Categories = append(ov.Categories, *g)
	}
	// The order of the titles depends on how well the category matches
	// the user's requirements (the paper's phrasing).
	sort.Slice(ov.Categories, func(a, b int) bool {
		if ov.Categories[a].MatchScore != ov.Categories[b].MatchScore {
			return ov.Categories[a].MatchScore > ov.Categories[b].MatchScore
		}
		return ov.Categories[a].Pattern < ov.Categories[b].Pattern
	})
	return ov, nil
}

// patternOf canonicalises the non-Same trade-offs into a grouping key.
func patternOf(tos []knowledge.Tradeoff) string {
	var parts []string
	for _, to := range tos {
		if to.Direction == knowledge.Same {
			continue
		}
		parts = append(parts, to.Attr+":"+to.Direction.String())
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return "similar"
	}
	return strings.Join(parts, "|")
}

// titleOf renders the category title from the trade-off pattern.
func titleOf(tos []knowledge.Tradeoff) string {
	var gains, losses []string
	for _, to := range tos {
		switch to.Direction {
		case knowledge.Better:
			gains = append(gains, strings.ToLower(to.Phrase))
		case knowledge.Worse:
			losses = append(losses, strings.ToLower(to.Phrase))
		case knowledge.Different:
			gains = append(gains, strings.ToLower(to.Phrase))
		}
	}
	switch {
	case len(gains) > 0 && len(losses) > 0:
		return fmt.Sprintf("...are %s, but %s", strings.Join(gains, " and "), strings.Join(losses, " and "))
	case len(gains) > 0:
		return fmt.Sprintf("...are %s", strings.Join(gains, " and "))
	case len(losses) > 0:
		return fmt.Sprintf("...are %s", strings.Join(losses, " and "))
	default:
		return "...are very similar"
	}
}

// Render draws the overview: best match then categories in order.
func (o *Overview) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Best match: %s (%.0f%% match)\n", o.Best.Item.Title, o.Best.Utility*100)
	for _, c := range o.Categories {
		fmt.Fprintf(&b, "\nAlternatives that %s:\n", strings.TrimPrefix(c.Title, "..."))
		for _, s := range c.Items {
			fmt.Fprintf(&b, "  - %s (%.0f%% match)\n", s.Item.Title, s.Utility*100)
		}
	}
	return b.String()
}

// NumAlternatives returns the total number of grouped alternatives.
func (o *Overview) NumAlternatives() int {
	var n int
	for _, c := range o.Categories {
		n += len(c.Items)
	}
	return n
}
