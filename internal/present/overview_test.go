package present

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/explain"
	"repro/internal/model"
	"repro/internal/recsys/knowledge"
)

func overviewFixture() (*model.Catalog, []knowledge.ScoredItem) {
	cat := model.NewCatalog("cameras",
		model.AttrDef{Name: "price", Kind: model.Numeric, LessIsBetter: true},
		model.AttrDef{Name: "resolution", Kind: model.Numeric},
	)
	mk := func(id model.ItemID, title string, price, res, util float64) knowledge.ScoredItem {
		it := &model.Item{ID: id, Title: title, Numeric: map[string]float64{"price": price, "resolution": res}}
		cat.MustAdd(it)
		return knowledge.ScoredItem{Item: it, Utility: util}
	}
	best := mk(1, "Best", 400, 20, 0.9)
	cheaper1 := mk(2, "CheapA", 150, 10, 0.7)
	cheaper2 := mk(3, "CheapB", 180, 11, 0.65)
	pricier := mk(4, "Pro", 900, 30, 0.5)
	return cat, []knowledge.ScoredItem{best, cheaper1, cheaper2, pricier}
}

func TestBuildOverviewGroupsByPattern(t *testing.T) {
	cat, scored := overviewFixture()
	ov, err := BuildOverview(cat, scored, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ov.Best.Item.Title != "Best" {
		t.Fatalf("best = %q", ov.Best.Item.Title)
	}
	if len(ov.Categories) != 2 {
		t.Fatalf("categories = %d: %+v", len(ov.Categories), ov.Categories)
	}
	// The cheaper/lower-res category has two members and higher mean
	// utility, so it comes first.
	first := ov.Categories[0]
	if len(first.Items) != 2 {
		t.Fatalf("first category has %d items", len(first.Items))
	}
	if !strings.Contains(first.Title, "cheaper") || !strings.Contains(first.Title, "lower resolution") {
		t.Fatalf("first title = %q", first.Title)
	}
	second := ov.Categories[1]
	if !strings.Contains(second.Title, "more expensive") || !strings.Contains(second.Title, "higher resolution") {
		t.Fatalf("second title = %q", second.Title)
	}
	if ov.NumAlternatives() != 3 {
		t.Fatalf("alternatives = %d", ov.NumAlternatives())
	}
}

func TestBuildOverviewMaxPerCategory(t *testing.T) {
	cat, scored := overviewFixture()
	ov, err := BuildOverview(cat, scored, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ov.Categories {
		if len(c.Items) > 1 {
			t.Fatalf("category exceeds cap: %+v", c)
		}
	}
}

func TestBuildOverviewEmpty(t *testing.T) {
	cat, _ := overviewFixture()
	if _, err := BuildOverview(cat, nil, 0); !errors.Is(err, explain.ErrNoEvidence) {
		t.Fatalf("err = %v", err)
	}
}

func TestOverviewRender(t *testing.T) {
	cat, scored := overviewFixture()
	ov, _ := BuildOverview(cat, scored, 0)
	out := ov.Render()
	if !strings.Contains(out, "Best match: Best (90% match)") {
		t.Fatalf("render:\n%s", out)
	}
	if !strings.Contains(out, "Alternatives that are cheaper") {
		t.Fatalf("render:\n%s", out)
	}
	if !strings.Contains(out, "CheapA (70% match)") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestOverviewOnGeneratedCameras(t *testing.T) {
	c := dataset.Cameras(dataset.Config{Seed: 11, Users: 3, Items: 60, RatingsPerUser: 2})
	r := knowledge.New(c.Catalog)
	lo, hi, _ := c.Catalog.NumericRange(dataset.CamPrice)
	prefs := &knowledge.Preferences{
		NumericIdeal:  map[string]float64{dataset.CamPrice: lo + (hi-lo)*0.2, dataset.CamResolution: 18},
		NumericWeight: map[string]float64{dataset.CamPrice: 2, dataset.CamResolution: 1},
	}
	scored, err := r.Recommend(prefs, nil, 20)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := BuildOverview(c.Catalog, scored, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ov.Categories) == 0 {
		t.Fatal("no categories built")
	}
	// Categories are ordered by match score.
	for i := 1; i < len(ov.Categories); i++ {
		if ov.Categories[i-1].MatchScore < ov.Categories[i].MatchScore {
			t.Fatal("categories not ordered by match")
		}
	}
}

func TestFacets(t *testing.T) {
	c := dataset.Restaurants(dataset.Config{Seed: 3, Users: 3, Items: 40, RatingsPerUser: 2})
	facets := BuildFacets(c.Catalog, c.Catalog.Items())
	var cuisine *Facet
	for i := range facets {
		if facets[i].Name == dataset.RestCuisine {
			cuisine = &facets[i]
		}
	}
	if cuisine == nil {
		t.Fatal("cuisine facet missing")
	}
	var total int
	for _, l := range cuisine.Levels {
		total += l.Count
	}
	if total != 40 {
		t.Fatalf("cuisine level counts sum to %d, want 40", total)
	}
	for i := 1; i < len(cuisine.Levels); i++ {
		if cuisine.Levels[i-1].Count < cuisine.Levels[i].Count {
			t.Fatal("levels not sorted by count")
		}
	}
	// Narrowing by a level yields exactly that count.
	lvl := cuisine.Levels[0]
	narrowed := Narrow(c.Catalog.Items(), dataset.RestCuisine, lvl.Value)
	if len(narrowed) != lvl.Count {
		t.Fatalf("narrow returned %d, facet said %d", len(narrowed), lvl.Count)
	}
	// Keyword facet present and narrowable.
	kwNarrow := Narrow(c.Catalog.Items(), "keyword", lvl.Value)
	if len(kwNarrow) != lvl.Count {
		t.Fatalf("keyword narrow = %d", len(kwNarrow))
	}
	out := RenderFacets(facets)
	if !strings.Contains(out, "cuisine:") || !strings.Contains(out, "(") {
		t.Fatalf("facet render:\n%s", out)
	}
}
