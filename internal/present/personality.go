package present

import (
	"fmt"

	"repro/internal/explain"
	"repro/internal/model"
	"repro/internal/recsys"
)

// Personality angles the choice of recommended items or the predicted
// ratings (Section 4.6). A recommender can be affirming (familiar,
// trust-building), serendipitous (novel, satisfaction-building), bold
// (recommend more strongly than the evidence supports) or frank
// (state true confidence). When such factors shape the recommendation
// the survey's transparency criterion says they must be disclosed —
// so Apply returns both the adjusted predictions and the disclosure
// sentence.
type Personality int

// Personalities.
const (
	Neutral Personality = iota
	Affirming
	Serendipitous
	Bold
	Frank
)

func (p Personality) String() string {
	switch p {
	case Neutral:
		return "neutral"
	case Affirming:
		return "affirming"
	case Serendipitous:
		return "serendipitous"
	case Bold:
		return "bold"
	case Frank:
		return "frank"
	default:
		return fmt.Sprintf("Personality(%d)", int(p))
	}
}

// Disclosure returns the transparency sentence describing how the
// personality shapes recommendations; empty for Neutral.
func (p Personality) Disclosure() string {
	switch p {
	case Affirming:
		return "We lean toward items you are likely to already know."
	case Serendipitous:
		return "We lean toward novel items to surprise you."
	case Bold:
		return "We state our recommendations more strongly than our raw predictions."
	case Frank:
		return "We always disclose how confident we are."
	default:
		return ""
	}
}

// Apply adjusts a ranked prediction list according to the personality
// and re-sorts it. The catalogue supplies popularity for the
// familiarity-driven personalities. The input slice is not modified.
func (p Personality) Apply(cat *model.Catalog, preds []recsys.Prediction) []recsys.Prediction {
	out := append([]recsys.Prediction(nil), preds...)
	switch p {
	case Affirming:
		// Boost familiar (popular) items: a conservative, trust-first
		// strategy (the survey cites Amazon's familiar-item bias).
		for i := range out {
			if it, err := cat.Item(out[i].Item); err == nil {
				out[i].Score = model.ClampRating(out[i].Score + 0.6*(it.Popularity-0.3))
			}
		}
	case Serendipitous:
		// Boost novel (unpopular, recent) items to surprise the user.
		for i := range out {
			if it, err := cat.Item(out[i].Item); err == nil {
				out[i].Score = model.ClampRating(out[i].Score + 0.6*(0.7-it.Popularity) + 0.2*(it.Recency-0.5))
			}
		}
	case Bold:
		// Exaggerate deviations from the midpoint.
		for i := range out {
			mid := (model.MinRating + model.MaxRating) / 2
			out[i].Score = model.ClampRating(mid + 1.5*(out[i].Score-mid))
		}
	case Frank, Neutral:
		// No score changes; Frank affects rendering only.
	}
	recsys.SortPredictions(out)
	return out
}

// Decorate attaches the personality's rendering effects to an
// explanation: Frank appends the confidence phrase, every non-neutral
// personality appends its disclosure.
func (p Personality) Decorate(e *explain.Explanation) *explain.Explanation {
	if e == nil {
		return nil
	}
	if p == Frank {
		explain.WithFrankConfidence(e)
	}
	if d := p.Disclosure(); d != "" && p != Frank {
		e.Text += " (" + d + ")"
	}
	return e
}
