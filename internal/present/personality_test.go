package present

import (
	"strings"
	"testing"

	"repro/internal/explain"
	"repro/internal/model"
	"repro/internal/recsys"
)

func personalityFixture() (*model.Catalog, []recsys.Prediction) {
	cat := model.NewCatalog("movies")
	cat.MustAdd(&model.Item{ID: 1, Title: "Blockbuster", Popularity: 0.95, Recency: 0.5})
	cat.MustAdd(&model.Item{ID: 2, Title: "Obscure Gem", Popularity: 0.05, Recency: 0.9})
	preds := []recsys.Prediction{
		{Item: 1, Score: 4.0, Confidence: 0.8},
		{Item: 2, Score: 4.0, Confidence: 0.6},
	}
	return cat, preds
}

func TestAffirmingBoostsPopular(t *testing.T) {
	cat, preds := personalityFixture()
	out := Affirming.Apply(cat, preds)
	if out[0].Item != 1 {
		t.Fatalf("affirming should rank the blockbuster first, got %d", out[0].Item)
	}
	if out[0].Score <= out[1].Score {
		t.Fatal("scores should separate")
	}
}

func TestSerendipitousBoostsNovel(t *testing.T) {
	cat, preds := personalityFixture()
	out := Serendipitous.Apply(cat, preds)
	if out[0].Item != 2 {
		t.Fatalf("serendipitous should rank the obscure item first, got %d", out[0].Item)
	}
}

func TestBoldExaggerates(t *testing.T) {
	cat := model.NewCatalog("t")
	cat.MustAdd(&model.Item{ID: 1})
	cat.MustAdd(&model.Item{ID: 2})
	preds := []recsys.Prediction{
		{Item: 1, Score: 4.0},
		{Item: 2, Score: 2.0},
	}
	out := Bold.Apply(cat, preds)
	if out[0].Score != 4.5 || out[1].Score != 1.5 {
		t.Fatalf("bold scores = %v, %v", out[0].Score, out[1].Score)
	}
}

func TestNeutralAndFrankKeepScores(t *testing.T) {
	cat, preds := personalityFixture()
	for _, p := range []Personality{Neutral, Frank} {
		out := p.Apply(cat, preds)
		for i := range out {
			if out[i].Score != 4.0 {
				t.Fatalf("%v modified scores: %v", p, out[i].Score)
			}
		}
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	cat, preds := personalityFixture()
	Bold.Apply(cat, preds)
	if preds[0].Score != 4.0 {
		t.Fatal("Apply mutated its input")
	}
}

func TestDisclosures(t *testing.T) {
	if Neutral.Disclosure() != "" {
		t.Fatal("neutral should not disclose")
	}
	for _, p := range []Personality{Affirming, Serendipitous, Bold, Frank} {
		if p.Disclosure() == "" {
			t.Fatalf("%v missing disclosure", p)
		}
	}
}

func TestDecorate(t *testing.T) {
	e := &explain.Explanation{Text: "Base.", Confidence: 0.9}
	Frank.Decorate(e)
	if !strings.Contains(e.Text, "confident") {
		t.Fatalf("frank decoration missing: %q", e.Text)
	}
	e2 := &explain.Explanation{Text: "Base."}
	Serendipitous.Decorate(e2)
	if !strings.Contains(e2.Text, "novel items") {
		t.Fatalf("serendipitous decoration missing: %q", e2.Text)
	}
	if Neutral.Decorate(nil) != nil {
		t.Fatal("nil explanation should pass through")
	}
}

func TestPersonalityStrings(t *testing.T) {
	for p, want := range map[Personality]string{
		Neutral: "neutral", Affirming: "affirming", Serendipitous: "serendipitous",
		Bold: "bold", Frank: "frank",
	} {
		if p.String() != want {
			t.Fatalf("%d.String() = %q", p, p.String())
		}
	}
	if Personality(42).String() == "" {
		t.Fatal("unknown personality should stringify")
	}
}
