// Package present implements the recommendation presentation modes of
// the survey's Section 4: top item, top-N, similar-to-top, predicted
// ratings for all items, the structured overview of Pu & Chen, the
// treemap visualization (Figure 2), faceted browsing, and recommender
// "personality" (Section 4.6).
//
// Presenters take scored items plus optional explanations and produce
// a Presentation — an ordered, rendered view. The survey's point is
// that presentation and explanation are entangled ("some ways of
// offering recommendations can be seen as an explanation in itself");
// keeping both in one Entry makes that entanglement explicit.
package present

import (
	"fmt"
	"strings"

	"repro/internal/explain"
	"repro/internal/model"
	"repro/internal/recsys"
)

// Entry is one presented item: prediction plus optional explanation.
type Entry struct {
	Item        *model.Item
	Prediction  recsys.Prediction
	Explanation *explain.Explanation
}

// Presentation is an ordered, titled view of recommended items.
type Presentation struct {
	Title   string
	Entries []Entry
	// Degraded reports that part of the serving pipeline ran in
	// degraded mode (fallback ranking or fallback explanations); the
	// HTTP layer surfaces it so clients can tell a downgraded answer
	// from a full one.
	Degraded bool
	// ModelVersion is the serving model generation this view was
	// rendered from, when the engine runs a versioned model lifecycle
	// (core.WithTrainer); 0 otherwise.
	ModelVersion uint64
}

// Render draws the presentation as plain text: rank, stars, title, and
// the explanation sentence when present.
func (p *Presentation) Render() string {
	var b strings.Builder
	if p.Title != "" {
		b.WriteString(p.Title)
		b.WriteByte('\n')
	}
	for i, e := range p.Entries {
		fmt.Fprintf(&b, "%2d. %s  %s\n", i+1, stars(e.Prediction.Score), e.Item.Title)
		if e.Explanation != nil && e.Explanation.Text != "" {
			fmt.Fprintf(&b, "    %s\n", e.Explanation.Text)
		}
	}
	return b.String()
}

// stars renders a score as a five-character star bar, e.g. "[****-]".
func stars(score float64) string {
	full := int(score + 0.5)
	if full < 0 {
		full = 0
	}
	if full > 5 {
		full = 5
	}
	return "[" + strings.Repeat("*", full) + strings.Repeat("-", 5-full) + "]"
}

// Explainer is the subset of explain.Explainer presenters need; it is
// redeclared here so presenters accept any explanation source.
type Explainer interface {
	Explain(u model.UserID, item *model.Item) (*explain.Explanation, error)
}

// explainIfPossible attaches an explanation when the explainer has
// evidence; a missing explanation is not an error at presentation time.
func explainIfPossible(ex Explainer, u model.UserID, it *model.Item) *explain.Explanation {
	if ex == nil {
		return nil
	}
	e, err := ex.Explain(u, it)
	if err != nil {
		return nil
	}
	return e
}

// TopItem presents the single best recommendation (Section 4.1) with
// its explanation.
func TopItem(cat *model.Catalog, rec recsys.Recommender, ex Explainer, u model.UserID, exclude func(model.ItemID) bool) (*Presentation, error) {
	preds := rec.Recommend(u, 1, exclude)
	if len(preds) == 0 {
		return nil, fmt.Errorf("top item for user %d: %w", u, recsys.ErrColdStart)
	}
	it, err := cat.Item(preds[0].Item)
	if err != nil {
		return nil, fmt.Errorf("top item for user %d: %w", u, err)
	}
	return &Presentation{
		Title: "Recommended for you",
		Entries: []Entry{{
			Item:        it,
			Prediction:  preds[0],
			Explanation: explainIfPossible(ex, u, it),
		}},
	}, nil
}

// TopN presents the n best recommendations (Section 4.2).
func TopN(cat *model.Catalog, rec recsys.Recommender, ex Explainer, u model.UserID, n int, exclude func(model.ItemID) bool) (*Presentation, error) {
	preds := rec.Recommend(u, n, exclude)
	if len(preds) == 0 {
		return nil, fmt.Errorf("top-%d for user %d: %w", n, u, recsys.ErrColdStart)
	}
	p := &Presentation{Title: fmt.Sprintf("Top %d for you", len(preds))}
	for _, pr := range preds {
		it, err := cat.Item(pr.Item)
		if err != nil {
			continue
		}
		p.Entries = append(p.Entries, Entry{
			Item:        it,
			Prediction:  pr,
			Explanation: explainIfPossible(ex, u, it),
		})
	}
	return p, nil
}

// SimilarToTop presents items similar to a seed item the user liked
// (Section 4.3): "You might also like... Oliver Twist by Charles
// Dickens". Similarity here is content similarity: shared creator
// first, then keyword overlap.
func SimilarToTop(cat *model.Catalog, seed *model.Item, n int, exclude func(model.ItemID) bool) *Presentation {
	var cands []ScoredItem
	for _, it := range cat.Items() {
		if it.ID == seed.ID {
			continue
		}
		if exclude != nil && exclude(it.ID) {
			continue
		}
		if s := ContentScore(seed, it); s > 0 {
			cands = append(cands, ScoredItem{Item: it, Score: s})
		}
	}
	SortScoredItems(cands)
	if n > 0 && len(cands) > n {
		cands = cands[:n]
	}
	return SimilarPresentation(seed, cands)
}

// ContentScore is the content similarity SimilarToTop ranks by: the
// number of the seed's keywords the candidate shares, plus one for a
// matching non-empty creator. The ANN candidate index embeds exactly
// this score as an inner product and rescoring calls back into this
// function, so both paths rank by one definition.
func ContentScore(seed, it *model.Item) float64 {
	s := keywordOverlap(seed, it)
	if it.Creator != "" && it.Creator == seed.Creator {
		s += 1
	}
	return s
}

// ScoredItem pairs an item with its content score for ranking.
type ScoredItem struct {
	Item  *model.Item
	Score float64
}

// SortScoredItems orders candidates highest score first, ties broken
// by ascending item ID for determinism.
func SortScoredItems(cands []ScoredItem) {
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			if cands[j].Score > cands[i].Score ||
				(cands[j].Score == cands[i].Score && cands[j].Item.ID < cands[i].Item.ID) {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
	}
}

// SimilarPresentation renders the "Because you liked" view from an
// already-ranked candidate list. SimilarToTop and the engine's ANN
// path both end here, so a candidate set that matches produces
// byte-identical output regardless of how it was generated.
func SimilarPresentation(seed *model.Item, cands []ScoredItem) *Presentation {
	p := &Presentation{Title: fmt.Sprintf("Because you liked %q", seed.Title)}
	for _, c := range cands {
		who := c.Item.Title
		if c.Item.Creator != "" {
			who += " by " + c.Item.Creator
		}
		p.Entries = append(p.Entries, Entry{
			Item: c.Item,
			Explanation: &explain.Explanation{
				Style:    explain.ContentBased,
				Text:     fmt.Sprintf("You might also like... %s", who),
				Faithful: true,
			},
		})
	}
	return p
}

func keywordOverlap(a, b *model.Item) float64 {
	var n float64
	for _, k := range a.Keywords {
		if b.HasKeyword(k) {
			n++
		}
	}
	return n
}

// PredictedRatings presents every item with its predicted rating
// (Section 4.4), letting users browse the full space. Items the
// predictor cannot score are listed unrated at the end, keeping the
// browsing surface complete. WhyLow (on the returned view) answers
// the "why is this predicted low?" question.
type RatingsView struct {
	Presentation
	user    model.UserID
	low     LowExplainer
	unrated []*model.Item
}

// LowExplainer answers "why is this item predicted low?" — the
// scrutability entry point of Section 4.4.
type LowExplainer interface {
	ExplainLow(u model.UserID, item *model.Item) (*explain.Explanation, error)
}

// PredictedRatings builds the browse-everything view for user u.
func PredictedRatings(cat *model.Catalog, pred recsys.Predictor, low LowExplainer, u model.UserID) *RatingsView {
	v := &RatingsView{user: u, low: low}
	v.Title = "All items with predicted ratings"
	var preds []recsys.Prediction
	byItem := map[model.ItemID]*model.Item{}
	for _, it := range cat.Items() {
		p, err := pred.Predict(u, it.ID)
		if err != nil {
			v.unrated = append(v.unrated, it)
			continue
		}
		preds = append(preds, p)
		byItem[it.ID] = it
	}
	recsys.SortPredictions(preds)
	for _, p := range preds {
		v.Entries = append(v.Entries, Entry{Item: byItem[p.Item], Prediction: p})
	}
	return v
}

// Unrated returns the items that could not be scored.
func (v *RatingsView) Unrated() []*model.Item { return v.unrated }

// WhyLow explains a low prediction for an item in the view.
func (v *RatingsView) WhyLow(item *model.Item) (*explain.Explanation, error) {
	if v.low == nil {
		return nil, fmt.Errorf("item %d: %w", item.ID, explain.ErrNoEvidence)
	}
	return v.low.ExplainLow(v.user, item)
}
