package present

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/explain"
	"repro/internal/model"
	"repro/internal/recsys"
	"repro/internal/recsys/cf"
	"repro/internal/recsys/content"
)

func movieSetup(t testing.TB) (*dataset.Community, *cf.UserKNN) {
	t.Helper()
	c := dataset.Movies(dataset.Config{Seed: 201, Users: 50, Items: 60, RatingsPerUser: 20})
	return c, cf.NewUserKNN(c.Ratings, c.Catalog, cf.Options{K: 15})
}

func TestTopItem(t *testing.T) {
	c, knn := movieSetup(t)
	ex := explain.NewHistogramExplainer(knn)
	u := model.UserID(1)
	p, err := TopItem(c.Catalog, knn, ex, u, recsys.ExcludeRated(c.Ratings, u))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Entries) != 1 {
		t.Fatalf("entries = %d", len(p.Entries))
	}
	out := p.Render()
	if !strings.Contains(out, "Recommended for you") {
		t.Fatalf("render:\n%s", out)
	}
	if !strings.Contains(out, p.Entries[0].Item.Title) {
		t.Fatalf("item title missing:\n%s", out)
	}
}

func TestTopItemColdStart(t *testing.T) {
	c, knn := movieSetup(t)
	if _, err := TopItem(c.Catalog, knn, nil, 9999, nil); !errors.Is(err, recsys.ErrColdStart) {
		t.Fatalf("err = %v", err)
	}
}

func TestTopNSortedWithExplanations(t *testing.T) {
	c, knn := movieSetup(t)
	ex := explain.NewNeighborCountExplainer(knn)
	u := model.UserID(2)
	p, err := TopN(c.Catalog, knn, ex, u, 5, recsys.ExcludeRated(c.Ratings, u))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Entries) != 5 {
		t.Fatalf("entries = %d", len(p.Entries))
	}
	for i := 1; i < len(p.Entries); i++ {
		if p.Entries[i-1].Prediction.Score < p.Entries[i].Prediction.Score {
			t.Fatal("not sorted")
		}
	}
	var explained int
	for _, e := range p.Entries {
		if e.Explanation != nil {
			explained++
		}
	}
	if explained == 0 {
		t.Fatal("no entries carried explanations")
	}
}

func TestStars(t *testing.T) {
	cases := []struct {
		score float64
		want  string
	}{
		{5, "[*****]"}, {4.4, "[****-]"}, {1, "[*----]"}, {0, "[-----]"},
	}
	for _, c := range cases {
		if got := stars(c.score); got != c.want {
			t.Fatalf("stars(%v) = %q, want %q", c.score, got, c.want)
		}
	}
}

func TestSimilarToTopPrefersSameCreator(t *testing.T) {
	cat := model.NewCatalog("books")
	seed := &model.Item{ID: 1, Title: "Great Expectations", Creator: "Charles Dickens", Keywords: []string{"classic"}}
	cat.MustAdd(seed)
	cat.MustAdd(&model.Item{ID: 2, Title: "Oliver Twist", Creator: "Charles Dickens", Keywords: []string{"classic"}})
	cat.MustAdd(&model.Item{ID: 3, Title: "Other Classic", Creator: "Someone Else", Keywords: []string{"classic"}})
	cat.MustAdd(&model.Item{ID: 4, Title: "Unrelated", Creator: "Nobody", Keywords: []string{"scifi"}})
	p := SimilarToTop(cat, seed, 2, nil)
	if len(p.Entries) != 2 {
		t.Fatalf("entries = %d", len(p.Entries))
	}
	if p.Entries[0].Item.ID != 2 {
		t.Fatalf("same-creator item should rank first, got %d", p.Entries[0].Item.ID)
	}
	if got := p.Entries[0].Explanation.Text; got != "You might also like... Oliver Twist by Charles Dickens" {
		t.Fatalf("explanation = %q", got)
	}
	// Unrelated item (no overlap) must not appear at all.
	for _, e := range p.Entries {
		if e.Item.ID == 4 {
			t.Fatal("unrelated item included")
		}
	}
}

func TestSimilarToTopExcludes(t *testing.T) {
	cat := model.NewCatalog("books")
	seed := &model.Item{ID: 1, Keywords: []string{"a"}}
	cat.MustAdd(seed)
	cat.MustAdd(&model.Item{ID: 2, Keywords: []string{"a"}})
	p := SimilarToTop(cat, seed, 5, func(i model.ItemID) bool { return i == 2 })
	if len(p.Entries) != 0 {
		t.Fatalf("excluded item leaked: %d entries", len(p.Entries))
	}
}

func TestPredictedRatingsViewAndWhyLow(t *testing.T) {
	c, _ := movieSetup(t)
	kw := content.NewKeywordRecommender(c.Ratings, c.Catalog)
	low := explain.NewProfileExplainer(kw)
	u := model.UserID(3)
	v := PredictedRatings(c.Catalog, kw, low, u)
	if len(v.Entries)+len(v.Unrated()) != c.Catalog.Len() {
		t.Fatalf("view covers %d+%d of %d items",
			len(v.Entries), len(v.Unrated()), c.Catalog.Len())
	}
	for i := 1; i < len(v.Entries); i++ {
		if v.Entries[i-1].Prediction.Score < v.Entries[i].Prediction.Score {
			t.Fatal("ratings view not sorted")
		}
	}
	// Ask why the lowest-predicted item is low; it should either
	// explain or report no evidence — never panic or fabricate.
	lowest := v.Entries[len(v.Entries)-1]
	exp, err := v.WhyLow(lowest.Item)
	if err != nil && !errors.Is(err, explain.ErrNoEvidence) {
		t.Fatalf("WhyLow error = %v", err)
	}
	if err == nil && !strings.Contains(exp.Text, "do not seem to like") {
		t.Fatalf("WhyLow text = %q", exp.Text)
	}
}

func TestPredictedRatingsNilLowExplainer(t *testing.T) {
	c, _ := movieSetup(t)
	kw := content.NewKeywordRecommender(c.Ratings, c.Catalog)
	v := PredictedRatings(c.Catalog, kw, nil, 3)
	if _, err := v.WhyLow(c.Catalog.Items()[0]); !errors.Is(err, explain.ErrNoEvidence) {
		t.Fatalf("err = %v", err)
	}
}

func TestRenderIncludesExplanations(t *testing.T) {
	p := &Presentation{
		Title: "T",
		Entries: []Entry{{
			Item:        &model.Item{Title: "Item A"},
			Prediction:  recsys.Prediction{Score: 4},
			Explanation: &explain.Explanation{Text: "Because reasons."},
		}},
	}
	out := p.Render()
	if !strings.Contains(out, "Because reasons.") || !strings.Contains(out, "[****-]") {
		t.Fatalf("render:\n%s", out)
	}
}
