package present

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/recsys"
	"repro/internal/recsys/knowledge"
	"repro/internal/rng"
)

// Property: the structured overview partitions the non-best scored
// items — every alternative lands in exactly one category (with no
// per-category cap).
func TestOverviewPartitionQuick(t *testing.T) {
	c := dataset.Cameras(dataset.Config{Seed: 111, Users: 3, Items: 60, RatingsPerUser: 2})
	rec := knowledge.New(c.Catalog)
	lo, hi, _ := c.Catalog.NumericRange(dataset.CamPrice)
	f := func(idealFrac, resFrac uint8, n uint8) bool {
		prefs := &knowledge.Preferences{
			NumericIdeal: map[string]float64{
				dataset.CamPrice:      lo + (hi-lo)*float64(idealFrac%100)/100,
				dataset.CamResolution: 8 + float64(resFrac%24),
			},
		}
		count := int(n%20) + 3
		scored, err := rec.Recommend(prefs, nil, count)
		if err != nil || len(scored) < 2 {
			return true
		}
		ov, err := BuildOverview(c.Catalog, scored, 0)
		if err != nil {
			return false
		}
		seen := map[int64]int{}
		for _, cat := range ov.Categories {
			for _, s := range cat.Items {
				seen[int64(s.Item.ID)]++
			}
		}
		if len(seen) != len(scored)-1 {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		// Categories ordered by match score.
		for i := 1; i < len(ov.Categories); i++ {
			if ov.Categories[i-1].MatchScore < ov.Categories[i].MatchScore {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: personality adjustment preserves the candidate set — it
// reorders and rescales, never adds or drops items.
func TestPersonalityPreservesSetQuick(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 113, Users: 20, Items: 60, RatingsPerUser: 12})
	personalities := []Personality{Neutral, Affirming, Serendipitous, Bold, Frank}
	r := rng.New(7)
	f := func(pIdx uint8, n uint8) bool {
		p := personalities[int(pIdx)%len(personalities)]
		count := int(n%20) + 1
		var in []int64
		items := c.Catalog.Items()
		var predictions []recsys.Prediction
		seen := map[int]bool{}
		for i := 0; i < count; i++ {
			idx := r.Intn(len(items))
			if seen[idx] {
				continue
			}
			seen[idx] = true
			predictions = append(predictions, recsys.Prediction{Item: items[idx].ID, Score: 1 + 4*r.Float64()})
			in = append(in, int64(items[idx].ID))
		}
		out := p.Apply(c.Catalog, predictions)
		if len(out) != len(predictions) {
			return false
		}
		got := map[int64]bool{}
		for _, pr := range out {
			got[int64(pr.Item)] = true
		}
		for _, id := range in {
			if !got[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the treemap renders without gaps for any tile count that
// lays out successfully.
func TestTreemapRenderGapFreeQuick(t *testing.T) {
	r := rng.New(11)
	classes := []string{"sport", "tech", "politics", "culture"}
	f := func(n uint8) bool {
		count := int(n%15) + 1
		items := make([]TreemapItem, count)
		for i := range items {
			items[i] = TreemapItem{
				Label:  "x",
				Weight: 0.2 + r.Float64()*5,
				Class:  classes[r.Intn(len(classes))],
				Shade:  r.Float64(),
			}
		}
		nodes, err := Squarify(items, Rect{W: 48, H: 14})
		if err != nil {
			return false
		}
		out := RenderTreemap(nodes, 48, 14)
		grid := strings.Split(out, "legend:")[0]
		return !strings.Contains(grid, " ")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
