package present

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// The treemap of Figure 2 (newsmap-style): topic areas get colours,
// square size represents importance to the current user, and shade
// represents recency. We implement the squarified treemap algorithm
// (Bruls, Huizing & van Wijk 2000) over a character grid: "colour" is
// the topic's letter, "shade" is upper case (fresh) vs lower case
// (stale).

// TreemapItem is one tile to lay out.
type TreemapItem struct {
	Label  string
	Weight float64 // relative area; must be > 0
	Class  string  // topic; determines the fill letter
	Shade  float64 // recency in [0,1]; >= 0.5 renders upper case
}

// Rect is an axis-aligned rectangle.
type Rect struct {
	X, Y, W, H float64
}

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.W * r.H }

// TreemapNode is a laid-out tile.
type TreemapNode struct {
	Item TreemapItem
	Rect Rect
}

// ErrNoItems is returned when laying out an empty or zero-weight set.
var ErrNoItems = errors.New("present: no treemap items with positive weight")

// Squarify lays items out inside bounds with areas proportional to
// weights, keeping aspect ratios near 1. Items with non-positive
// weight are dropped. The input order does not matter: tiles are
// placed largest-first, as the algorithm requires.
func Squarify(items []TreemapItem, bounds Rect) ([]TreemapNode, error) {
	var kept []TreemapItem
	var total float64
	for _, it := range items {
		if it.Weight > 0 {
			kept = append(kept, it)
			total += it.Weight
		}
	}
	if len(kept) == 0 || bounds.Area() <= 0 {
		return nil, ErrNoItems
	}
	sort.SliceStable(kept, func(a, b int) bool { return kept[a].Weight > kept[b].Weight })
	// Normalise weights to areas.
	scale := bounds.Area() / total
	areas := make([]float64, len(kept))
	for i, it := range kept {
		areas[i] = it.Weight * scale
	}
	var nodes []TreemapNode
	squarify(kept, areas, bounds, &nodes)
	return nodes, nil
}

// squarify recursively fills free with rows of tiles.
func squarify(items []TreemapItem, areas []float64, free Rect, out *[]TreemapNode) {
	if len(items) == 0 {
		return
	}
	short := math.Min(free.W, free.H)
	if short <= 0 {
		// Degenerate space: stack everything with zero extent to keep
		// area bookkeeping consistent.
		for i := range items {
			*out = append(*out, TreemapNode{Item: items[i], Rect: Rect{X: free.X, Y: free.Y}})
		}
		return
	}
	// Grow the current row while it improves the worst aspect ratio.
	row := 1
	for row < len(items) {
		if worstAspect(areas[:row+1], short) <= worstAspect(areas[:row], short) {
			row++
		} else {
			break
		}
	}
	layoutRow(items[:row], areas[:row], free, out)
	var rowArea float64
	for _, a := range areas[:row] {
		rowArea += a
	}
	// Shrink the free rectangle by the laid row.
	if free.W >= free.H {
		usedW := rowArea / free.H
		free = Rect{X: free.X + usedW, Y: free.Y, W: free.W - usedW, H: free.H}
	} else {
		usedH := rowArea / free.W
		free = Rect{X: free.X, Y: free.Y + usedH, W: free.W, H: free.H - usedH}
	}
	squarify(items[row:], areas[row:], free, out)
}

// worstAspect returns the worst (largest) aspect ratio of a row of the
// given areas laid along a side of length short.
func worstAspect(areas []float64, short float64) float64 {
	var sum, maxA, minA float64
	minA = math.Inf(1)
	for _, a := range areas {
		sum += a
		if a > maxA {
			maxA = a
		}
		if a < minA {
			minA = a
		}
	}
	if sum == 0 || minA == 0 {
		return math.Inf(1)
	}
	s2 := sum * sum
	sh2 := short * short
	return math.Max(sh2*maxA/s2, s2/(sh2*minA))
}

// layoutRow places one row of tiles along the short side of free.
func layoutRow(items []TreemapItem, areas []float64, free Rect, out *[]TreemapNode) {
	var rowArea float64
	for _, a := range areas {
		rowArea += a
	}
	if free.W >= free.H {
		// Vertical strip on the left of the free rect.
		w := rowArea / free.H
		y := free.Y
		for i := range items {
			h := areas[i] / w
			*out = append(*out, TreemapNode{Item: items[i], Rect: Rect{X: free.X, Y: y, W: w, H: h}})
			y += h
		}
	} else {
		h := rowArea / free.W
		x := free.X
		for i := range items {
			w := areas[i] / h
			*out = append(*out, TreemapNode{Item: items[i], Rect: Rect{X: x, Y: free.Y, W: w, H: h}})
			x += w
		}
	}
}

// RenderTreemap rasterises laid-out nodes onto a cols x rows character
// grid. Each tile is filled with the first letter of its class —
// upper case when Shade >= 0.5 (recent), lower case otherwise — and a
// legend mapping letters to classes and the largest tile's label is
// appended.
func RenderTreemap(nodes []TreemapNode, cols, rows int) string {
	if cols <= 0 || rows <= 0 || len(nodes) == 0 {
		return ""
	}
	// The layout bounds are inferred from the nodes.
	var maxX, maxY float64
	for _, n := range nodes {
		if v := n.Rect.X + n.Rect.W; v > maxX {
			maxX = v
		}
		if v := n.Rect.Y + n.Rect.H; v > maxY {
			maxY = v
		}
	}
	if maxX <= 0 || maxY <= 0 {
		return ""
	}
	// Rasterise by cell-centre containment: because the tiles partition
	// the plane, every cell centre falls inside exactly one tile, so
	// the grid is guaranteed gap-free regardless of rounding.
	grid := make([][]byte, rows)
	classes := assignClassLetters(nodes)
	fills := make([]byte, len(nodes))
	for i, n := range nodes {
		letter := classes[n.Item.Class]
		fills[i] = letter
		if n.Item.Shade < 0.5 {
			fills[i] = lower(letter)
		}
	}
	for y := 0; y < rows; y++ {
		grid[y] = bytes(cols, ' ')
		cy := (float64(y) + 0.5) / float64(rows) * maxY
		for x := 0; x < cols; x++ {
			cx := (float64(x) + 0.5) / float64(cols) * maxX
			for i, n := range nodes {
				if cx >= n.Rect.X && cx < n.Rect.X+n.Rect.W &&
					cy >= n.Rect.Y && cy < n.Rect.Y+n.Rect.H {
					grid[y][x] = fills[i]
					break
				}
			}
			if grid[y][x] == ' ' {
				// Floating-point seam: adopt the nearest painted
				// neighbour so the rendering stays gap-free.
				if x > 0 {
					grid[y][x] = grid[y][x-1]
				} else if y > 0 {
					grid[y][x] = grid[y-1][x]
				} else if len(fills) > 0 {
					grid[y][x] = fills[0]
				}
			}
		}
	}
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	// Legend, sorted for stable output.
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	b.WriteString("legend:")
	for _, c := range names {
		fmt.Fprintf(&b, " %c=%s", classes[c], c)
	}
	b.WriteString(" (UPPER = recent)\n")
	return b.String()
}

func bytes(n int, fill byte) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = fill
	}
	return s
}

// assignClassLetters gives every class a distinct letter: the first
// letter of its name when free, otherwise a later letter of the name,
// otherwise the next free letter of the alphabet. Classes are
// processed in sorted order so the assignment is stable.
func assignClassLetters(nodes []TreemapNode) map[string]byte {
	names := map[string]bool{}
	for _, n := range nodes {
		names[n.Item.Class] = true
	}
	sorted := make([]string, 0, len(names))
	for c := range names {
		sorted = append(sorted, c)
	}
	sort.Strings(sorted)
	used := map[byte]bool{}
	out := map[string]byte{}
	for _, class := range sorted {
		letter := byte(0)
		for i := 0; i < len(class); i++ {
			c := upper(class[i])
			if c >= 'A' && c <= 'Z' && !used[c] {
				letter = c
				break
			}
		}
		if letter == 0 {
			for c := byte('A'); c <= 'Z'; c++ {
				if !used[c] {
					letter = c
					break
				}
			}
		}
		if letter == 0 {
			letter = '?'
		}
		used[letter] = true
		out[class] = letter
	}
	return out
}

func upper(c byte) byte {
	if c >= 'a' && c <= 'z' {
		return c - 'a' + 'A'
	}
	return c
}

func lower(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c - 'A' + 'a'
	}
	return c
}
