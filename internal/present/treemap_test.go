package present

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSquarifyAreaProportionalToWeight(t *testing.T) {
	items := []TreemapItem{
		{Label: "a", Weight: 6, Class: "sport"},
		{Label: "b", Weight: 3, Class: "tech"},
		{Label: "c", Weight: 1, Class: "politics"},
	}
	bounds := Rect{W: 100, H: 60}
	nodes, err := Squarify(items, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	total := bounds.Area()
	for _, n := range nodes {
		wantArea := n.Item.Weight / 10 * total
		if math.Abs(n.Rect.Area()-wantArea) > 1e-6 {
			t.Fatalf("tile %q area %v, want %v", n.Item.Label, n.Rect.Area(), wantArea)
		}
	}
}

func TestSquarifyPropertyQuick(t *testing.T) {
	// Properties: total area preserved; every tile inside bounds; no
	// pairwise overlap beyond floating-point tolerance.
	r := rng.New(31)
	f := func(nRaw uint8) bool {
		n := int(nRaw%12) + 1
		items := make([]TreemapItem, n)
		for i := range items {
			items[i] = TreemapItem{Label: "x", Weight: 0.1 + r.Float64()*9}
		}
		bounds := Rect{W: 80, H: 24}
		nodes, err := Squarify(items, bounds)
		if err != nil || len(nodes) != n {
			return false
		}
		var sum float64
		const eps = 1e-6
		for i, a := range nodes {
			sum += a.Rect.Area()
			if a.Rect.X < -eps || a.Rect.Y < -eps ||
				a.Rect.X+a.Rect.W > bounds.W+eps || a.Rect.Y+a.Rect.H > bounds.H+eps {
				return false
			}
			for j := i + 1; j < len(nodes); j++ {
				if overlapArea(a.Rect, nodes[j].Rect) > eps {
					return false
				}
			}
		}
		return math.Abs(sum-bounds.Area()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func overlapArea(a, b Rect) float64 {
	w := math.Min(a.X+a.W, b.X+b.W) - math.Max(a.X, b.X)
	h := math.Min(a.Y+a.H, b.Y+b.H) - math.Max(a.Y, b.Y)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

func TestSquarifyAspectRatiosReasonable(t *testing.T) {
	// The point of squarified treemaps: on near-uniform weights tiles
	// should be roughly square, not slivers.
	items := make([]TreemapItem, 9)
	for i := range items {
		items[i] = TreemapItem{Label: "x", Weight: 1}
	}
	nodes, err := Squarify(items, Rect{W: 90, H: 90})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		ar := n.Rect.W / n.Rect.H
		if ar < 1 {
			ar = 1 / ar
		}
		if ar > 2.5 {
			t.Fatalf("tile aspect ratio %v too elongated: %+v", ar, n.Rect)
		}
	}
}

func TestSquarifyDropsNonPositiveWeights(t *testing.T) {
	nodes, err := Squarify([]TreemapItem{
		{Label: "ok", Weight: 2},
		{Label: "zero", Weight: 0},
		{Label: "neg", Weight: -1},
	}, Rect{W: 10, H: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].Item.Label != "ok" {
		t.Fatalf("nodes = %+v", nodes)
	}
}

func TestSquarifyErrors(t *testing.T) {
	if _, err := Squarify(nil, Rect{W: 10, H: 10}); !errors.Is(err, ErrNoItems) {
		t.Fatalf("empty err = %v", err)
	}
	if _, err := Squarify([]TreemapItem{{Weight: 1}}, Rect{}); !errors.Is(err, ErrNoItems) {
		t.Fatalf("zero-bounds err = %v", err)
	}
}

func TestRenderTreemap(t *testing.T) {
	nodes, err := Squarify([]TreemapItem{
		{Label: "world cup", Weight: 6, Class: "sport", Shade: 0.9},
		{Label: "gadgets", Weight: 3, Class: "tech", Shade: 0.2},
		{Label: "vote", Weight: 1, Class: "politics", Shade: 0.6},
	}, Rect{W: 40, H: 12})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTreemap(nodes, 40, 12)
	if !strings.Contains(out, "S") {
		t.Fatalf("recent sport tile should be upper case:\n%s", out)
	}
	if !strings.Contains(out, "t") || strings.Contains(strings.Split(out, "legend:")[0], "T") {
		t.Fatalf("stale tech tile should be lower case only:\n%s", out)
	}
	if !strings.Contains(out, "legend: P=politics S=sport T=tech") {
		t.Fatalf("legend wrong:\n%s", out)
	}
	// Every grid cell is filled (treemaps tile the plane).
	gridPart := strings.Split(out, "legend:")[0]
	for _, line := range strings.Split(strings.TrimRight(gridPart, "\n"), "\n") {
		if strings.Contains(line, " ") {
			t.Fatalf("unfilled cells in row %q", line)
		}
		if len(line) != 40 {
			t.Fatalf("row width %d, want 40", len(line))
		}
	}
}

func TestRenderTreemapDegenerate(t *testing.T) {
	if RenderTreemap(nil, 10, 10) != "" {
		t.Fatal("empty nodes should render nothing")
	}
	nodes, _ := Squarify([]TreemapItem{{Weight: 1, Class: "x"}}, Rect{W: 10, H: 10})
	if RenderTreemap(nodes, 0, 5) != "" {
		t.Fatal("zero cols should render nothing")
	}
}

func TestAssignClassLetters(t *testing.T) {
	nodes := []TreemapNode{
		{Item: TreemapItem{Class: "sport"}},
		{Item: TreemapItem{Class: "science"}}, // collides on S
		{Item: TreemapItem{Class: "tech"}},
		{Item: TreemapItem{Class: ""}},
	}
	letters := assignClassLetters(nodes)
	seen := map[byte]bool{}
	for class, l := range letters {
		if seen[l] {
			t.Fatalf("duplicate letter %c in %v", l, letters)
		}
		seen[l] = true
		_ = class
	}
	// Science sorts before sport, so science keeps S and sport falls
	// back to its next distinct letter P.
	if letters["science"] != 'S' || letters["sport"] != 'P' || letters["tech"] != 'T' {
		t.Fatalf("letters = %v", letters)
	}
	if lower('A') != 'a' || lower('z') != 'z' || lower('?') != '?' {
		t.Fatal("lower")
	}
	if upper('a') != 'A' || upper('Z') != 'Z' || upper('9') != '9' {
		t.Fatal("upper")
	}
}

func TestRenderTreemapLegendNoDuplicateLetters(t *testing.T) {
	nodes, err := Squarify([]TreemapItem{
		{Label: "a", Weight: 2, Class: "sport"},
		{Label: "b", Weight: 2, Class: "science"},
	}, Rect{W: 20, H: 10})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTreemap(nodes, 20, 10)
	if !strings.Contains(out, "S=science") || !strings.Contains(out, "P=sport") {
		t.Fatalf("legend:\n%s", out)
	}
}
