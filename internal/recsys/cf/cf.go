// Package cf implements neighbourhood-based collaborative filtering:
// user-based kNN with Pearson correlation and item-based kNN with
// adjusted cosine similarity.
//
// Both algorithms retain their *evidence*: the neighbours (users or
// items) that contributed to each prediction, with similarities and
// ratings. That evidence is what the survey's collaborative-style
// explanations are made of — Herlocker et al.'s winning interface is
// literally a histogram of how similar users rated the item, and
// Amazon-style "customers who liked X also liked Y" needs the
// contributing items.
package cf

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/recsys"
)

// UserNeighbor is one similar user's contribution to a prediction.
type UserNeighbor struct {
	User       model.UserID
	Similarity float64 // Pearson correlation in [-1, 1]
	Rating     float64 // the neighbour's rating of the target item
}

// ItemNeighbor is one similar already-rated item's contribution.
type ItemNeighbor struct {
	Item       model.ItemID
	Similarity float64 // adjusted cosine in [-1, 1]
	Rating     float64 // the user's own rating of that item
}

// Options configure either kNN variant.
type Options struct {
	// K is the neighbourhood size (default 20).
	K int
	// MinOverlap is the minimum number of co-rated items required
	// before a similarity is trusted (default 3). Pairs below the
	// threshold are treated as strangers.
	MinOverlap int
	// ShrinkAt damps similarities computed from few co-ratings:
	// sim' = sim * overlap/(overlap+ShrinkAt). Default 5; zero keeps
	// raw similarities (used by the ablation benchmarks).
	ShrinkAt float64
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 20
	}
	if o.MinOverlap == 0 {
		o.MinOverlap = 3
	}
	if o.ShrinkAt == 0 {
		o.ShrinkAt = 5
	}
	return o
}

// UserKNN is user-based collaborative filtering over a fixed rating
// matrix. Similarities are computed lazily and stored in a sharded,
// lock-striped cache, so the recommender is safe for any number of
// concurrent readers with no warm-up. The matrix itself must not be
// mutated while readers are active; snapshot engines swap in a new
// matrix via Rebind instead of mutating in place.
type UserKNN struct {
	m    *model.Matrix
	cat  *model.Catalog
	opts Options
	sims *simCache
}

type simEntry struct {
	sim     float64
	overlap int
}

// NewUserKNN builds a user-based kNN recommender over m and cat.
func NewUserKNN(m *model.Matrix, cat *model.Catalog, opts Options) *UserKNN {
	return &UserKNN{
		m:    m,
		cat:  cat,
		opts: opts.withDefaults(),
		sims: newSimCache(),
	}
}

// Name implements recsys.Named.
func (k *UserKNN) Name() string { return "user-knn" }

// K returns the configured neighbourhood size.
func (k *UserKNN) K() int { return k.opts.K }

// Rebind returns a UserKNN over m that reuses every cached similarity
// except the pairs involving a touched user. Pearson similarity
// depends only on the two users' own rating rows, so dropping exactly
// the touched users keeps the carried-over cache exact. Snapshot
// engines call this on every write so one rating change costs one
// user's worth of recomputation, not the whole community's.
func (k *UserKNN) Rebind(m *model.Matrix, touched ...model.UserID) *UserKNN {
	drop := make([]int64, len(touched))
	for i, u := range touched {
		drop[i] = int64(u)
	}
	return &UserKNN{m: m, cat: k.cat, opts: k.opts, sims: k.sims.cloneWithout(drop...)}
}

// RebindMatrix implements recsys.MatrixRebinder.
func (k *UserKNN) RebindMatrix(m *model.Matrix, touched ...model.UserID) recsys.Recommender {
	return k.Rebind(m, touched...)
}

func (k *UserKNN) similarity(a, b model.UserID) simEntry {
	if e, ok := k.sims.get(int64(a), int64(b)); ok {
		return e
	}
	e := pearson(k.m.UserRatings(a), k.m.UserRatings(b))
	if e.overlap < k.opts.MinOverlap {
		e.sim = 0
	} else if k.opts.ShrinkAt > 0 {
		e.sim *= float64(e.overlap) / (float64(e.overlap) + k.opts.ShrinkAt)
	}
	k.sims.put(int64(a), int64(b), e)
	return e
}

// pearson computes the Pearson correlation over co-rated items. The
// co-rated set is accumulated in sorted item order so the floating-
// point sums — and therefore every downstream ranking — are
// bit-identical across runs regardless of map iteration order.
func pearson(a, b map[model.ItemID]float64) simEntry {
	shared := make([]model.ItemID, 0, len(a))
	for i := range a {
		if _, ok := b[i]; ok {
			shared = append(shared, i)
		}
	}
	n := len(shared)
	if n < 2 {
		return simEntry{overlap: n}
	}
	sort.Slice(shared, func(x, y int) bool { return shared[x] < shared[y] })
	var sumA, sumB float64
	for _, i := range shared {
		sumA += a[i]
		sumB += b[i]
	}
	meanA, meanB := sumA/float64(n), sumB/float64(n)
	var sab, saa, sbb float64
	for _, i := range shared {
		da, db := a[i]-meanA, b[i]-meanB
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return simEntry{overlap: n}
	}
	return simEntry{sim: sab / math.Sqrt(saa*sbb), overlap: n}
}

// Neighbors returns up to K most similar users (by |similarity|) who
// rated item i, sorted by descending similarity. This is the evidence
// behind both the prediction and the histogram explanation.
func (k *UserKNN) Neighbors(u model.UserID, i model.ItemID) []UserNeighbor {
	raters := k.m.ItemRatings(i)
	cands := make([]UserNeighbor, 0, len(raters))
	for v, rating := range raters {
		if v == u {
			continue
		}
		e := k.similarity(u, v)
		if e.sim <= 0 {
			// Negative or zero correlations carry little predictive
			// value in sparse data and confuse explanation histograms;
			// standard practice keeps positive neighbours only.
			continue
		}
		cands = append(cands, UserNeighbor{User: v, Similarity: e.sim, Rating: rating})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].Similarity != cands[b].Similarity {
			return cands[a].Similarity > cands[b].Similarity
		}
		return cands[a].User < cands[b].User
	})
	if len(cands) > k.opts.K {
		cands = cands[:k.opts.K]
	}
	return cands
}

// Predict implements recsys.Predictor with the classic mean-centred
// weighted average:
//
//	pred(u,i) = mean(u) + sum(sim(u,v) * (r(v,i) - mean(v))) / sum(|sim|)
func (k *UserKNN) Predict(u model.UserID, i model.ItemID) (recsys.Prediction, error) {
	neighbors := k.Neighbors(u, i)
	if len(neighbors) == 0 {
		return recsys.Prediction{}, fmt.Errorf("user %d, item %d: %w", u, i, recsys.ErrColdStart)
	}
	userMean, ok := k.m.UserMean(u)
	if !ok {
		userMean = k.m.GlobalMean()
	}
	var num, den float64
	for _, nb := range neighbors {
		nbMean, _ := k.m.UserMean(nb.User)
		num += nb.Similarity * (nb.Rating - nbMean)
		den += math.Abs(nb.Similarity)
	}
	if den == 0 {
		return recsys.Prediction{}, fmt.Errorf("user %d, item %d: %w", u, i, recsys.ErrColdStart)
	}
	score := model.ClampRating(userMean + num/den)
	return recsys.Prediction{Item: i, Score: score, Confidence: k.confidence(neighbors)}, nil
}

// confidence maps neighbourhood evidence to [0,1]: full confidence
// needs a full neighbourhood of strongly similar users. This follows
// Herlocker et al. (2004)'s observation that support (how many
// neighbours) and similarity strength drive prediction reliability.
func (k *UserKNN) confidence(neighbors []UserNeighbor) float64 {
	if len(neighbors) == 0 {
		return 0
	}
	var simSum float64
	for _, nb := range neighbors {
		simSum += nb.Similarity
	}
	support := float64(len(neighbors)) / float64(k.opts.K)
	strength := simSum / float64(len(neighbors))
	c := support * (0.5 + 0.5*strength)
	if c > 1 {
		c = 1
	}
	return c
}

// Recommend implements recsys.Recommender.
func (k *UserKNN) Recommend(u model.UserID, n int, exclude func(model.ItemID) bool) []recsys.Prediction {
	return recsys.TopN(recsys.RankAll(k, k.cat, u, exclude), n)
}

// ItemKNN is item-based collaborative filtering with adjusted cosine
// similarity (each rating centred on its user's mean before the cosine,
// as in Sarwar et al.). Evidence is the set of the user's own rated
// items most similar to the target — the "because you liked Y" form.
// Like UserKNN it is safe for concurrent readers over a fixed matrix.
type ItemKNN struct {
	m    *model.Matrix
	cat  *model.Catalog
	opts Options
	sims *simCache
}

// NewItemKNN builds an item-based kNN recommender over m and cat.
func NewItemKNN(m *model.Matrix, cat *model.Catalog, opts Options) *ItemKNN {
	return &ItemKNN{
		m:    m,
		cat:  cat,
		opts: opts.withDefaults(),
		sims: newSimCache(),
	}
}

// Name implements recsys.Named.
func (k *ItemKNN) Name() string { return "item-knn" }

// Rebind returns an ItemKNN over m reusing cached similarities except
// pairs involving a touched item. Note the carried cache is only
// approximately fresh: adjusted cosine also depends on co-raters' mean
// ratings, so a rating change shifts (slightly) every pair its user
// co-rated. Callers needing exact freshness after heavy churn should
// periodically rebuild with NewItemKNN instead.
func (k *ItemKNN) Rebind(m *model.Matrix, touched ...model.ItemID) *ItemKNN {
	drop := make([]int64, len(touched))
	for i, it := range touched {
		drop[i] = int64(it)
	}
	return &ItemKNN{m: m, cat: k.cat, opts: k.opts, sims: k.sims.cloneWithout(drop...)}
}

func (k *ItemKNN) similarity(a, b model.ItemID) simEntry {
	if e, ok := k.sims.get(int64(a), int64(b)); ok {
		return e
	}
	e := k.adjustedCosine(a, b)
	if e.overlap < k.opts.MinOverlap {
		e.sim = 0
	} else if k.opts.ShrinkAt > 0 {
		e.sim *= float64(e.overlap) / (float64(e.overlap) + k.opts.ShrinkAt)
	}
	k.sims.put(int64(a), int64(b), e)
	return e
}

func (k *ItemKNN) adjustedCosine(a, b model.ItemID) simEntry {
	ra, rb := k.m.ItemRatings(a), k.m.ItemRatings(b)
	shared := make([]model.UserID, 0, len(ra))
	for u := range ra {
		if _, ok := rb[u]; ok {
			shared = append(shared, u)
		}
	}
	n := len(shared)
	if n < 2 {
		return simEntry{overlap: n}
	}
	// Sorted accumulation keeps the sums deterministic; see pearson.
	sort.Slice(shared, func(x, y int) bool { return shared[x] < shared[y] })
	var sab, saa, sbb float64
	for _, u := range shared {
		mean, _ := k.m.UserMean(u)
		da, db := ra[u]-mean, rb[u]-mean
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return simEntry{overlap: n}
	}
	return simEntry{sim: sab / math.Sqrt(saa*sbb), overlap: n}
}

// Neighbors returns up to K of the user's own rated items most similar
// to target, sorted by descending similarity.
func (k *ItemKNN) Neighbors(u model.UserID, target model.ItemID) []ItemNeighbor {
	rated := k.m.UserRatings(u)
	cands := make([]ItemNeighbor, 0, len(rated))
	for j, rating := range rated {
		if j == target {
			continue
		}
		e := k.similarity(target, j)
		if e.sim <= 0 {
			continue
		}
		cands = append(cands, ItemNeighbor{Item: j, Similarity: e.sim, Rating: rating})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].Similarity != cands[b].Similarity {
			return cands[a].Similarity > cands[b].Similarity
		}
		return cands[a].Item < cands[b].Item
	})
	if len(cands) > k.opts.K {
		cands = cands[:k.opts.K]
	}
	return cands
}

// Predict implements recsys.Predictor with the similarity-weighted
// average of the user's own ratings of similar items.
func (k *ItemKNN) Predict(u model.UserID, i model.ItemID) (recsys.Prediction, error) {
	neighbors := k.Neighbors(u, i)
	if len(neighbors) == 0 {
		return recsys.Prediction{}, fmt.Errorf("user %d, item %d: %w", u, i, recsys.ErrColdStart)
	}
	var num, den float64
	for _, nb := range neighbors {
		num += nb.Similarity * nb.Rating
		den += nb.Similarity
	}
	score := model.ClampRating(num / den)
	support := float64(len(neighbors)) / float64(k.opts.K)
	if support > 1 {
		support = 1
	}
	return recsys.Prediction{Item: i, Score: score, Confidence: support}, nil
}

// Recommend implements recsys.Recommender.
func (k *ItemKNN) Recommend(u model.UserID, n int, exclude func(model.ItemID) bool) []recsys.Prediction {
	return recsys.TopN(recsys.RankAll(k, k.cat, u, exclude), n)
}
