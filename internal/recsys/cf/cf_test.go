package cf

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/recsys"
)

// tinyMatrix builds a hand-checkable community: users 1 and 2 agree,
// user 3 disagrees with both.
func tinyMatrix() (*model.Matrix, *model.Catalog) {
	m := model.NewMatrix()
	// items 1..5
	set := func(u model.UserID, vals ...float64) {
		for i, v := range vals {
			if v > 0 {
				m.Set(u, model.ItemID(i+1), v)
			}
		}
	}
	set(1, 5, 4, 1, 2, 0) // user 1
	set(2, 5, 5, 1, 1, 4) // user 2 — similar to 1, rated item 5
	set(3, 1, 2, 5, 5, 1) // user 3 — opposite taste
	cat := model.NewCatalog("t")
	for i := 1; i <= 5; i++ {
		cat.MustAdd(&model.Item{ID: model.ItemID(i), Title: "item"})
	}
	return m, cat
}

func TestPearsonHandComputed(t *testing.T) {
	a := map[model.ItemID]float64{1: 1, 2: 2, 3: 3}
	b := map[model.ItemID]float64{1: 2, 2: 4, 3: 6}
	e := pearson(a, b)
	if e.overlap != 3 || math.Abs(e.sim-1) > 1e-12 {
		t.Fatalf("pearson = %+v, want sim 1 overlap 3", e)
	}
	c := map[model.ItemID]float64{1: 3, 2: 2, 3: 1}
	if e := pearson(a, c); math.Abs(e.sim+1) > 1e-12 {
		t.Fatalf("anti-correlated sim = %v, want -1", e.sim)
	}
	// Constant ratings have no variance: similarity undefined -> 0.
	d := map[model.ItemID]float64{1: 3, 2: 3, 3: 3}
	if e := pearson(a, d); e.sim != 0 {
		t.Fatalf("zero-variance sim = %v", e.sim)
	}
	// Disjoint users.
	if e := pearson(a, map[model.ItemID]float64{9: 1}); e.overlap != 0 || e.sim != 0 {
		t.Fatalf("disjoint = %+v", e)
	}
}

func TestUserKNNPredictAgreesWithLikeMindedNeighbor(t *testing.T) {
	m, cat := tinyMatrix()
	k := NewUserKNN(m, cat, Options{K: 2, MinOverlap: 2, ShrinkAt: -1})
	// ShrinkAt < 0 disables shrinkage entirely for hand-checking.
	pred, err := k.Predict(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	// User 2 (similar, rated item5 = 4, own mean 3.2) pulls user 1's
	// mean (3.0) up; user 3 is negatively correlated and excluded.
	if pred.Score <= 3.0 {
		t.Fatalf("prediction %v should exceed user 1's mean", pred.Score)
	}
	if pred.Confidence <= 0 || pred.Confidence > 1 {
		t.Fatalf("confidence %v out of range", pred.Confidence)
	}
}

func TestUserKNNNeighborsExcludeSelfAndNegative(t *testing.T) {
	m, cat := tinyMatrix()
	k := NewUserKNN(m, cat, Options{K: 5, MinOverlap: 2})
	nbs := k.Neighbors(1, 5)
	for _, nb := range nbs {
		if nb.User == 1 {
			t.Fatal("self included in neighbourhood")
		}
		if nb.Similarity <= 0 {
			t.Fatalf("non-positive neighbour retained: %+v", nb)
		}
	}
}

func TestUserKNNColdStart(t *testing.T) {
	m, cat := tinyMatrix()
	k := NewUserKNN(m, cat, Options{})
	// User 99 rated nothing: no similarities, no neighbours.
	_, err := k.Predict(99, 1)
	if !errors.Is(err, recsys.ErrColdStart) {
		t.Fatalf("cold-start error = %v", err)
	}
}

func TestUserKNNMinOverlapGate(t *testing.T) {
	m := model.NewMatrix()
	m.Set(1, 1, 5)
	m.Set(1, 2, 1)
	m.Set(2, 1, 5)
	m.Set(2, 2, 1)
	m.Set(2, 3, 5)
	cat := model.NewCatalog("t")
	for i := 1; i <= 3; i++ {
		cat.MustAdd(&model.Item{ID: model.ItemID(i)})
	}
	strict := NewUserKNN(m, cat, Options{K: 5, MinOverlap: 3})
	if _, err := strict.Predict(1, 3); !errors.Is(err, recsys.ErrColdStart) {
		t.Fatalf("overlap gate should zero the similarity, got %v", err)
	}
	loose := NewUserKNN(m, cat, Options{K: 5, MinOverlap: 2})
	if _, err := loose.Predict(1, 3); err != nil {
		t.Fatalf("loose gate should predict: %v", err)
	}
}

func TestPredictionsClampedToScaleQuick(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 21, Users: 40, Items: 60, RatingsPerUser: 15})
	k := NewUserKNN(c.Ratings, c.Catalog, Options{K: 10})
	items := c.Catalog.Items()
	f := func(u uint8, i uint16) bool {
		pred, err := k.Predict(model.UserID(int(u)%40+1), items[int(i)%len(items)].ID)
		if err != nil {
			return true // cold start is acceptable
		}
		return pred.Score >= model.MinRating && pred.Score <= model.MaxRating &&
			pred.Confidence >= 0 && pred.Confidence <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUserKNNBeatsGlobalMeanOnHeldOut(t *testing.T) {
	// The CF substrate must actually work: hold out one rating per user
	// and compare |error| against the global-mean and user-mean
	// baselines on a reasonably dense community.
	c := dataset.Movies(dataset.Config{Seed: 31, Users: 200, Items: 100, RatingsPerUser: 40})
	m := c.Ratings
	type holdout struct {
		u model.UserID
		i model.ItemID
		v float64
	}
	var held []holdout
	for _, u := range m.Users() {
		for i, v := range m.UserRatings(u) {
			held = append(held, holdout{u, i, v})
			break // one per user
		}
	}
	train := m.Clone()
	for _, h := range held {
		train.Delete(h.u, h.i)
	}
	k := NewUserKNN(train, c.Catalog, Options{K: 25})
	gm := train.GlobalMean()
	var cfErr, gmErr, umErr float64
	var n int
	for _, h := range held {
		pred, err := k.Predict(h.u, h.i)
		if err != nil {
			continue
		}
		um, _ := train.UserMean(h.u)
		cfErr += math.Abs(pred.Score - h.v)
		gmErr += math.Abs(gm - h.v)
		umErr += math.Abs(um - h.v)
		n++
	}
	if n < len(held)/2 {
		t.Fatalf("too many cold starts: %d of %d predicted", n, len(held))
	}
	if cfErr >= gmErr || cfErr >= umErr {
		t.Fatalf("CF MAE %.3f not better than baselines (global %.3f, user-mean %.3f, n=%d)",
			cfErr/float64(n), gmErr/float64(n), umErr/float64(n), n)
	}
}

func TestRecommendSortedAndExcludesRated(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 41, Users: 30, Items: 50, RatingsPerUser: 12})
	k := NewUserKNN(c.Ratings, c.Catalog, Options{K: 10})
	u := model.UserID(1)
	recs := k.Recommend(u, 10, recsys.ExcludeRated(c.Ratings, u))
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Score < recs[i].Score {
			t.Fatal("recommendations not sorted by score")
		}
	}
	for _, r := range recs {
		if _, rated := c.Ratings.Get(u, r.Item); rated {
			t.Fatalf("recommended already-rated item %d", r.Item)
		}
	}
}

func TestItemKNNPredict(t *testing.T) {
	m, cat := tinyMatrix()
	k := NewItemKNN(m, cat, Options{K: 5, MinOverlap: 2})
	pred, err := k.Predict(2, 5) // user 2 rated item 5 = 4; still predictable from others
	if err != nil {
		t.Fatal(err)
	}
	if pred.Score < model.MinRating || pred.Score > model.MaxRating {
		t.Fatalf("score %v off scale", pred.Score)
	}
}

func TestItemKNNNeighborsAreUsersOwnItems(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 51, Users: 40, Items: 60, RatingsPerUser: 15})
	k := NewItemKNN(c.Ratings, c.Catalog, Options{K: 8})
	u := model.UserID(3)
	var target model.ItemID
	for _, it := range c.Catalog.Items() {
		if _, rated := c.Ratings.Get(u, it.ID); !rated {
			target = it.ID
			break
		}
	}
	nbs := k.Neighbors(u, target)
	if len(nbs) == 0 {
		t.Skip("no positive item neighbours for this draw")
	}
	for _, nb := range nbs {
		if _, rated := c.Ratings.Get(u, nb.Item); !rated {
			t.Fatalf("neighbour %d was not rated by user", nb.Item)
		}
		if nb.Item == target {
			t.Fatal("target item is its own neighbour")
		}
	}
}

func TestItemKNNColdStart(t *testing.T) {
	m, cat := tinyMatrix()
	k := NewItemKNN(m, cat, Options{})
	if _, err := k.Predict(99, 1); !errors.Is(err, recsys.ErrColdStart) {
		t.Fatalf("cold start = %v", err)
	}
}

func TestSimilarityCacheConsistency(t *testing.T) {
	m, cat := tinyMatrix()
	k := NewUserKNN(m, cat, Options{K: 5, MinOverlap: 2})
	a := k.similarity(1, 2)
	b := k.similarity(2, 1) // symmetric lookup must hit the same entry
	if a != b {
		t.Fatalf("similarity not symmetric: %+v vs %+v", a, b)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.K != 20 || o.MinOverlap != 3 || o.ShrinkAt != 5 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestNames(t *testing.T) {
	m, cat := tinyMatrix()
	if NewUserKNN(m, cat, Options{}).Name() != "user-knn" {
		t.Fatal("user name")
	}
	if NewItemKNN(m, cat, Options{}).Name() != "item-knn" {
		t.Fatal("item name")
	}
}

func BenchmarkUserKNNPredict(b *testing.B) {
	c := dataset.Movies(dataset.Config{Seed: 61, Users: 200, Items: 300, RatingsPerUser: 30})
	k := NewUserKNN(c.Ratings, c.Catalog, Options{K: 20})
	items := c.Catalog.Items()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := model.UserID(i%200 + 1)
		_, _ = k.Predict(u, items[i%len(items)].ID)
	}
}

func BenchmarkUserKNNRecommend(b *testing.B) {
	c := dataset.Movies(dataset.Config{Seed: 62, Users: 100, Items: 200, RatingsPerUser: 25})
	k := NewUserKNN(c.Ratings, c.Catalog, Options{K: 20})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := model.UserID(i%100 + 1)
		_ = k.Recommend(u, 10, recsys.ExcludeRated(c.Ratings, u))
	}
}
