package cf

import "sync"

// simCache caches pairwise similarities so the kNN recommenders keep
// their lazy "compute each similarity at most once" behaviour while
// serving many concurrent readers. It is a thin wrapper over sync.Map,
// whose read path is a single atomic load with no shared-cache-line
// writes — measurably cheaper in the Predict hot loop than even a
// read-locked stripe, and free of cross-core ping-pong under parallel
// load. Two goroutines racing to fill the same entry simply compute
// the same deterministic value twice.
//
// Snapshot engines share computed similarities across generations with
// cloneWithout, which copies every entry except the ones invalidated
// by a write (see DESIGN.md, "Concurrency model").
type simCache struct {
	m sync.Map // pairKey -> simEntry
}

// pairKey identifies an unordered ID pair; callers normalise a <= b.
type pairKey struct {
	a, b int64
}

func newSimCache() *simCache { return &simCache{} }

func (c *simCache) get(a, b int64) (simEntry, bool) {
	if a > b {
		a, b = b, a
	}
	v, ok := c.m.Load(pairKey{a, b})
	if !ok {
		return simEntry{}, false
	}
	return v.(simEntry), true
}

func (c *simCache) put(a, b int64, e simEntry) {
	if a > b {
		a, b = b, a
	}
	c.m.Store(pairKey{a, b}, e)
}

// cloneWithout returns a new cache holding every entry whose pair does
// not involve any of the dropped IDs. With no drop IDs it is a plain
// copy. The receiver may be concurrently read (and even written) while
// cloning; entries added during the clone may or may not carry over,
// which is harmless because entries are deterministic functions of the
// matrix they were computed from.
func (c *simCache) cloneWithout(drop ...int64) *simCache {
	dropped := func(id int64) bool {
		for _, d := range drop {
			if id == d {
				return true
			}
		}
		return false
	}
	out := newSimCache()
	c.m.Range(func(k, v any) bool {
		pk := k.(pairKey)
		if !dropped(pk.a) && !dropped(pk.b) {
			out.m.Store(pk, v)
		}
		return true
	})
	return out
}

// len reports the number of cached entries (test helper).
func (c *simCache) len() int {
	n := 0
	c.m.Range(func(_, _ any) bool { n++; return true })
	return n
}
