package cf

import (
	"repro/internal/ann"
	"repro/internal/model"
)

// This file exposes a rating matrix's neighbourhood vectors to the ANN
// subsystem: the same rows and columns the kNN similarity caches score
// pairwise, as dense indexable embeddings. The dimensions follow the
// matrix's sorted user/item orders, so two calls over the same matrix
// produce identical layouts.

// ItemVectors returns one vector per rated item: its ratings column
// over the matrix's users (dimension = number of users), sorted by
// item ID. Dot products between these columns are the unnormalised
// co-rating similarities item-based kNN ranks by.
func ItemVectors(m *model.Matrix) []ann.Vector {
	users := m.Users()
	if len(users) == 0 {
		return nil
	}
	slot := make(map[model.UserID]int, len(users))
	for k, u := range users {
		slot[u] = k
	}
	items := m.RatedItems()
	out := make([]ann.Vector, 0, len(items))
	for _, i := range items {
		e := make([]float32, len(users))
		for u, v := range m.ItemRatings(i) {
			e[slot[u]] = float32(v)
		}
		out = append(out, ann.Vector{ID: int64(i), Elems: e})
	}
	return out
}

// UserVectors is the transpose: one vector per user, their ratings row
// over the matrix's rated items (dimension = number of rated items),
// sorted by user ID.
func UserVectors(m *model.Matrix) []ann.Vector {
	items := m.RatedItems()
	if len(items) == 0 {
		return nil
	}
	slot := make(map[model.ItemID]int, len(items))
	for k, i := range items {
		slot[i] = k
	}
	users := m.Users()
	out := make([]ann.Vector, 0, len(users))
	for _, u := range users {
		e := make([]float32, len(items))
		for i, v := range m.UserRatings(u) {
			e[slot[i]] = float32(v)
		}
		out = append(out, ann.Vector{ID: int64(u), Elems: e})
	}
	return out
}
