package cf

import (
	"reflect"
	"testing"

	"repro/internal/model"
)

func vectorMatrix() *model.Matrix {
	m := model.NewMatrix()
	m.Set(2, 10, 4)
	m.Set(1, 10, 5)
	m.Set(1, 20, 3)
	m.Set(3, 30, 2)
	return m
}

func TestItemVectorsLayout(t *testing.T) {
	m := vectorMatrix()
	vecs := ItemVectors(m)
	if len(vecs) != 3 {
		t.Fatalf("got %d item vectors", len(vecs))
	}
	// Sorted by item ID, columns over users 1,2,3 in sorted order.
	wantIDs := []int64{10, 20, 30}
	for k, v := range vecs {
		if v.ID != wantIDs[k] {
			t.Fatalf("vector %d has ID %d, want %d", k, v.ID, wantIDs[k])
		}
		if len(v.Elems) != 3 {
			t.Fatalf("item %d dim = %d, want 3", v.ID, len(v.Elems))
		}
	}
	if got, want := vecs[0].Elems, []float32{5, 4, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("item 10 column = %v, want %v", got, want)
	}
	if got, want := vecs[2].Elems, []float32{0, 0, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("item 30 column = %v, want %v", got, want)
	}
}

func TestUserVectorsLayout(t *testing.T) {
	m := vectorMatrix()
	vecs := UserVectors(m)
	if len(vecs) != 3 {
		t.Fatalf("got %d user vectors", len(vecs))
	}
	// Sorted by user ID, rows over items 10,20,30 in sorted order.
	if vecs[0].ID != 1 || vecs[1].ID != 2 || vecs[2].ID != 3 {
		t.Fatalf("user order = %d,%d,%d", vecs[0].ID, vecs[1].ID, vecs[2].ID)
	}
	if got, want := vecs[0].Elems, []float32{5, 3, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("user 1 row = %v, want %v", got, want)
	}
}

func TestVectorsDeterministicAcrossCalls(t *testing.T) {
	m := vectorMatrix()
	if !reflect.DeepEqual(ItemVectors(m), ItemVectors(m)) {
		t.Fatal("ItemVectors layout varies between calls")
	}
	if !reflect.DeepEqual(UserVectors(m), UserVectors(m)) {
		t.Fatal("UserVectors layout varies between calls")
	}
}

func TestVectorsEmptyMatrix(t *testing.T) {
	m := model.NewMatrix()
	if ItemVectors(m) != nil || UserVectors(m) != nil {
		t.Fatal("empty matrix produced vectors")
	}
}
