// Package content implements content-based recommendation over item
// keywords: a weighted keyword-profile recommender and a LIBRA-style
// naive-Bayes recommender (Bilgic & Mooney 2005) that can attribute
// each recommendation to the user's past ratings.
//
// The attribution is the point. Figure 3 of the survey shows LIBRA's
// influence explanation — "which rated titles influenced the
// recommended book the most", as percentages. Bayes reproduces that
// with exact leave-one-out influence: the change in the
// recommendation's log-odds when one past rating is removed.
package content

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/recsys"
)

// sortedItemIDs returns the keys of a rating map in ascending order,
// for order-stable floating-point accumulation.
func sortedItemIDs(ratings map[model.ItemID]float64) []model.ItemID {
	ids := make([]model.ItemID, 0, len(ratings))
	for id := range ratings {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// likeThreshold splits ratings into the like/dislike classes the
// naive-Bayes model is trained on. 3.5 is the midpoint of the upper
// half of the 1-5 scale, matching LIBRA's "positively rated" notion.
const likeThreshold = 3.5

// KeywordContribution is one keyword's additive effect on a
// prediction's log-odds: positive pushes toward "like".
type KeywordContribution struct {
	Keyword string
	Weight  float64
}

// Influence reports how much one of the user's past ratings pulled a
// recommendation, as produced by leave-one-out re-scoring.
type Influence struct {
	Item   model.ItemID
	Rating float64 // the user's rating of that item
	Weight float64 // signed log-odds delta; positive supported the recommendation
	// Percent is |Weight| normalised over all influences, the form the
	// LIBRA interface displays.
	Percent float64
}

// Profile is a user's keyword-affinity vector, derived from their
// mean-centred ratings. Positive weights mark liked content features.
// It also powers the preference-based explanation text ("you have been
// watching a lot of sports, and football in particular").
type Profile struct {
	Weights map[string]float64
	Mean    float64 // the user's mean rating
	Rated   int     // number of ratings the profile is built from
}

// TopKeywords returns the n highest-weighted keywords, descending.
func (p *Profile) TopKeywords(n int) []KeywordContribution {
	return p.extremes(n, true)
}

// BottomKeywords returns the n lowest-weighted (most disliked)
// keywords, ascending.
func (p *Profile) BottomKeywords(n int) []KeywordContribution {
	return p.extremes(n, false)
}

func (p *Profile) extremes(n int, top bool) []KeywordContribution {
	out := make([]KeywordContribution, 0, len(p.Weights))
	for k, w := range p.Weights {
		out = append(out, KeywordContribution{Keyword: k, Weight: w})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Weight != out[b].Weight {
			if top {
				return out[a].Weight > out[b].Weight
			}
			return out[a].Weight < out[b].Weight
		}
		return out[a].Keyword < out[b].Keyword
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// KeywordRecommender predicts ratings from a dot product between the
// user's keyword profile and the item's keywords. It is the simple
// content-based baseline; Bayes is the explainable workhorse.
//
// Profiles are derived lazily, cached per user in a concurrent map,
// and safe for any number of concurrent readers as long as the matrix
// is not mutated in place (snapshot engines swap matrices via Rebind).
type KeywordRecommender struct {
	m   *model.Matrix
	cat *model.Catalog
	// profiles caches UserID -> *Profile. Cached profiles are shared;
	// callers must treat them as read-only.
	profiles sync.Map
}

// NewKeywordRecommender builds a keyword-profile recommender.
func NewKeywordRecommender(m *model.Matrix, cat *model.Catalog) *KeywordRecommender {
	return &KeywordRecommender{m: m, cat: cat}
}

// Name implements recsys.Named.
func (r *KeywordRecommender) Name() string { return "keyword-profile" }

// Rebind returns a KeywordRecommender over m that keeps every cached
// profile except the touched users' (a profile depends only on its own
// user's ratings, so the carry-over is exact).
func (r *KeywordRecommender) Rebind(m *model.Matrix, touched ...model.UserID) *KeywordRecommender {
	nr := &KeywordRecommender{m: m, cat: r.cat}
	copyCacheExcept(&r.profiles, &nr.profiles, touched)
	return nr
}

// RebindMatrix implements recsys.MatrixRebinder.
func (r *KeywordRecommender) RebindMatrix(m *model.Matrix, touched ...model.UserID) recsys.Recommender {
	return r.Rebind(m, touched...)
}

// copyCacheExcept copies a UserID-keyed sync.Map, skipping the listed
// users. Shared by the profile and Bayes-model caches.
func copyCacheExcept(src, dst *sync.Map, drop []model.UserID) {
	src.Range(func(k, v any) bool {
		u := k.(model.UserID)
		for _, d := range drop {
			if u == d {
				return true
			}
		}
		dst.Store(u, v)
		return true
	})
}

// ProfileFor derives u's keyword profile: each rated item spreads its
// mean-centred rating evenly over its keywords; weights are then
// normalised by keyword frequency. The returned profile is cached and
// shared; callers must not modify it.
func (r *KeywordRecommender) ProfileFor(u model.UserID) (*Profile, error) {
	if cached, ok := r.profiles.Load(u); ok {
		return cached.(*Profile), nil
	}
	ratings := r.m.UserRatings(u)
	if len(ratings) == 0 {
		return nil, fmt.Errorf("user %d: %w", u, recsys.ErrColdStart)
	}
	mean, _ := r.m.UserMean(u)
	sums := map[string]float64{}
	counts := map[string]int{}
	// Accumulate in sorted item order so the profile is bit-identical
	// across runs (float addition is order-sensitive).
	for _, id := range sortedItemIDs(ratings) {
		v := ratings[id]
		it, err := r.cat.Item(id)
		if err != nil || len(it.Keywords) == 0 {
			continue
		}
		share := (v - mean) / float64(len(it.Keywords))
		for _, k := range it.Keywords {
			sums[k] += share
			counts[k]++
		}
	}
	weights := make(map[string]float64, len(sums))
	for k, s := range sums {
		weights[k] = s / float64(counts[k]) * float64(len(counts))
	}
	// Re-normalise to keep weights in a stable range regardless of
	// vocabulary size.
	var maxAbs float64
	for _, w := range weights {
		if a := math.Abs(w); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs > 0 {
		for k := range weights {
			weights[k] /= maxAbs
		}
	}
	p := &Profile{Weights: weights, Mean: mean, Rated: len(ratings)}
	// Concurrent fills race benignly: both compute the same
	// deterministic profile from the same immutable matrix.
	r.profiles.Store(u, p)
	return p, nil
}

// Predict implements recsys.Predictor.
func (r *KeywordRecommender) Predict(u model.UserID, i model.ItemID) (recsys.Prediction, error) {
	p, err := r.ProfileFor(u)
	if err != nil {
		return recsys.Prediction{}, err
	}
	it, err := r.cat.Item(i)
	if err != nil {
		return recsys.Prediction{}, err
	}
	if len(it.Keywords) == 0 {
		return recsys.Prediction{}, fmt.Errorf("item %d has no content features: %w", i, recsys.ErrColdStart)
	}
	var sum float64
	var known int
	for _, k := range it.Keywords {
		if w, ok := p.Weights[k]; ok {
			sum += w
			known++
		}
	}
	score := model.ClampRating(p.Mean + 1.5*sum/float64(len(it.Keywords)))
	conf := float64(known) / float64(len(it.Keywords))
	if p.Rated < 10 {
		conf *= float64(p.Rated) / 10
	}
	return recsys.Prediction{Item: i, Score: score, Confidence: conf}, nil
}

// Recommend implements recsys.Recommender.
func (r *KeywordRecommender) Recommend(u model.UserID, n int, exclude func(model.ItemID) bool) []recsys.Prediction {
	return recsys.TopN(recsys.RankAll(r, r.cat, u, exclude), n)
}

// Bayes is a LIBRA-style binary naive-Bayes content recommender. For
// each user it maintains keyword counts over liked and disliked items
// and scores candidates by smoothed log-odds.
//
// Influence weights implement the functionality the survey imagines
// for Figure 3 ("it can be imagined that this functionality could be
// implemented": letting the user modify the degree of influence of a
// past rating, not just the rating itself). A weight scales how much
// one rating contributes to the trained model: 0 silences it, 1 is
// the default, 2 doubles it. The influence report reflects weights
// immediately, closing the scrutability loop.
type Bayes struct {
	m   *model.Matrix
	cat *model.Catalog
	// weights holds per-(user,item) influence multipliers; absent
	// entries mean 1.
	weights map[model.UserID]map[model.ItemID]float64
	// models caches UserID -> *bayesModel (the full trained table,
	// skip == 0). Leave-one-out tables for influence reports are cheap
	// relative to their rarity and stay uncached.
	models sync.Map
}

// NewBayes builds a naive-Bayes recommender over m and cat.
func NewBayes(m *model.Matrix, cat *model.Catalog) *Bayes {
	return &Bayes{m: m, cat: cat, weights: map[model.UserID]map[model.ItemID]float64{}}
}

// Rebind returns a Bayes over m that shares the influence weights and
// keeps every cached trained table except the touched users' (a table
// depends only on its own user's ratings and weights, so the carry-over
// is exact). Neither the receiver nor the result may be mutated with
// SetInfluenceWeight afterwards — use WithInfluenceWeight, which copies.
func (b *Bayes) Rebind(m *model.Matrix, touched ...model.UserID) *Bayes {
	nb := &Bayes{m: m, cat: b.cat, weights: b.weights}
	copyCacheExcept(&b.models, &nb.models, touched)
	return nb
}

// RebindMatrix implements recsys.MatrixRebinder.
func (b *Bayes) RebindMatrix(m *model.Matrix, touched ...model.UserID) recsys.Recommender {
	return b.Rebind(m, touched...)
}

// WithInfluenceWeight returns a copy of b with the weight applied,
// sharing the matrix, all untouched users' weight rows, and all cached
// tables except u's. This is the copy-on-write form snapshot engines
// use so concurrent readers of b never observe the edit.
func (b *Bayes) WithInfluenceWeight(u model.UserID, item model.ItemID, w float64) *Bayes {
	weights := make(map[model.UserID]map[model.ItemID]float64, len(b.weights)+1)
	for user, row := range b.weights {
		weights[user] = row
	}
	row := make(map[model.ItemID]float64, len(b.weights[u])+1)
	for it, v := range b.weights[u] {
		row[it] = v
	}
	row[item] = clampInfluence(w)
	weights[u] = row
	nb := &Bayes{m: b.m, cat: b.cat, weights: weights}
	copyCacheExcept(&b.models, &nb.models, []model.UserID{u})
	return nb
}

func clampInfluence(w float64) float64 {
	if w < 0 {
		return 0
	}
	if w > 4 {
		return 4
	}
	return w
}

// SetInfluenceWeight sets the influence multiplier of u's rating of
// item in place. Weights are clamped to [0, 4]; 1 restores the
// default. Not safe to call concurrently with readers — concurrent
// engines publish a fresh instance via WithInfluenceWeight instead.
func (b *Bayes) SetInfluenceWeight(u model.UserID, item model.ItemID, w float64) {
	if b.weights[u] == nil {
		b.weights[u] = map[model.ItemID]float64{}
	}
	b.weights[u][item] = clampInfluence(w)
	b.models.Delete(u) // the cached table baked in the old weight
}

// InfluenceWeight returns the current multiplier for u's rating of
// item (1 when unset).
func (b *Bayes) InfluenceWeight(u model.UserID, item model.ItemID) float64 {
	if w, ok := b.weights[u][item]; ok {
		return w
	}
	return 1
}

// Name implements recsys.Named.
func (b *Bayes) Name() string { return "naive-bayes" }

// bayesModel holds the per-user sufficient statistics. Counts are
// fractional because influence weights scale each rating's
// contribution.
type bayesModel struct {
	nLike, nDislike   float64
	kwLike, kwDislike map[string]float64
}

func (b *Bayes) train(u model.UserID, skip model.ItemID) (*bayesModel, error) {
	ratings := b.m.UserRatings(u)
	mdl := &bayesModel{kwLike: map[string]float64{}, kwDislike: map[string]float64{}}
	// Sorted iteration keeps the fractional sums bit-identical across
	// runs.
	for _, id := range sortedItemIDs(ratings) {
		if id == skip {
			continue
		}
		v := ratings[id]
		w := b.InfluenceWeight(u, id)
		if w == 0 {
			continue
		}
		it, err := b.cat.Item(id)
		if err != nil {
			continue
		}
		if v >= likeThreshold {
			mdl.nLike += w
			for _, k := range it.Keywords {
				mdl.kwLike[k] += w
			}
		} else {
			mdl.nDislike += w
			for _, k := range it.Keywords {
				mdl.kwDislike[k] += w
			}
		}
	}
	if mdl.nLike+mdl.nDislike == 0 {
		return nil, fmt.Errorf("user %d: %w", u, recsys.ErrColdStart)
	}
	return mdl, nil
}

// modelFor returns u's full trained table, training and caching it on
// first use. Racing fills compute the same deterministic table, so the
// last store winning is harmless.
func (b *Bayes) modelFor(u model.UserID) (*bayesModel, error) {
	if cached, ok := b.models.Load(u); ok {
		return cached.(*bayesModel), nil
	}
	mdl, err := b.train(u, 0)
	if err != nil {
		return nil, err
	}
	b.models.Store(u, mdl)
	return mdl, nil
}

// logOdds scores an item under the model: prior log-odds plus one
// Laplace-smoothed term per item keyword.
func (mdl *bayesModel) logOdds(it *model.Item) float64 {
	lo := math.Log(mdl.nLike+1) - math.Log(mdl.nDislike+1)
	for _, k := range it.Keywords {
		lo += mdl.keywordWeight(k)
	}
	return lo
}

func (mdl *bayesModel) keywordWeight(k string) float64 {
	pLike := (mdl.kwLike[k] + 1) / (mdl.nLike + 2)
	pDislike := (mdl.kwDislike[k] + 1) / (mdl.nDislike + 2)
	return math.Log(pLike) - math.Log(pDislike)
}

// logOddsToRating squashes log-odds onto the rating scale.
func logOddsToRating(lo float64) float64 {
	sig := 1 / (1 + math.Exp(-lo))
	return model.MinRating + (model.MaxRating-model.MinRating)*sig
}

// Predict implements recsys.Predictor.
func (b *Bayes) Predict(u model.UserID, i model.ItemID) (recsys.Prediction, error) {
	mdl, err := b.modelFor(u)
	if err != nil {
		return recsys.Prediction{}, err
	}
	it, err := b.cat.Item(i)
	if err != nil {
		return recsys.Prediction{}, err
	}
	lo := mdl.logOdds(it)
	conf := math.Min(1, (mdl.nLike+mdl.nDislike)/20) * math.Min(1, math.Abs(lo)/2+0.25)
	return recsys.Prediction{Item: i, Score: logOddsToRating(lo), Confidence: conf}, nil
}

// Recommend implements recsys.Recommender.
func (b *Bayes) Recommend(u model.UserID, n int, exclude func(model.ItemID) bool) []recsys.Prediction {
	return recsys.TopN(recsys.RankAll(b, b.cat, u, exclude), n)
}

// KeywordContributions breaks a prediction's log-odds into per-keyword
// terms for the target item, sorted by descending weight. This feeds
// keyword-style explanations ("recommended because it is a comedy").
func (b *Bayes) KeywordContributions(u model.UserID, i model.ItemID) ([]KeywordContribution, error) {
	mdl, err := b.modelFor(u)
	if err != nil {
		return nil, err
	}
	it, err := b.cat.Item(i)
	if err != nil {
		return nil, err
	}
	out := make([]KeywordContribution, 0, len(it.Keywords))
	for _, k := range it.Keywords {
		out = append(out, KeywordContribution{Keyword: k, Weight: mdl.keywordWeight(k)})
	}
	sort.Slice(out, func(a, c int) bool {
		if out[a].Weight != out[c].Weight {
			return out[a].Weight > out[c].Weight
		}
		return out[a].Keyword < out[c].Keyword
	})
	return out, nil
}

// Influences computes the exact leave-one-out influence of each of the
// user's past ratings on the prediction for item i: the signed change
// in log-odds when that rating is dropped from the training set. The
// result is sorted by descending |influence| and annotated with
// percentages, reproducing the Figure 3 interface.
func (b *Bayes) Influences(u model.UserID, i model.ItemID) ([]Influence, error) {
	full, err := b.modelFor(u)
	if err != nil {
		return nil, err
	}
	it, err := b.cat.Item(i)
	if err != nil {
		return nil, err
	}
	fullLO := full.logOdds(it)
	ratings := b.m.UserRatings(u)
	out := make([]Influence, 0, len(ratings))
	var totalAbs float64
	for _, id := range sortedItemIDs(ratings) {
		v := ratings[id]
		loo, err := b.train(u, id)
		if err != nil {
			// Removing the only rating empties the model; that rating
			// carries all the influence.
			out = append(out, Influence{Item: id, Rating: v, Weight: fullLO})
			totalAbs += math.Abs(fullLO)
			continue
		}
		w := fullLO - loo.logOdds(it)
		out = append(out, Influence{Item: id, Rating: v, Weight: w})
		totalAbs += math.Abs(w)
	}
	if totalAbs > 0 {
		for idx := range out {
			out[idx].Percent = 100 * math.Abs(out[idx].Weight) / totalAbs
		}
	}
	sort.Slice(out, func(a, c int) bool {
		wa, wc := math.Abs(out[a].Weight), math.Abs(out[c].Weight)
		if wa != wc {
			return wa > wc
		}
		return out[a].Item < out[c].Item
	})
	return out, nil
}
