package content

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/recsys"
)

// comedyFanFixture builds a tiny catalogue and one user who loves
// comedies (5s) and hates horror (1s).
func comedyFanFixture() (*model.Matrix, *model.Catalog, model.UserID) {
	cat := model.NewCatalog("movies")
	items := []struct {
		id model.ItemID
		kw []string
	}{
		{1, []string{"comedy"}},
		{2, []string{"comedy"}},
		{3, []string{"horror"}},
		{4, []string{"horror"}},
		{5, []string{"comedy"}},  // candidate
		{6, []string{"horror"}},  // candidate
		{7, []string{"western"}}, // unseen genre candidate
	}
	for _, e := range items {
		cat.MustAdd(&model.Item{ID: e.id, Title: "t", Keywords: e.kw})
	}
	m := model.NewMatrix()
	u := model.UserID(1)
	m.Set(u, 1, 5)
	m.Set(u, 2, 5)
	m.Set(u, 3, 1)
	m.Set(u, 4, 1)
	return m, cat, u
}

func TestKeywordProfileSignsMatchTaste(t *testing.T) {
	m, cat, u := comedyFanFixture()
	r := NewKeywordRecommender(m, cat)
	p, err := r.ProfileFor(u)
	if err != nil {
		t.Fatal(err)
	}
	if p.Weights["comedy"] <= 0 {
		t.Fatalf("comedy weight = %v, want positive", p.Weights["comedy"])
	}
	if p.Weights["horror"] >= 0 {
		t.Fatalf("horror weight = %v, want negative", p.Weights["horror"])
	}
	if p.Rated != 4 || p.Mean != 3 {
		t.Fatalf("profile stats = %+v", p)
	}
}

func TestKeywordPredictOrdersGenres(t *testing.T) {
	m, cat, u := comedyFanFixture()
	r := NewKeywordRecommender(m, cat)
	comedy, err := r.Predict(u, 5)
	if err != nil {
		t.Fatal(err)
	}
	horror, err := r.Predict(u, 6)
	if err != nil {
		t.Fatal(err)
	}
	if comedy.Score <= horror.Score {
		t.Fatalf("comedy %.2f should beat horror %.2f", comedy.Score, horror.Score)
	}
}

func TestKeywordPredictUnseenGenreLowConfidence(t *testing.T) {
	m, cat, u := comedyFanFixture()
	r := NewKeywordRecommender(m, cat)
	pred, err := r.Predict(u, 7) // western: never rated
	if err != nil {
		t.Fatal(err)
	}
	if pred.Confidence != 0 {
		t.Fatalf("unseen-genre confidence = %v, want 0", pred.Confidence)
	}
}

func TestKeywordColdStart(t *testing.T) {
	m, cat, _ := comedyFanFixture()
	r := NewKeywordRecommender(m, cat)
	if _, err := r.Predict(99, 5); !errors.Is(err, recsys.ErrColdStart) {
		t.Fatalf("cold start = %v", err)
	}
	if _, err := r.ProfileFor(99); !errors.Is(err, recsys.ErrColdStart) {
		t.Fatalf("profile cold start = %v", err)
	}
}

func TestProfileTopBottomKeywords(t *testing.T) {
	m, cat, u := comedyFanFixture()
	r := NewKeywordRecommender(m, cat)
	p, _ := r.ProfileFor(u)
	top := p.TopKeywords(1)
	if len(top) != 1 || top[0].Keyword != "comedy" {
		t.Fatalf("TopKeywords = %v", top)
	}
	bottom := p.BottomKeywords(1)
	if len(bottom) != 1 || bottom[0].Keyword != "horror" {
		t.Fatalf("BottomKeywords = %v", bottom)
	}
	if got := p.TopKeywords(100); len(got) != len(p.Weights) {
		t.Fatalf("over-asking should return all: %d", len(got))
	}
}

func TestBayesPredictOrdersGenres(t *testing.T) {
	m, cat, u := comedyFanFixture()
	b := NewBayes(m, cat)
	comedy, err := b.Predict(u, 5)
	if err != nil {
		t.Fatal(err)
	}
	horror, err := b.Predict(u, 6)
	if err != nil {
		t.Fatal(err)
	}
	if comedy.Score <= horror.Score {
		t.Fatalf("comedy %.2f should beat horror %.2f", comedy.Score, horror.Score)
	}
	if comedy.Score <= 3 {
		t.Fatalf("comedy score %.2f should sit above the midpoint", comedy.Score)
	}
	if horror.Score >= 3 {
		t.Fatalf("horror score %.2f should sit below the midpoint", horror.Score)
	}
}

func TestBayesColdStart(t *testing.T) {
	m, cat, _ := comedyFanFixture()
	b := NewBayes(m, cat)
	if _, err := b.Predict(42, 5); !errors.Is(err, recsys.ErrColdStart) {
		t.Fatalf("cold start = %v", err)
	}
}

func TestBayesKeywordContributions(t *testing.T) {
	m, cat, u := comedyFanFixture()
	b := NewBayes(m, cat)
	kcs, err := b.KeywordContributions(u, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(kcs) != 1 || kcs[0].Keyword != "comedy" || kcs[0].Weight <= 0 {
		t.Fatalf("contributions = %+v", kcs)
	}
	kcs, err = b.KeywordContributions(u, 6)
	if err != nil {
		t.Fatal(err)
	}
	if kcs[0].Weight >= 0 {
		t.Fatalf("horror contribution = %+v, want negative", kcs[0])
	}
}

func TestBayesInfluencesFavorSharedKeywords(t *testing.T) {
	m, cat, u := comedyFanFixture()
	b := NewBayes(m, cat)
	infl, err := b.Influences(u, 5) // candidate comedy
	if err != nil {
		t.Fatal(err)
	}
	if len(infl) != 4 {
		t.Fatalf("got %d influences, want one per rating", len(infl))
	}
	byItem := map[model.ItemID]Influence{}
	var pctSum float64
	for _, in := range infl {
		byItem[in.Item] = in
		pctSum += in.Percent
	}
	// The rated comedies must push the comedy candidate up...
	if byItem[1].Weight <= 0 || byItem[2].Weight <= 0 {
		t.Fatalf("comedy ratings should have positive influence: %+v", infl)
	}
	// ...and removing a hated horror film should not raise the comedy's
	// score (weights <= 0 modulo prior effects; allow small epsilon).
	if byItem[3].Weight > 0.2 || byItem[4].Weight > 0.2 {
		t.Fatalf("horror ratings should not support the comedy: %+v", infl)
	}
	if math.Abs(pctSum-100) > 1e-6 {
		t.Fatalf("percentages sum to %v, want 100", pctSum)
	}
	// Sorted by |weight| descending.
	for i := 1; i < len(infl); i++ {
		if math.Abs(infl[i-1].Weight) < math.Abs(infl[i].Weight) {
			t.Fatal("influences not sorted by magnitude")
		}
	}
}

func TestBayesInfluenceSingleRating(t *testing.T) {
	cat := model.NewCatalog("x")
	cat.MustAdd(&model.Item{ID: 1, Keywords: []string{"a"}})
	cat.MustAdd(&model.Item{ID: 2, Keywords: []string{"a"}})
	m := model.NewMatrix()
	m.Set(1, 1, 5)
	b := NewBayes(m, cat)
	infl, err := b.Influences(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(infl) != 1 || infl[0].Percent != 100 {
		t.Fatalf("single-rating influence = %+v", infl)
	}
}

func TestLogOddsToRatingBounds(t *testing.T) {
	if v := logOddsToRating(0); math.Abs(v-3) > 1e-9 {
		t.Fatalf("neutral log-odds -> %v, want 3", v)
	}
	if v := logOddsToRating(100); v > model.MaxRating || v < 4.99 {
		t.Fatalf("huge log-odds -> %v", v)
	}
	if v := logOddsToRating(-100); v < model.MinRating || v > 1.01 {
		t.Fatalf("huge negative log-odds -> %v", v)
	}
}

func TestBayesScoreWithinScaleQuick(t *testing.T) {
	c := dataset.Books(dataset.Config{Seed: 71, Users: 30, Items: 60, RatingsPerUser: 12})
	b := NewBayes(c.Ratings, c.Catalog)
	items := c.Catalog.Items()
	f := func(u uint8, i uint16) bool {
		pred, err := b.Predict(model.UserID(int(u)%30+1), items[int(i)%len(items)].ID)
		if err != nil {
			return true
		}
		return pred.Score >= model.MinRating && pred.Score <= model.MaxRating &&
			pred.Confidence >= 0 && pred.Confidence <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBayesTracksGroundTruthDirection(t *testing.T) {
	// On a generated community, Bayes predictions should correlate
	// positively with true utilities for unrated items.
	c := dataset.Movies(dataset.Config{Seed: 81, Users: 40, Items: 120, RatingsPerUser: 30})
	b := NewBayes(c.Ratings, c.Catalog)
	var agree, total int
	for u := 1; u <= 20; u++ {
		uid := model.UserID(u)
		recs := b.Recommend(uid, c.Catalog.Len(), recsys.ExcludeRated(c.Ratings, uid))
		if len(recs) < 10 {
			continue
		}
		topTruth := 0.0
		botTruth := 0.0
		for _, r := range recs[:5] {
			it, _ := c.Catalog.Item(r.Item)
			topTruth += c.Truth.Utility(uid, it)
		}
		for _, r := range recs[len(recs)-5:] {
			it, _ := c.Catalog.Item(r.Item)
			botTruth += c.Truth.Utility(uid, it)
		}
		total++
		if topTruth > botTruth {
			agree++
		}
	}
	if total == 0 {
		t.Fatal("no users evaluated")
	}
	if float64(agree)/float64(total) < 0.85 {
		t.Fatalf("top-ranked items beat bottom-ranked in truth for only %d/%d users", agree, total)
	}
}

func TestRecommendExcludes(t *testing.T) {
	m, cat, u := comedyFanFixture()
	b := NewBayes(m, cat)
	recs := b.Recommend(u, 10, recsys.ExcludeRated(m, u))
	for _, r := range recs {
		if _, rated := m.Get(u, r.Item); rated {
			t.Fatalf("recommended rated item %d", r.Item)
		}
	}
	if len(recs) != 3 {
		t.Fatalf("got %d recs, want the 3 unrated items", len(recs))
	}
}

func TestNames(t *testing.T) {
	m, cat, _ := comedyFanFixture()
	if NewKeywordRecommender(m, cat).Name() != "keyword-profile" {
		t.Fatal("keyword name")
	}
	if NewBayes(m, cat).Name() != "naive-bayes" {
		t.Fatal("bayes name")
	}
}

func BenchmarkBayesPredict(b *testing.B) {
	c := dataset.Books(dataset.Config{Seed: 91, Users: 100, Items: 200, RatingsPerUser: 25})
	bayes := NewBayes(c.Ratings, c.Catalog)
	items := c.Catalog.Items()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = bayes.Predict(model.UserID(i%100+1), items[i%len(items)].ID)
	}
}

func BenchmarkBayesInfluences(b *testing.B) {
	c := dataset.Books(dataset.Config{Seed: 92, Users: 50, Items: 100, RatingsPerUser: 20})
	bayes := NewBayes(c.Ratings, c.Catalog)
	items := c.Catalog.Items()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = bayes.Influences(model.UserID(i%50+1), items[i%len(items)].ID)
	}
}

func TestInfluenceWeightEditing(t *testing.T) {
	// The survey's "imagined" Figure-3 functionality: the user turns
	// down the influence of one past rating and the recommendation's
	// influence report responds.
	m, cat, u := comedyFanFixture()
	b := NewBayes(m, cat)
	before, err := b.Influences(u, 5)
	if err != nil {
		t.Fatal(err)
	}
	pctBefore := map[model.ItemID]float64{}
	for _, in := range before {
		pctBefore[in.Item] = in.Percent
	}

	// Halve the influence of rated comedy #1.
	b.SetInfluenceWeight(u, 1, 0.5)
	if b.InfluenceWeight(u, 1) != 0.5 {
		t.Fatalf("weight = %v", b.InfluenceWeight(u, 1))
	}
	after, err := b.Influences(u, 5)
	if err != nil {
		t.Fatal(err)
	}
	pctAfter := map[model.ItemID]float64{}
	for _, in := range after {
		pctAfter[in.Item] = in.Percent
	}
	if pctAfter[1] >= pctBefore[1] {
		t.Fatalf("down-weighted rating still as influential: %.1f%% -> %.1f%%",
			pctBefore[1], pctAfter[1])
	}

	// Zero weight silences the rating entirely: the model behaves as
	// if it were removed.
	b.SetInfluenceWeight(u, 1, 0)
	zeroed, err := b.Influences(u, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range zeroed {
		if in.Item == 1 && math.Abs(in.Weight) > 1e-9 {
			t.Fatalf("zero-weight rating still has influence %v", in.Weight)
		}
	}

	// Clamping and reset.
	b.SetInfluenceWeight(u, 1, 99)
	if b.InfluenceWeight(u, 1) != 4 {
		t.Fatalf("clamp high = %v", b.InfluenceWeight(u, 1))
	}
	b.SetInfluenceWeight(u, 1, -3)
	if b.InfluenceWeight(u, 1) != 0 {
		t.Fatalf("clamp low = %v", b.InfluenceWeight(u, 1))
	}
	if b.InfluenceWeight(u, 999) != 1 {
		t.Fatal("unset weight should default to 1")
	}
}

func TestInfluenceWeightChangesPrediction(t *testing.T) {
	m, cat, u := comedyFanFixture()
	b := NewBayes(m, cat)
	before, err := b.Predict(u, 6) // horror candidate
	if err != nil {
		t.Fatal(err)
	}
	// Silencing the user's horror hatred should raise the horror
	// candidate's score.
	b.SetInfluenceWeight(u, 3, 0)
	b.SetInfluenceWeight(u, 4, 0)
	after, err := b.Predict(u, 6)
	if err != nil {
		t.Fatal(err)
	}
	if after.Score <= before.Score {
		t.Fatalf("prediction did not respond to influence edit: %.2f -> %.2f",
			before.Score, after.Score)
	}
}
