package content

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// This file implements the survey's first stated future-work
// direction: "define similarity measures which are easily understood
// by users, and investigate how these measures can be adapted to each
// user."
//
// PersonalizedSimilarity scores two items as similar *in this user's
// terms*: shared content features count in proportion to how much the
// user cares about them (their profile weight), and a shared creator
// counts like a strongly liked feature. The returned aspects are the
// explanation — each one is a word from the user's own vocabulary of
// taste, so "similar because both are football items, which you watch
// a lot" falls straight out of the score decomposition.

// SharedAspect is one reason two items are similar for a user.
type SharedAspect struct {
	// Aspect is the shared feature ("football") or "by <creator>".
	Aspect string
	// UserWeight is the user's profile affinity for the aspect; the
	// aspect contributed max(base, base+weight) to the score.
	UserWeight float64
	// Contribution is the aspect's share of the similarity score.
	Contribution float64
}

// creatorAspectWeight is the profile weight attributed to a shared
// creator — sharing an author is treated like sharing a strongly
// liked feature.
const creatorAspectWeight = 0.8

// baseAspectValue is what a shared aspect is worth before the user's
// affinity is added; even features the user is neutral about make two
// items somewhat similar.
const baseAspectValue = 0.25

// PersonalizedSimilarity returns the similarity of items a and b for
// user u, in [0, 1] (1 only for heavily overlapping items the user
// loves), with the per-aspect breakdown sorted by contribution.
// ErrColdStart is returned when u has no profile.
func (r *KeywordRecommender) PersonalizedSimilarity(u model.UserID, a, b *model.Item) (float64, []SharedAspect, error) {
	profile, err := r.ProfileFor(u)
	if err != nil {
		return 0, nil, fmt.Errorf("personalised similarity: %w", err)
	}
	var aspects []SharedAspect
	var total float64
	add := func(name string, userWeight float64) {
		v := baseAspectValue
		if userWeight > 0 {
			v += userWeight
		}
		aspects = append(aspects, SharedAspect{Aspect: name, UserWeight: userWeight, Contribution: v})
		total += v
	}
	for _, k := range a.Keywords {
		if b.HasKeyword(k) {
			add(k, profile.Weights[k])
		}
	}
	if a.Creator != "" && a.Creator == b.Creator {
		add("by "+a.Creator, creatorAspectWeight)
	}
	if len(aspects) == 0 {
		return 0, nil, nil
	}
	// Normalise: two aspects the user loves saturate the scale.
	score := total / 2.5
	if score > 1 {
		score = 1
	}
	for i := range aspects {
		aspects[i].Contribution /= total
	}
	sort.Slice(aspects, func(i, j int) bool {
		if aspects[i].Contribution != aspects[j].Contribution {
			return aspects[i].Contribution > aspects[j].Contribution
		}
		return aspects[i].Aspect < aspects[j].Aspect
	})
	return score, aspects, nil
}

// SimilarInUserTerms ranks catalogue items by personalised similarity
// to seed for user u, excluding the seed and anything the exclude
// function rejects. Items with zero similarity are dropped. Results
// are sorted by descending score with ID tie-breaks.
func (r *KeywordRecommender) SimilarInUserTerms(u model.UserID, seed *model.Item, n int, exclude func(model.ItemID) bool) ([]ScoredSimilarity, error) {
	if _, err := r.ProfileFor(u); err != nil {
		return nil, fmt.Errorf("similar in user terms: %w", err)
	}
	var out []ScoredSimilarity
	for _, it := range r.cat.Items() {
		if it.ID == seed.ID {
			continue
		}
		if exclude != nil && exclude(it.ID) {
			continue
		}
		score, aspects, err := r.PersonalizedSimilarity(u, seed, it)
		if err != nil || score <= 0 {
			continue
		}
		out = append(out, ScoredSimilarity{Item: it, Score: score, Aspects: aspects})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Item.ID < out[j].Item.ID
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out, nil
}

// ScoredSimilarity is one item ranked by personalised similarity.
type ScoredSimilarity struct {
	Item    *model.Item
	Score   float64
	Aspects []SharedAspect
}
