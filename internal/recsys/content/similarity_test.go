package content

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/recsys"
)

// similarityFixture: a football fan with a rated history, plus seed and
// candidate items.
func similarityFixture() (*KeywordRecommender, *model.Catalog, model.UserID) {
	cat := model.NewCatalog("news")
	add := func(id model.ItemID, creator string, kws ...string) {
		cat.MustAdd(&model.Item{ID: id, Title: "item", Creator: creator, Keywords: kws})
	}
	add(1, "", "sport", "football")
	add(2, "", "sport", "football")
	add(3, "", "politics", "elections")
	add(4, "", "sport", "football") // seed
	add(5, "", "sport", "football") // shares loved aspects
	add(6, "", "sport", "hockey")   // shares only sport
	add(7, "", "culture", "film")   // shares nothing
	add(8, "A. Writer", "culture", "film")
	add(9, "A. Writer", "culture", "music") // shares creator with 8
	m := model.NewMatrix()
	m.Set(1, 1, 5)
	m.Set(1, 2, 5)
	m.Set(1, 3, 1.5)
	return NewKeywordRecommender(m, cat), cat, 1
}

func item(t *testing.T, cat *model.Catalog, id model.ItemID) *model.Item {
	t.Helper()
	it, err := cat.Item(id)
	if err != nil {
		t.Fatal(err)
	}
	return it
}

func TestPersonalizedSimilarityWeightsByTaste(t *testing.T) {
	r, cat, u := similarityFixture()
	seed := item(t, cat, 4)
	loved, lovedAspects, err := r.PersonalizedSimilarity(u, seed, item(t, cat, 5))
	if err != nil {
		t.Fatal(err)
	}
	weak, _, err := r.PersonalizedSimilarity(u, seed, item(t, cat, 6))
	if err != nil {
		t.Fatal(err)
	}
	if loved <= weak {
		t.Fatalf("shared loved aspects should score higher: %.3f vs %.3f", loved, weak)
	}
	if len(lovedAspects) != 2 {
		t.Fatalf("aspects = %+v", lovedAspects)
	}
	var pct float64
	for _, a := range lovedAspects {
		pct += a.Contribution
	}
	if pct < 0.999 || pct > 1.001 {
		t.Fatalf("contributions sum to %v", pct)
	}
}

func TestPersonalizedSimilarityDisjointItems(t *testing.T) {
	r, cat, u := similarityFixture()
	score, aspects, err := r.PersonalizedSimilarity(u, item(t, cat, 4), item(t, cat, 7))
	if err != nil {
		t.Fatal(err)
	}
	if score != 0 || aspects != nil {
		t.Fatalf("disjoint items: score %v, aspects %v", score, aspects)
	}
}

func TestPersonalizedSimilarityCreatorCounts(t *testing.T) {
	r, cat, u := similarityFixture()
	score, aspects, err := r.PersonalizedSimilarity(u, item(t, cat, 8), item(t, cat, 9))
	if err != nil {
		t.Fatal(err)
	}
	if score <= 0 {
		t.Fatal("shared creator should produce similarity")
	}
	found := false
	for _, a := range aspects {
		if a.Aspect == "by A. Writer" && a.UserWeight == creatorAspectWeight {
			found = true
		}
	}
	if !found {
		t.Fatalf("creator aspect missing: %+v", aspects)
	}
}

func TestPersonalizedSimilarityColdStart(t *testing.T) {
	r, cat, _ := similarityFixture()
	if _, _, err := r.PersonalizedSimilarity(42, item(t, cat, 4), item(t, cat, 5)); !errors.Is(err, recsys.ErrColdStart) {
		t.Fatalf("err = %v", err)
	}
}

func TestPersonalizedSimilarityBoundsQuick(t *testing.T) {
	c := dataset.News(dataset.Config{Seed: 91, Users: 20, Items: 80, RatingsPerUser: 15})
	r := NewKeywordRecommender(c.Ratings, c.Catalog)
	items := c.Catalog.Items()
	f := func(a, b uint16, uRaw uint8) bool {
		u := model.UserID(int(uRaw)%20 + 1)
		ia, ib := items[int(a)%len(items)], items[int(b)%len(items)]
		score, aspects, err := r.PersonalizedSimilarity(u, ia, ib)
		if err != nil {
			return true
		}
		if score < 0 || score > 1 {
			return false
		}
		var sum float64
		for _, asp := range aspects {
			sum += asp.Contribution
		}
		return len(aspects) == 0 || (sum > 0.999 && sum < 1.001)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPersonalizedSimilaritySymmetricOnKeywords(t *testing.T) {
	// For items without creators the measure is symmetric.
	r, cat, u := similarityFixture()
	ab, _, _ := r.PersonalizedSimilarity(u, item(t, cat, 4), item(t, cat, 6))
	ba, _, _ := r.PersonalizedSimilarity(u, item(t, cat, 6), item(t, cat, 4))
	if ab != ba {
		t.Fatalf("similarity not symmetric: %v vs %v", ab, ba)
	}
}

func TestSimilarInUserTerms(t *testing.T) {
	r, cat, u := similarityFixture()
	seed := item(t, cat, 4)
	got, err := r.SimilarInUserTerms(u, seed, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no similar items")
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Score < got[i].Score {
			t.Fatal("not sorted")
		}
	}
	for _, s := range got {
		if s.Item.ID == seed.ID {
			t.Fatal("seed in its own results")
		}
		if s.Score <= 0 {
			t.Fatal("zero-similarity item included")
		}
	}
	// The football twin outranks the hockey cousin.
	if got[0].Item.ID != 1 && got[0].Item.ID != 2 && got[0].Item.ID != 5 {
		t.Fatalf("top similar = %d, want a football item", got[0].Item.ID)
	}
	// Exclusion respected.
	got2, err := r.SimilarInUserTerms(u, seed, 10, func(i model.ItemID) bool { return i == got[0].Item.ID })
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range got2 {
		if s.Item.ID == got[0].Item.ID {
			t.Fatal("excluded item returned")
		}
	}
	// Cold start.
	if _, err := r.SimilarInUserTerms(42, seed, 3, nil); !errors.Is(err, recsys.ErrColdStart) {
		t.Fatalf("err = %v", err)
	}
}
