// Package group implements group recommendation with group-aware
// explanations, after INTRIGUE (Ardissono et al., the survey's
// reference [2]): a tourist-attraction recommender that served
// heterogeneous groups — families with children, for instance — and
// explained recommendations in terms of the subgroups they suit.
//
// Three classic aggregation strategies are provided; each carries its
// own explanation shape, because *why the group gets this item*
// depends on how the group's tastes were merged:
//
//   - Average: "a good fit across the whole group";
//   - LeastMisery: "nobody will be miserable — even the least
//     enthusiastic member scores it 3.5";
//   - MostPleasure: "someone will love it".
package group

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/recsys"
)

// Strategy is a group aggregation rule.
type Strategy int

// Aggregation strategies.
const (
	// Average scores an item by the mean of members' predictions.
	Average Strategy = iota
	// LeastMisery scores by the minimum member prediction.
	LeastMisery
	// MostPleasure scores by the maximum member prediction.
	MostPleasure
)

func (s Strategy) String() string {
	switch s {
	case Average:
		return "average"
	case LeastMisery:
		return "least-misery"
	case MostPleasure:
		return "most-pleasure"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Prediction is a group-level score with its per-member breakdown —
// the evidence group explanations are made of.
type Prediction struct {
	Item  model.ItemID
	Score float64
	// PerMember holds each member's individual prediction.
	PerMember map[model.UserID]float64
	// Low and High are the members with the weakest and strongest
	// individual predictions.
	Low, High model.UserID
}

// ErrEmptyGroup is returned for groups with no members.
var ErrEmptyGroup = errors.New("group: empty group")

// Recommender aggregates an individual predictor over groups.
type Recommender struct {
	base recsys.Predictor
	cat  *model.Catalog
	// MinCoverage is the fraction of members that must be predictable
	// for a group prediction to stand (default 1: everyone).
	MinCoverage float64
}

// New builds a group recommender over an individual predictor.
func New(base recsys.Predictor, cat *model.Catalog) *Recommender {
	return &Recommender{base: base, cat: cat, MinCoverage: 1}
}

// Predict scores one item for the group under the strategy.
func (r *Recommender) Predict(members []model.UserID, item model.ItemID, strategy Strategy) (Prediction, error) {
	if len(members) == 0 {
		return Prediction{}, ErrEmptyGroup
	}
	switch strategy {
	case Average, LeastMisery, MostPleasure:
	default:
		return Prediction{}, fmt.Errorf("group: unknown strategy %d", int(strategy))
	}
	p := Prediction{Item: item, PerMember: map[model.UserID]float64{}}
	for _, u := range members {
		pred, err := r.base.Predict(u, item)
		if err != nil {
			continue
		}
		p.PerMember[u] = pred.Score
	}
	covered := float64(len(p.PerMember)) / float64(len(members))
	if len(p.PerMember) == 0 || covered < r.MinCoverage {
		return Prediction{}, fmt.Errorf("item %d predictable for %.0f%% of the group: %w",
			item, covered*100, recsys.ErrColdStart)
	}
	// Deterministic member order for low/high ties.
	ordered := append([]model.UserID(nil), members...)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a] < ordered[b] })
	first := true
	var sum float64
	for _, u := range ordered {
		v, ok := p.PerMember[u]
		if !ok {
			continue
		}
		sum += v
		if first {
			p.Low, p.High = u, u
			first = false
			continue
		}
		if v < p.PerMember[p.Low] {
			p.Low = u
		}
		if v > p.PerMember[p.High] {
			p.High = u
		}
	}
	switch strategy {
	case Average:
		p.Score = sum / float64(len(p.PerMember))
	case LeastMisery:
		p.Score = p.PerMember[p.Low]
	case MostPleasure:
		p.Score = p.PerMember[p.High]
	}
	return p, nil
}

// Recommend ranks the catalogue for the group, excluding items for
// which exclude returns true, and returns up to n predictions.
func (r *Recommender) Recommend(members []model.UserID, strategy Strategy, n int, exclude func(model.ItemID) bool) ([]Prediction, error) {
	if len(members) == 0 {
		return nil, ErrEmptyGroup
	}
	var out []Prediction
	for _, it := range r.cat.Items() {
		if exclude != nil && exclude(it.ID) {
			continue
		}
		p, err := r.Predict(members, it.ID, strategy)
		if err != nil {
			continue
		}
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Item < out[b].Item
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out, nil
}

// Explain renders the group explanation for a prediction under the
// strategy that produced it. names maps member IDs to display names;
// absent members are named "member N".
func Explain(p Prediction, strategy Strategy, names map[model.UserID]string) string {
	name := func(u model.UserID) string {
		if n, ok := names[u]; ok {
			return n
		}
		return fmt.Sprintf("member %d", u)
	}
	switch strategy {
	case LeastMisery:
		return fmt.Sprintf(
			"Chosen so nobody is miserable: even the least enthusiastic of you (%s) is predicted to rate it %.1f stars.",
			name(p.Low), p.PerMember[p.Low])
	case MostPleasure:
		return fmt.Sprintf(
			"Chosen because someone will love it: %s is predicted to rate it %.1f stars.",
			name(p.High), p.PerMember[p.High])
	default:
		return fmt.Sprintf(
			"A good fit across the whole group: average predicted rating %.1f stars (from %s's %.1f up to %s's %.1f).",
			p.Score, name(p.Low), p.PerMember[p.Low], name(p.High), p.PerMember[p.High])
	}
}
