package group

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/recsys"
	"repro/internal/recsys/cf"
)

// tablePredictor serves fixed scores for hand-checkable aggregation.
type tablePredictor map[model.UserID]map[model.ItemID]float64

func (t tablePredictor) Predict(u model.UserID, i model.ItemID) (recsys.Prediction, error) {
	if v, ok := t[u][i]; ok {
		return recsys.Prediction{Item: i, Score: v, Confidence: 1}, nil
	}
	return recsys.Prediction{}, recsys.ErrColdStart
}

func fixture() (*Recommender, []model.UserID) {
	cat := model.NewCatalog("movies")
	cat.MustAdd(&model.Item{ID: 1, Title: "Family film"})
	cat.MustAdd(&model.Item{ID: 2, Title: "Divisive film"})
	cat.MustAdd(&model.Item{ID: 3, Title: "Partial film"})
	base := tablePredictor{
		1: {1: 4.0, 2: 5.0},
		2: {1: 4.0, 2: 1.0},
		3: {1: 3.5, 2: 4.5, 3: 4.0},
	}
	return New(base, cat), []model.UserID{1, 2, 3}
}

func TestStrategies(t *testing.T) {
	r, members := fixture()
	avg, err := r.Predict(members, 1, Average)
	if err != nil {
		t.Fatal(err)
	}
	if avg.Score != (4.0+4.0+3.5)/3 {
		t.Fatalf("average = %v", avg.Score)
	}
	lm, err := r.Predict(members, 2, LeastMisery)
	if err != nil {
		t.Fatal(err)
	}
	if lm.Score != 1.0 || lm.Low != 2 {
		t.Fatalf("least misery = %+v", lm)
	}
	mp, err := r.Predict(members, 2, MostPleasure)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Score != 5.0 || mp.High != 1 {
		t.Fatalf("most pleasure = %+v", mp)
	}
}

func TestCoverageGate(t *testing.T) {
	r, members := fixture()
	// Item 3 is predictable only for user 3.
	if _, err := r.Predict(members, 3, Average); !errors.Is(err, recsys.ErrColdStart) {
		t.Fatalf("partial coverage err = %v", err)
	}
	r.MinCoverage = 0.3
	p, err := r.Predict(members, 3, Average)
	if err != nil {
		t.Fatal(err)
	}
	if p.Score != 4.0 {
		t.Fatalf("relaxed coverage score = %v", p.Score)
	}
}

func TestEmptyGroup(t *testing.T) {
	r, _ := fixture()
	if _, err := r.Predict(nil, 1, Average); !errors.Is(err, ErrEmptyGroup) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.Recommend(nil, Average, 3, nil); !errors.Is(err, ErrEmptyGroup) {
		t.Fatalf("err = %v", err)
	}
}

func TestLeastMiseryAvoidsDivisiveItems(t *testing.T) {
	r, members := fixture()
	recs, err := r.Recommend(members[:2], LeastMisery, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Item 1 (4.0/4.0) must beat item 2 (5.0/1.0) under least misery.
	if recs[0].Item != 1 {
		t.Fatalf("least misery picked the divisive film: %+v", recs)
	}
	// Under most pleasure the order flips.
	recs, err = r.Recommend(members[:2], MostPleasure, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Item != 2 {
		t.Fatalf("most pleasure should pick the divisive film: %+v", recs)
	}
}

func TestExplainShapes(t *testing.T) {
	r, members := fixture()
	names := map[model.UserID]string{1: "Ada", 2: "Ben"}
	lm, _ := r.Predict(members[:2], 2, LeastMisery)
	got := Explain(lm, LeastMisery, names)
	if !strings.Contains(got, "nobody is miserable") || !strings.Contains(got, "Ben") ||
		!strings.Contains(got, "1.0 stars") {
		t.Fatalf("least-misery explanation = %q", got)
	}
	mp, _ := r.Predict(members[:2], 2, MostPleasure)
	got = Explain(mp, MostPleasure, names)
	if !strings.Contains(got, "someone will love it") || !strings.Contains(got, "Ada") {
		t.Fatalf("most-pleasure explanation = %q", got)
	}
	avg, _ := r.Predict(members[:2], 1, Average)
	got = Explain(avg, Average, nil)
	if !strings.Contains(got, "whole group") || !strings.Contains(got, "member 1") {
		t.Fatalf("average explanation = %q", got)
	}
}

func TestGroupOverRealCommunity(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 121, Users: 60, Items: 80, RatingsPerUser: 20})
	knn := cf.NewUserKNN(c.Ratings, c.Catalog, cf.Options{K: 15})
	r := New(knn, c.Catalog)
	r.MinCoverage = 1
	members := []model.UserID{1, 2, 3}
	exclude := func(i model.ItemID) bool {
		for _, u := range members {
			if _, rated := c.Ratings.Get(u, i); rated {
				return true
			}
		}
		return false
	}
	recs, err := r.Recommend(members, LeastMisery, 5, exclude)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no group recommendations")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Score < recs[i].Score {
			t.Fatal("not sorted")
		}
	}
	// Least-misery invariant: the group score is the min member score.
	for _, p := range recs {
		min := 99.0
		for _, v := range p.PerMember {
			if v < min {
				min = v
			}
		}
		if p.Score != min {
			t.Fatalf("least-misery score %v != min member %v", p.Score, min)
		}
	}
	// And no member rated the recommended items.
	for _, p := range recs {
		if exclude(p.Item) {
			t.Fatal("excluded item recommended")
		}
	}
}

func TestStrategyStrings(t *testing.T) {
	if Average.String() != "average" || LeastMisery.String() != "least-misery" ||
		MostPleasure.String() != "most-pleasure" {
		t.Fatal("strategy strings")
	}
	if Strategy(9).String() == "" {
		t.Fatal("unknown strategy should stringify")
	}
	r, members := fixture()
	if _, err := r.Predict(members, 1, Strategy(9)); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}
