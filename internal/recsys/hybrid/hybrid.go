// Package hybrid combines multiple recommenders into a weighted
// ensemble that keeps provenance: every prediction can report which
// source algorithms contributed and how much.
//
// Provenance matters for explanation quality. The survey's conclusion
// distinguishes explanation styles by content ("because you liked Y"
// vs "people like you liked Y"); a hybrid that forgets its sources can
// only produce the vague "your interests suggest X". Keeping the
// decomposition lets the explanation engine pick the style matching
// the dominant evidence.
package hybrid

import (
	"errors"
	"fmt"

	"repro/internal/model"
	"repro/internal/recsys"
)

// Source is one weighted member of the ensemble.
type Source struct {
	Name      string
	Weight    float64
	Predictor recsys.Predictor
}

// Contribution reports one source's share of a hybrid prediction.
type Contribution struct {
	Name   string
	Score  float64 // the source's own predicted rating
	Weight float64 // configured weight
	Share  float64 // normalised share of the final score, in [0, 1]
}

// Hybrid is a weighted-average ensemble over a shared catalogue. It is
// immutable after construction and therefore safe for any number of
// concurrent readers, provided each Source predictor is itself
// concurrency-safe (everything in recsys/cf and recsys/content is).
// Snapshot engines rebuild the Hybrid — a cheap struct — around
// rebound predictors on every write rather than mutating it.
type Hybrid struct {
	cat     *model.Catalog
	sources []Source
}

// New builds a hybrid over cat from the given sources. It panics when
// no source is supplied or any weight is non-positive — both are
// programming errors, not runtime conditions.
func New(cat *model.Catalog, sources ...Source) *Hybrid {
	if len(sources) == 0 {
		panic("hybrid: no sources")
	}
	for _, s := range sources {
		if s.Weight <= 0 {
			panic(fmt.Sprintf("hybrid: source %q has non-positive weight", s.Name))
		}
	}
	return &Hybrid{cat: cat, sources: sources}
}

// Name implements recsys.Named.
func (h *Hybrid) Name() string { return "hybrid" }

// Sources returns the configured sources.
func (h *Hybrid) Sources() []Source { return h.sources }

// Predict implements recsys.Predictor: the weight-normalised average
// of every source that can produce a prediction. Sources returning
// errors are skipped; if all fail, the last error is wrapped.
func (h *Hybrid) Predict(u model.UserID, i model.ItemID) (recsys.Prediction, error) {
	pred, _, err := h.predictWithProvenance(u, i)
	return pred, err
}

// Provenance returns the hybrid prediction together with each
// contributing source's share.
func (h *Hybrid) Provenance(u model.UserID, i model.ItemID) (recsys.Prediction, []Contribution, error) {
	return h.predictWithProvenance(u, i)
}

func (h *Hybrid) predictWithProvenance(u model.UserID, i model.ItemID) (recsys.Prediction, []Contribution, error) {
	var contribs []Contribution
	var wsum, score, conf float64
	var lastErr error
	for _, s := range h.sources {
		p, err := s.Predictor.Predict(u, i)
		if err != nil {
			lastErr = err
			continue
		}
		contribs = append(contribs, Contribution{Name: s.Name, Score: p.Score, Weight: s.Weight})
		wsum += s.Weight
		score += s.Weight * p.Score
		conf += s.Weight * p.Confidence
	}
	if wsum == 0 {
		if lastErr == nil {
			lastErr = recsys.ErrColdStart
		}
		return recsys.Prediction{}, nil, fmt.Errorf("hybrid: all sources failed: %w", lastErr)
	}
	for idx := range contribs {
		contribs[idx].Share = contribs[idx].Weight / wsum
	}
	// Answering with only a fraction of the ensemble is weaker
	// evidence; scale confidence by the answered weight share.
	var totalWeight float64
	for _, s := range h.sources {
		totalWeight += s.Weight
	}
	pred := recsys.Prediction{
		Item:       i,
		Score:      model.ClampRating(score / wsum),
		Confidence: (conf / wsum) * (wsum / totalWeight),
	}
	return pred, contribs, nil
}

// Recommend implements recsys.Recommender.
func (h *Hybrid) Recommend(u model.UserID, n int, exclude func(model.ItemID) bool) []recsys.Prediction {
	return recsys.TopN(recsys.RankAll(h, h.cat, u, exclude), n)
}

// Dominant returns the contribution with the largest share, which the
// explanation engine uses to choose an explanation style. It returns
// an error when provenance is empty.
func Dominant(contribs []Contribution) (Contribution, error) {
	if len(contribs) == 0 {
		return Contribution{}, errors.New("hybrid: no contributions")
	}
	best := contribs[0]
	for _, c := range contribs[1:] {
		if c.Share > best.Share {
			best = c
		}
	}
	return best, nil
}
