package hybrid

import (
	"errors"
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/recsys"
)

// stubPredictor returns a fixed prediction or error.
type stubPredictor struct {
	score, conf float64
	err         error
}

func (s stubPredictor) Predict(model.UserID, model.ItemID) (recsys.Prediction, error) {
	if s.err != nil {
		return recsys.Prediction{}, s.err
	}
	return recsys.Prediction{Score: s.score, Confidence: s.conf}, nil
}

func smallCatalog(n int) *model.Catalog {
	cat := model.NewCatalog("t")
	for i := 1; i <= n; i++ {
		cat.MustAdd(&model.Item{ID: model.ItemID(i)})
	}
	return cat
}

func TestWeightedAverage(t *testing.T) {
	h := New(smallCatalog(1),
		Source{Name: "a", Weight: 3, Predictor: stubPredictor{score: 4, conf: 1}},
		Source{Name: "b", Weight: 1, Predictor: stubPredictor{score: 2, conf: 0.5}},
	)
	p, err := h.Predict(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := (3.0*4 + 1.0*2) / 4
	if math.Abs(p.Score-want) > 1e-12 {
		t.Fatalf("score = %v, want %v", p.Score, want)
	}
	wantConf := (3.0*1 + 1.0*0.5) / 4
	if math.Abs(p.Confidence-wantConf) > 1e-12 {
		t.Fatalf("confidence = %v, want %v", p.Confidence, wantConf)
	}
}

func TestFailedSourceSkippedAndConfidencePenalised(t *testing.T) {
	h := New(smallCatalog(1),
		Source{Name: "a", Weight: 1, Predictor: stubPredictor{score: 4, conf: 1}},
		Source{Name: "b", Weight: 1, Predictor: stubPredictor{err: recsys.ErrColdStart}},
	)
	p, err := h.Predict(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Score != 4 {
		t.Fatalf("score = %v", p.Score)
	}
	if math.Abs(p.Confidence-0.5) > 1e-12 {
		t.Fatalf("confidence = %v, want halved to 0.5", p.Confidence)
	}
}

func TestAllSourcesFail(t *testing.T) {
	h := New(smallCatalog(1),
		Source{Name: "a", Weight: 1, Predictor: stubPredictor{err: recsys.ErrColdStart}},
	)
	_, err := h.Predict(1, 1)
	if !errors.Is(err, recsys.ErrColdStart) {
		t.Fatalf("err = %v", err)
	}
}

func TestProvenanceShares(t *testing.T) {
	h := New(smallCatalog(1),
		Source{Name: "cf", Weight: 2, Predictor: stubPredictor{score: 5, conf: 1}},
		Source{Name: "content", Weight: 2, Predictor: stubPredictor{score: 3, conf: 1}},
	)
	_, contribs, err := h.Provenance(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(contribs) != 2 {
		t.Fatalf("contribs = %+v", contribs)
	}
	var shares float64
	for _, c := range contribs {
		if c.Share != 0.5 {
			t.Fatalf("share = %v, want 0.5", c.Share)
		}
		shares += c.Share
	}
	if shares != 1 {
		t.Fatalf("shares sum to %v", shares)
	}
}

func TestDominant(t *testing.T) {
	contribs := []Contribution{
		{Name: "a", Share: 0.2},
		{Name: "b", Share: 0.5},
		{Name: "c", Share: 0.3},
	}
	d, err := Dominant(contribs)
	if err != nil || d.Name != "b" {
		t.Fatalf("Dominant = %+v, %v", d, err)
	}
	if _, err := Dominant(nil); err == nil {
		t.Fatal("Dominant(nil) should error")
	}
}

func TestScoreClamped(t *testing.T) {
	h := New(smallCatalog(1),
		Source{Name: "a", Weight: 1, Predictor: stubPredictor{score: 99, conf: 1}},
	)
	p, err := h.Predict(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Score != model.MaxRating {
		t.Fatalf("score = %v, want clamped", p.Score)
	}
}

func TestRecommendRanks(t *testing.T) {
	// Predictor that scores item i as float64(i).
	f := predictFunc(func(u model.UserID, i model.ItemID) (recsys.Prediction, error) {
		return recsys.Prediction{Item: i, Score: float64(i), Confidence: 1}, nil
	})
	h := New(smallCatalog(4), Source{Name: "f", Weight: 1, Predictor: f})
	recs := h.Recommend(1, 2, nil)
	if len(recs) != 2 || recs[0].Item != 4 || recs[1].Item != 3 {
		t.Fatalf("recs = %+v", recs)
	}
}

type predictFunc func(model.UserID, model.ItemID) (recsys.Prediction, error)

func (f predictFunc) Predict(u model.UserID, i model.ItemID) (recsys.Prediction, error) {
	return f(u, i)
}

func TestConstructorPanics(t *testing.T) {
	cat := smallCatalog(1)
	for name, f := range map[string]func(){
		"no sources":  func() { New(cat) },
		"zero weight": func() { New(cat, Source{Name: "a", Weight: 0, Predictor: stubPredictor{}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNameAndSources(t *testing.T) {
	h := New(smallCatalog(1), Source{Name: "a", Weight: 1, Predictor: stubPredictor{score: 3}})
	if h.Name() != "hybrid" {
		t.Fatal("name")
	}
	if len(h.Sources()) != 1 || h.Sources()[0].Name != "a" {
		t.Fatal("sources")
	}
}
