// Package knowledge implements preference- (knowledge-) based
// recommendation: items are scored against explicitly stated user
// requirements with an additive multi-attribute utility (MAUT) value
// function, optionally filtered by hard constraints.
//
// This is the recommendation style behind most "preference-based"
// explanation rows in the survey's Tables 3 and 4 (Qwikshop, Top Case,
// Adaptive Place Advisor, the Organizational Structure interface): the
// system knows *why* it ranks an item highly — per-attribute utility
// contributions — so explanations and trade-off comparisons ("cheaper
// but lower resolution") fall out of the score decomposition.
package knowledge

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	Eq Op = iota // categorical or numeric equality
	Ne           // categorical inequality
	Le           // numeric <=
	Ge           // numeric >=
)

func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Le:
		return "<="
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Constraint is a hard requirement over one attribute ("cuisine =
// thai", "price <= 400"). Items failing any constraint are filtered
// out before scoring — the Section 5.1 "user specifies their
// requirements" interaction.
type Constraint struct {
	Attr string
	Op   Op
	Str  string  // comparison value for categorical attributes
	Num  float64 // comparison value for numeric attributes
}

// String renders the constraint for dialog transcripts.
func (c Constraint) String() string {
	if c.Str != "" {
		return fmt.Sprintf("%s %s %s", c.Attr, c.Op, c.Str)
	}
	return fmt.Sprintf("%s %s %.4g", c.Attr, c.Op, c.Num)
}

// Matches reports whether an item satisfies the constraint. Items
// lacking the attribute fail it.
func (c Constraint) Matches(it *model.Item) bool {
	if s, ok := it.Categorical[c.Attr]; ok {
		switch c.Op {
		case Eq:
			return s == c.Str
		case Ne:
			return s != c.Str
		default:
			return false
		}
	}
	v, ok := it.Numeric[c.Attr]
	if !ok {
		return false
	}
	switch c.Op {
	case Eq:
		return v == c.Num
	case Ne:
		return v != c.Num
	case Le:
		return v <= c.Num
	case Ge:
		return v >= c.Num
	default:
		return false
	}
}

// Preferences is a MAUT value model over catalogue attributes.
type Preferences struct {
	// NumericIdeal is the preferred value per numeric attribute;
	// utility decays linearly with normalised distance from it.
	NumericIdeal map[string]float64
	// NumericWeight is the relative importance of each numeric
	// attribute (default 1 when listed in NumericIdeal but absent here).
	NumericWeight map[string]float64
	// CategoricalPrefer maps categorical attributes to their preferred
	// value; matching scores 1, otherwise 0.
	CategoricalPrefer map[string]string
	// CategoricalWeight is the importance of each categorical
	// preference (default 1).
	CategoricalWeight map[string]float64
}

// Clone deep-copies the preferences so dialogs can evolve them without
// aliasing the caller's model.
func (p *Preferences) Clone() *Preferences {
	cp := &Preferences{
		NumericIdeal:      map[string]float64{},
		NumericWeight:     map[string]float64{},
		CategoricalPrefer: map[string]string{},
		CategoricalWeight: map[string]float64{},
	}
	for k, v := range p.NumericIdeal {
		cp.NumericIdeal[k] = v
	}
	for k, v := range p.NumericWeight {
		cp.NumericWeight[k] = v
	}
	for k, v := range p.CategoricalPrefer {
		cp.CategoricalPrefer[k] = v
	}
	for k, v := range p.CategoricalWeight {
		cp.CategoricalWeight[k] = v
	}
	return cp
}

// AttrScore is one attribute's contribution to an item's utility.
type AttrScore struct {
	Attr   string
	Score  float64 // per-attribute satisfaction in [0, 1]
	Weight float64 // importance weight
}

// ScoredItem is an item with its utility and per-attribute breakdown.
type ScoredItem struct {
	Item      *model.Item
	Utility   float64 // weighted mean of attribute scores, in [0, 1]
	Breakdown []AttrScore
}

// ErrNoPreferences is returned when scoring with an empty value model.
var ErrNoPreferences = errors.New("knowledge: empty preference model")

// Recommender scores catalogue items against Preferences.
type Recommender struct {
	cat *model.Catalog
}

// New builds a knowledge-based recommender over cat.
func New(cat *model.Catalog) *Recommender {
	return &Recommender{cat: cat}
}

// Name identifies the algorithm for provenance.
func (r *Recommender) Name() string { return "maut" }

// Catalog exposes the catalogue (presenters need attribute schemas).
func (r *Recommender) Catalog() *model.Catalog { return r.cat }

// Filter returns the items satisfying every constraint, in catalogue
// order.
func (r *Recommender) Filter(constraints []Constraint) []*model.Item {
	var out []*model.Item
	for _, it := range r.cat.Items() {
		ok := true
		for _, c := range constraints {
			if !c.Matches(it) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, it)
		}
	}
	return out
}

// Utility scores one item under prefs, returning the weighted utility
// in [0,1] and the per-attribute breakdown (sorted by attribute name
// for determinism).
func (r *Recommender) Utility(prefs *Preferences, it *model.Item) (float64, []AttrScore, error) {
	if len(prefs.NumericIdeal)+len(prefs.CategoricalPrefer) == 0 {
		return 0, nil, ErrNoPreferences
	}
	var breakdown []AttrScore
	var wsum, usum float64
	// Iterate in sorted attribute order so the weighted sums are
	// bit-identical across runs.
	for _, attr := range sortedKeys(prefs.NumericIdeal) {
		ideal := prefs.NumericIdeal[attr]
		v, ok := it.Numeric[attr]
		if !ok {
			continue
		}
		lo, hi, ok := r.cat.NumericRange(attr)
		span := hi - lo
		if !ok || span <= 0 {
			span = 1
		}
		score := 1 - math.Abs(v-ideal)/span
		if score < 0 {
			score = 0
		}
		w := prefs.NumericWeight[attr]
		if w == 0 {
			w = 1
		}
		breakdown = append(breakdown, AttrScore{Attr: attr, Score: score, Weight: w})
		wsum += w
		usum += w * score
	}
	for _, attr := range sortedStrKeys(prefs.CategoricalPrefer) {
		want := prefs.CategoricalPrefer[attr]
		v, ok := it.Categorical[attr]
		if !ok {
			continue
		}
		score := 0.0
		if v == want {
			score = 1
		}
		w := prefs.CategoricalWeight[attr]
		if w == 0 {
			w = 1
		}
		breakdown = append(breakdown, AttrScore{Attr: attr, Score: score, Weight: w})
		wsum += w
		usum += w * score
	}
	if wsum == 0 {
		return 0, nil, fmt.Errorf("item %d shares no attributes with the preference model: %w", it.ID, ErrNoPreferences)
	}
	sort.Slice(breakdown, func(a, b int) bool { return breakdown[a].Attr < breakdown[b].Attr })
	return usum / wsum, breakdown, nil
}

// Recommend filters by constraints, scores the survivors under prefs
// and returns up to n results sorted by descending utility (ties by
// item ID).
func (r *Recommender) Recommend(prefs *Preferences, constraints []Constraint, n int) ([]ScoredItem, error) {
	candidates := r.Filter(constraints)
	out := make([]ScoredItem, 0, len(candidates))
	for _, it := range candidates {
		u, breakdown, err := r.Utility(prefs, it)
		if err != nil {
			if errors.Is(err, ErrNoPreferences) && len(prefs.NumericIdeal)+len(prefs.CategoricalPrefer) == 0 {
				return nil, err
			}
			continue
		}
		out = append(out, ScoredItem{Item: it, Utility: u, Breakdown: breakdown})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Utility != out[b].Utility {
			return out[a].Utility > out[b].Utility
		}
		return out[a].Item.ID < out[b].Item.ID
	})
	if n >= 0 && n < len(out) {
		out = out[:n]
	}
	return out, nil
}

// sortedKeys returns map keys ascending, for order-stable accumulation.
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedStrKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Direction classifies how an alternative compares to a reference item
// on one attribute.
type Direction int

// Trade-off directions.
const (
	Better Direction = iota
	Worse
	Same
	Different // categorical difference with no better/worse ordering
)

func (d Direction) String() string {
	switch d {
	case Better:
		return "better"
	case Worse:
		return "worse"
	case Same:
		return "same"
	case Different:
		return "different"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Tradeoff describes one attribute difference between an alternative
// and a reference item. The Phrase is the user-facing fragment used by
// McCarthy-style compound critique labels ("Cheaper", "Less Memory").
type Tradeoff struct {
	Attr      string
	Direction Direction
	Delta     float64 // alternative minus reference (numeric only)
	Phrase    string
}

// Compare returns the attribute-by-attribute trade-offs of alt against
// ref, in catalogue schema order. Numeric deltas below 2% of the
// attribute range count as Same.
func Compare(cat *model.Catalog, ref, alt *model.Item) []Tradeoff {
	var out []Tradeoff
	for _, def := range cat.Attrs {
		switch def.Kind {
		case model.Numeric:
			rv, okR := ref.Numeric[def.Name]
			av, okA := alt.Numeric[def.Name]
			if !okR || !okA {
				continue
			}
			lo, hi, ok := cat.NumericRange(def.Name)
			span := hi - lo
			if !ok || span <= 0 {
				span = 1
			}
			delta := av - rv
			if math.Abs(delta)/span < 0.02 {
				out = append(out, Tradeoff{Attr: def.Name, Direction: Same, Delta: delta, Phrase: "similar " + def.Name})
				continue
			}
			dir := Better
			if (delta > 0) == def.LessIsBetter {
				dir = Worse
			}
			out = append(out, Tradeoff{
				Attr:      def.Name,
				Direction: dir,
				Delta:     delta,
				Phrase:    phraseFor(def, delta),
			})
		case model.Categorical:
			rv, okR := ref.Categorical[def.Name]
			av, okA := alt.Categorical[def.Name]
			if !okR || !okA {
				continue
			}
			if rv == av {
				out = append(out, Tradeoff{Attr: def.Name, Direction: Same, Phrase: "same " + def.Name})
			} else {
				out = append(out, Tradeoff{Attr: def.Name, Direction: Different, Phrase: "different " + def.Name + " (" + av + ")"})
			}
		}
	}
	return out
}

// phraseFor builds the natural fragment for a numeric difference,
// using domain vocabulary for the attributes the paper quotes.
func phraseFor(def model.AttrDef, delta float64) string {
	increased := delta > 0
	switch def.Name {
	case "price":
		if increased {
			return "More Expensive"
		}
		return "Cheaper"
	case "memory":
		if increased {
			return "More Memory"
		}
		return "Less Memory"
	case "resolution":
		if increased {
			return "Higher Resolution"
		}
		return "Lower Resolution"
	case "weight":
		if increased {
			return "Heavier"
		}
		return "Lighter"
	case "zoom":
		if increased {
			return "More Zoom"
		}
		return "Less Zoom"
	case "distance":
		if increased {
			return "Farther Away"
		}
		return "Closer"
	}
	if increased {
		return "More " + def.Name
	}
	return "Less " + def.Name
}
