package knowledge

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/model"
)

func cameraFixture() *model.Catalog {
	cat := model.NewCatalog("cameras",
		model.AttrDef{Name: "price", Kind: model.Numeric, LessIsBetter: true, Unit: "$"},
		model.AttrDef{Name: "resolution", Kind: model.Numeric, Unit: "MP"},
		model.AttrDef{Name: "memory", Kind: model.Numeric, Unit: "GB"},
		model.AttrDef{Name: "brand", Kind: model.Categorical},
	)
	add := func(id model.ItemID, price, res, mem float64, brand string) {
		cat.MustAdd(&model.Item{
			ID:          id,
			Title:       brand,
			Numeric:     map[string]float64{"price": price, "resolution": res, "memory": mem},
			Categorical: map[string]string{"brand": brand},
		})
	}
	add(1, 100, 8, 4, "Axiom")   // cheap, low spec
	add(2, 300, 16, 16, "Lumo")  // mid
	add(3, 900, 30, 64, "Axiom") // expensive, high spec
	return cat
}

func TestConstraintMatches(t *testing.T) {
	cat := cameraFixture()
	it, _ := cat.Item(2)
	cases := []struct {
		c    Constraint
		want bool
	}{
		{Constraint{Attr: "price", Op: Le, Num: 400}, true},
		{Constraint{Attr: "price", Op: Le, Num: 200}, false},
		{Constraint{Attr: "price", Op: Ge, Num: 200}, true},
		{Constraint{Attr: "price", Op: Eq, Num: 300}, true},
		{Constraint{Attr: "price", Op: Ne, Num: 300}, false},
		{Constraint{Attr: "brand", Op: Eq, Str: "Lumo"}, true},
		{Constraint{Attr: "brand", Op: Ne, Str: "Axiom"}, true},
		{Constraint{Attr: "brand", Op: Eq, Str: "Axiom"}, false},
		{Constraint{Attr: "missing", Op: Eq, Str: "x"}, false},
		{Constraint{Attr: "brand", Op: Le, Str: "Lumo"}, false}, // Le on categorical
	}
	for _, c := range cases {
		if got := c.c.Matches(it); got != c.want {
			t.Fatalf("constraint %v on item 2 = %v, want %v", c.c, got, c.want)
		}
	}
}

func TestConstraintString(t *testing.T) {
	c := Constraint{Attr: "price", Op: Le, Num: 400}
	if c.String() != "price <= 400" {
		t.Fatalf("String = %q", c.String())
	}
	c2 := Constraint{Attr: "brand", Op: Eq, Str: "Lumo"}
	if c2.String() != "brand = Lumo" {
		t.Fatalf("String = %q", c2.String())
	}
}

func TestFilter(t *testing.T) {
	r := New(cameraFixture())
	got := r.Filter([]Constraint{{Attr: "price", Op: Le, Num: 400}})
	if len(got) != 2 {
		t.Fatalf("filtered %d items, want 2", len(got))
	}
	got = r.Filter([]Constraint{
		{Attr: "price", Op: Le, Num: 400},
		{Attr: "brand", Op: Eq, Str: "Axiom"},
	})
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("conjunction filter = %v", got)
	}
	if got := r.Filter(nil); len(got) != 3 {
		t.Fatalf("nil constraints should pass everything, got %d", len(got))
	}
}

func TestUtilityPrefersIdealPoint(t *testing.T) {
	r := New(cameraFixture())
	prefs := &Preferences{
		NumericIdeal:  map[string]float64{"price": 100, "resolution": 8},
		NumericWeight: map[string]float64{"price": 2, "resolution": 1},
	}
	u1, breakdown, err := r.Utility(prefs, mustItem(t, r, 1))
	if err != nil {
		t.Fatal(err)
	}
	u3, _, err := r.Utility(prefs, mustItem(t, r, 3))
	if err != nil {
		t.Fatal(err)
	}
	if u1 <= u3 {
		t.Fatalf("cheap camera %v should beat expensive %v for a budget shopper", u1, u3)
	}
	if len(breakdown) != 2 {
		t.Fatalf("breakdown = %+v", breakdown)
	}
	// Breakdown sorted by attribute name.
	if breakdown[0].Attr != "price" || breakdown[1].Attr != "resolution" {
		t.Fatalf("breakdown order = %+v", breakdown)
	}
	// Item 1 matches the ideal exactly on both attributes.
	if breakdown[0].Score != 1 || breakdown[1].Score != 1 {
		t.Fatalf("perfect match should score 1: %+v", breakdown)
	}
}

func TestUtilityCategorical(t *testing.T) {
	r := New(cameraFixture())
	prefs := &Preferences{
		CategoricalPrefer: map[string]string{"brand": "Axiom"},
	}
	u1, _, _ := r.Utility(prefs, mustItem(t, r, 1))
	u2, _, _ := r.Utility(prefs, mustItem(t, r, 2))
	if u1 != 1 || u2 != 0 {
		t.Fatalf("brand utility = %v, %v", u1, u2)
	}
}

func TestUtilityErrors(t *testing.T) {
	r := New(cameraFixture())
	if _, _, err := r.Utility(&Preferences{}, mustItem(t, r, 1)); !errors.Is(err, ErrNoPreferences) {
		t.Fatalf("empty prefs error = %v", err)
	}
	prefs := &Preferences{NumericIdeal: map[string]float64{"nonexistent": 1}}
	if _, _, err := r.Utility(prefs, mustItem(t, r, 1)); !errors.Is(err, ErrNoPreferences) {
		t.Fatalf("unshared attrs error = %v", err)
	}
}

func TestUtilityBoundsQuick(t *testing.T) {
	c := dataset.Cameras(dataset.Config{Seed: 3, Users: 5, Items: 80, RatingsPerUser: 3})
	r := New(c.Catalog)
	items := c.Catalog.Items()
	lo, hi, _ := c.Catalog.NumericRange(dataset.CamPrice)
	f := func(i uint16, idealFrac float64) bool {
		if idealFrac < 0 {
			idealFrac = -idealFrac
		}
		idealFrac -= float64(int(idealFrac)) // frac part in [0,1)
		prefs := &Preferences{
			NumericIdeal: map[string]float64{dataset.CamPrice: lo + (hi-lo)*idealFrac},
		}
		u, _, err := r.Utility(prefs, items[int(i)%len(items)])
		if err != nil {
			return false
		}
		return u >= 0 && u <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecommendRanksAndTruncates(t *testing.T) {
	r := New(cameraFixture())
	prefs := &Preferences{NumericIdeal: map[string]float64{"price": 100}}
	recs, err := r.Recommend(prefs, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d recs", len(recs))
	}
	if recs[0].Item.ID != 1 {
		t.Fatalf("best item = %d, want the cheapest", recs[0].Item.ID)
	}
	if recs[0].Utility < recs[1].Utility {
		t.Fatal("not sorted")
	}
	// n = -1 means all.
	all, _ := r.Recommend(prefs, nil, -1)
	if len(all) != 3 {
		t.Fatalf("all = %d", len(all))
	}
}

func TestRecommendEmptyPrefsError(t *testing.T) {
	r := New(cameraFixture())
	if _, err := r.Recommend(&Preferences{}, nil, 3); !errors.Is(err, ErrNoPreferences) {
		t.Fatalf("err = %v", err)
	}
}

func TestRecommendWithConstraints(t *testing.T) {
	r := New(cameraFixture())
	prefs := &Preferences{NumericIdeal: map[string]float64{"resolution": 30}}
	recs, err := r.Recommend(prefs, []Constraint{{Attr: "price", Op: Le, Num: 400}}, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range recs {
		if s.Item.Numeric["price"] > 400 {
			t.Fatalf("constraint violated: %+v", s.Item)
		}
	}
	if len(recs) != 2 || recs[0].Item.ID != 2 {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestCompareTradeoffs(t *testing.T) {
	cat := cameraFixture()
	ref := mustCatItem(t, cat, 3) // expensive high spec
	alt := mustCatItem(t, cat, 1) // cheap low spec
	tos := Compare(cat, ref, alt)
	byAttr := map[string]Tradeoff{}
	for _, to := range tos {
		byAttr[to.Attr] = to
	}
	if to := byAttr["price"]; to.Direction != Better || to.Phrase != "Cheaper" {
		t.Fatalf("price tradeoff = %+v", to)
	}
	if to := byAttr["resolution"]; to.Direction != Worse || to.Phrase != "Lower Resolution" {
		t.Fatalf("resolution tradeoff = %+v", to)
	}
	if to := byAttr["memory"]; to.Direction != Worse || to.Phrase != "Less Memory" {
		t.Fatalf("memory tradeoff = %+v", to)
	}
	if to := byAttr["brand"]; to.Direction != Same {
		t.Fatalf("brand tradeoff = %+v (both Axiom)", to)
	}
}

func TestCompareCategoricalDifference(t *testing.T) {
	cat := cameraFixture()
	tos := Compare(cat, mustCatItem(t, cat, 1), mustCatItem(t, cat, 2))
	for _, to := range tos {
		if to.Attr == "brand" {
			if to.Direction != Different {
				t.Fatalf("brand = %+v", to)
			}
			return
		}
	}
	t.Fatal("brand tradeoff missing")
}

func TestCompareSameItemAllSame(t *testing.T) {
	cat := cameraFixture()
	it := mustCatItem(t, cat, 2)
	for _, to := range Compare(cat, it, it) {
		if to.Direction != Same {
			t.Fatalf("self-comparison produced %+v", to)
		}
	}
}

func TestPhraseForGenericAttr(t *testing.T) {
	def := model.AttrDef{Name: "battery", Kind: model.Numeric}
	if got := phraseFor(def, 5); got != "More battery" {
		t.Fatalf("phrase = %q", got)
	}
	if got := phraseFor(def, -5); got != "Less battery" {
		t.Fatalf("phrase = %q", got)
	}
}

func TestPreferencesClone(t *testing.T) {
	p := &Preferences{
		NumericIdeal:      map[string]float64{"price": 100},
		NumericWeight:     map[string]float64{"price": 2},
		CategoricalPrefer: map[string]string{"brand": "Axiom"},
		CategoricalWeight: map[string]float64{"brand": 1},
	}
	cp := p.Clone()
	cp.NumericIdeal["price"] = 900
	cp.CategoricalPrefer["brand"] = "Lumo"
	if p.NumericIdeal["price"] != 100 || p.CategoricalPrefer["brand"] != "Axiom" {
		t.Fatal("Clone aliases the original")
	}
}

func TestOpAndDirectionStrings(t *testing.T) {
	if Eq.String() != "=" || Ne.String() != "!=" || Le.String() != "<=" || Ge.String() != ">=" {
		t.Fatal("op strings")
	}
	if Better.String() != "better" || Worse.String() != "worse" ||
		Same.String() != "same" || Different.String() != "different" {
		t.Fatal("direction strings")
	}
}

func mustItem(t *testing.T, r *Recommender, id model.ItemID) *model.Item {
	t.Helper()
	return mustCatItem(t, r.Catalog(), id)
}

func mustCatItem(t *testing.T, cat *model.Catalog, id model.ItemID) *model.Item {
	t.Helper()
	it, err := cat.Item(id)
	if err != nil {
		t.Fatal(err)
	}
	return it
}

func BenchmarkRecommend(b *testing.B) {
	c := dataset.Cameras(dataset.Config{Seed: 5, Users: 5, Items: 300, RatingsPerUser: 3})
	r := New(c.Catalog)
	lo, hi, _ := c.Catalog.NumericRange(dataset.CamPrice)
	prefs := &Preferences{
		NumericIdeal:  map[string]float64{dataset.CamPrice: lo + (hi-lo)*0.2, dataset.CamResolution: 20},
		NumericWeight: map[string]float64{dataset.CamPrice: 2},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = r.Recommend(prefs, nil, 10)
	}
}
