// Artifact serialization: Dump flattens a trained Model into a
// deterministic, JSON-friendly form (sorted user/item tables, explicit
// trainer provenance) and FromDump reconstructs a serving-equivalent
// Model from it. A dumped-and-restored model carries the same
// Checksum, predicts identically, and still supports fold-in, so a
// process can warm-start from a persisted artifact instead of paying a
// full retrain — the modelstore.SaveArtifact/LoadArtifact seam.

package mf

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/recsys"
)

// DumpFormat versions the Dump wire shape; FromDump rejects anything
// it does not understand rather than misreading it.
const DumpFormat = 1

// Dump is the serializable form of a trained Model. Tables are sorted
// by ID so equal models marshal to byte-identical JSON.
type Dump struct {
	Format  int     `json:"format"`
	Trainer string  `json:"trainer"`
	HasBias bool    `json:"has_bias"`
	Mean    float64 `json:"mean"`
	Opts    Options `json:"opts"`

	Users []UserFactors `json:"users"`
	Items []ItemFactors `json:"items"`
}

// UserFactors is one user's slice of a dumped model.
type UserFactors struct {
	User   model.UserID `json:"u"`
	Bias   float64      `json:"b,omitempty"`
	Count  int          `json:"n"`
	Factor []float64    `json:"f"`
}

// ItemFactors is one item's slice of a dumped model.
type ItemFactors struct {
	Item   model.ItemID `json:"it"`
	Bias   float64      `json:"b,omitempty"`
	Factor []float64    `json:"f"`
}

// Dump flattens the model. The returned value shares no state with the
// receiver — factor vectors are copied — so it stays valid however the
// model is folded afterwards.
func (md *Model) Dump() *Dump {
	d := &Dump{
		Format:  DumpFormat,
		Trainer: md.trainer,
		HasBias: md.hasBias,
		Mean:    md.mean,
		Opts:    md.opts,
	}
	users := make([]model.UserID, 0, len(md.userFactor))
	for u := range md.userFactor {
		users = append(users, u)
	}
	sort.Slice(users, func(a, b int) bool { return users[a] < users[b] })
	for _, u := range users {
		d.Users = append(d.Users, UserFactors{
			User:   u,
			Bias:   md.userBias[u],
			Count:  md.trainCount[u],
			Factor: append([]float64(nil), md.userFactor[u]...),
		})
	}
	items := make([]model.ItemID, 0, len(md.itemFactor))
	for i := range md.itemFactor {
		items = append(items, i)
	}
	sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
	for _, i := range items {
		d.Items = append(d.Items, ItemFactors{
			Item:   i,
			Bias:   md.itemBias[i],
			Factor: append([]float64(nil), md.itemFactor[i]...),
		})
	}
	return d
}

// FromDump reconstructs a Model over cat. It validates the dump's
// shape (format, trainer, factor dimensionality, finite values) so a
// corrupt or truncated artifact is rejected instead of served.
func FromDump(d *Dump, cat *model.Catalog) (*Model, error) {
	if d == nil {
		return nil, fmt.Errorf("mf: nil dump")
	}
	if d.Format != DumpFormat {
		return nil, fmt.Errorf("mf: dump format %d, want %d", d.Format, DumpFormat)
	}
	if d.Trainer == "" {
		return nil, fmt.Errorf("mf: dump has no trainer name")
	}
	if cat == nil || cat.Len() == 0 {
		return nil, fmt.Errorf("mf: FromDump requires a catalogue")
	}
	opts := d.Opts.withDefaults()
	if !isFinite(d.Mean) {
		return nil, fmt.Errorf("mf: dump mean is not finite")
	}
	md := newModel(cat, opts, d.Trainer, d.HasBias, d.Mean)
	for _, uf := range d.Users {
		if len(uf.Factor) != opts.Factors {
			return nil, fmt.Errorf("mf: user %d has %d factors, want %d", uf.User, len(uf.Factor), opts.Factors)
		}
		if !isFinite(uf.Bias) || !allFinite(uf.Factor) {
			return nil, fmt.Errorf("mf: user %d has non-finite parameters", uf.User)
		}
		if uf.Bias != 0 {
			md.userBias[uf.User] = uf.Bias
		}
		md.trainCount[uf.User] = uf.Count
		md.userFactor[uf.User] = append([]float64(nil), uf.Factor...)
	}
	for _, itf := range d.Items {
		if len(itf.Factor) != opts.Factors {
			return nil, fmt.Errorf("mf: item %d has %d factors, want %d", itf.Item, len(itf.Factor), opts.Factors)
		}
		if !isFinite(itf.Bias) || !allFinite(itf.Factor) {
			return nil, fmt.Errorf("mf: item %d has non-finite parameters", itf.Item)
		}
		if itf.Bias != 0 {
			md.itemBias[itf.Item] = itf.Bias
		}
		md.itemFactor[itf.Item] = append([]float64(nil), itf.Factor...)
	}
	return md, nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func allFinite(f []float64) bool {
	for _, v := range f {
		if !isFinite(v) {
			return false
		}
	}
	return true
}

// EncodeModel serializes a lifecycle-served *Model to JSON — the
// core.TrainerConfig.EncodeModel hook for mf trainers. Rejects
// recommenders that are not mf models.
func EncodeModel(rec recsys.Recommender) ([]byte, error) {
	md, ok := rec.(*Model)
	if !ok {
		return nil, fmt.Errorf("mf: cannot encode %T as a factorisation artifact", rec)
	}
	return json.Marshal(md.Dump())
}

// DecodeModel returns a decoder bound to cat — the
// core.TrainerConfig.DecodeModel hook for mf trainers.
func DecodeModel(cat *model.Catalog) func([]byte) (recsys.Recommender, error) {
	return func(data []byte) (recsys.Recommender, error) {
		var d Dump
		if err := json.Unmarshal(data, &d); err != nil {
			return nil, fmt.Errorf("mf: decoding artifact: %w", err)
		}
		return FromDump(&d, cat)
	}
}
