package mf

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/dataset"
)

func TestDumpRoundTripServesIdentically(t *testing.T) {
	for _, name := range TrainerNames() {
		t.Run(name, func(t *testing.T) {
			c := dataset.Movies(dataset.Config{Seed: 41, Users: 40, Items: 50, RatingsPerUser: 12})
			trainer, err := NewTrainer(name, Options{Seed: 3, Factors: 8, Epochs: 10})
			if err != nil {
				t.Fatal(err)
			}
			md := trainer.Train(c.Ratings, c.Catalog).(*Model)

			data, err := EncodeModel(md)
			if err != nil {
				t.Fatal(err)
			}
			back, err := DecodeModel(c.Catalog)(data)
			if err != nil {
				t.Fatal(err)
			}
			md2 := back.(*Model)

			if md.Checksum() != md2.Checksum() {
				t.Fatalf("checksum changed across dump round-trip: %016x != %016x", md.Checksum(), md2.Checksum())
			}
			if md2.TrainerName() != name {
				t.Fatalf("trainer name = %q, want %q", md2.TrainerName(), name)
			}
			for _, u := range c.Ratings.Users()[:10] {
				a := md.Recommend(u, 5, nil)
				b := md2.Recommend(u, 5, nil)
				aj, _ := json.Marshal(a)
				bj, _ := json.Marshal(b)
				if string(aj) != string(bj) {
					t.Fatalf("user %d recommends differently after round-trip:\n%s\n%s", u, aj, bj)
				}
			}
		})
	}
}

func TestDumpIsDeterministic(t *testing.T) {
	_, md := trainSmall(t, Options{Seed: 9, Factors: 4, Epochs: 5})
	a, err := EncodeModel(md)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeModel(md)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two dumps of the same model differ")
	}
}

func TestDumpedModelStillFoldsIn(t *testing.T) {
	c, md := trainSmall(t, Options{Seed: 9, Factors: 4, Epochs: 5})
	data, err := EncodeModel(md)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeModel(c.Catalog)(data)
	if err != nil {
		t.Fatal(err)
	}
	m2 := c.Ratings.Clone()
	u := c.Ratings.Users()[0]
	it := c.Catalog.Items()[0].ID
	m2.Set(u, it, 5)
	md2 := back.(*Model).RebindMatrix(m2, u).(*Model)
	if md2.trainCount[u] != len(m2.UserRatings(u)) {
		t.Fatalf("fold-in after restore did not refresh user %d", u)
	}
}

func TestFromDumpRejectsCorruption(t *testing.T) {
	c, md := trainSmall(t, Options{Seed: 9, Factors: 4, Epochs: 5})
	good := md.Dump()

	cases := []struct {
		name   string
		mutate func(*Dump)
	}{
		{"unknown format", func(d *Dump) { d.Format = 99 }},
		{"no trainer", func(d *Dump) { d.Trainer = "" }},
		{"nan mean", func(d *Dump) { d.Mean = math.NaN() }},
		{"short user factor", func(d *Dump) { d.Users[0].Factor = d.Users[0].Factor[:1] }},
		{"short item factor", func(d *Dump) { d.Items[0].Factor = d.Items[0].Factor[:1] }},
		{"nan user bias", func(d *Dump) { d.Users[0].Bias = math.NaN() }},
		{"inf item factor", func(d *Dump) { d.Items[0].Factor[0] = math.Inf(1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, err := json.Marshal(good)
			if err != nil {
				t.Fatal(err)
			}
			var d Dump
			if err := json.Unmarshal(data, &d); err != nil {
				t.Fatal(err)
			}
			tc.mutate(&d)
			if _, err := FromDump(&d, c.Catalog); err == nil {
				t.Fatal("FromDump accepted a corrupt dump")
			}
		})
	}
	if _, err := FromDump(nil, c.Catalog); err == nil {
		t.Fatal("FromDump accepted nil")
	}
	if _, err := FromDump(good, nil); err == nil {
		t.Fatal("FromDump accepted a nil catalogue")
	}
}

func TestEncodeModelRejectsForeignRecommender(t *testing.T) {
	if _, err := EncodeModel(nil); err == nil {
		t.Fatal("EncodeModel accepted a non-mf recommender")
	}
}
