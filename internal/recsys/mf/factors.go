// Factor-overlap explanations: the latent dimensions where a user's
// taste vector and an item's factor vector align, rendered as a
// preference-style explanation. The dimensions are anonymous — the
// model learned them, nobody named them — so the explanation is honest
// about what it can and cannot say: it shows *that* and *how strongly*
// the profiles align, never *why*. That is still strictly more
// faithful than the vague preference boilerplate MF used to fall back
// on, which is the point of surfacing it.

package mf

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/explain"
	"repro/internal/model"
	"repro/internal/present"
	"repro/internal/recsys"
)

// FactorOverlap decomposes the factor inner product behind a (u, item)
// prediction into per-dimension contributions, sorted by descending
// |Weight| (ties by dimension index), truncated to the topK strongest
// (topK <= 0 keeps all). Nil when either side has no factors.
func (md *Model) FactorOverlap(u model.UserID, item model.ItemID, topK int) []recsys.FactorShare {
	uf, itf := md.userFactor[u], md.itemFactor[item]
	if len(uf) == 0 || len(itf) == 0 {
		return nil
	}
	var total float64
	shares := make([]recsys.FactorShare, 0, len(uf))
	for k := 0; k < len(uf) && k < len(itf); k++ {
		w := uf[k] * itf[k]
		shares = append(shares, recsys.FactorShare{Dim: k, Weight: w})
		total += abs(w)
	}
	if total > 0 {
		for i := range shares {
			shares[i].Share = abs(shares[i].Weight) / total
		}
	}
	sort.Slice(shares, func(a, b int) bool {
		wa, wb := abs(shares[a].Weight), abs(shares[b].Weight)
		if wa != wb {
			return wa > wb
		}
		return shares[a].Dim < shares[b].Dim
	})
	if topK > 0 && len(shares) > topK {
		shares = shares[:topK]
	}
	return shares
}

// Explainer returns the model's own factor-overlap explainer — the
// seam the engine lifecycle probes so an MF-served engine explains
// from the serving model instead of the default substrate.
func (md *Model) Explainer() explain.Explainer { return NewFactorExplainer(md) }

// FactorExplainer explains MF predictions from factor overlap. It
// implements explain.Explainer, explain.MatrixRebinder (fold-in of the
// underlying model) and present.LowExplainer (the diverging factors
// answer "why low?").
type FactorExplainer struct{ md *Model }

// The explainer keeps the engine's lock-free path and serves the
// browse view's why-low questions.
var (
	_ explain.Explainer      = (*FactorExplainer)(nil)
	_ explain.MatrixRebinder = (*FactorExplainer)(nil)
	_ present.LowExplainer   = (*FactorExplainer)(nil)
)

// NewFactorExplainer builds a FactorExplainer over a trained model.
func NewFactorExplainer(md *Model) *FactorExplainer { return &FactorExplainer{md: md} }

// Style implements explain.Explainer.
func (x *FactorExplainer) Style() explain.Style { return explain.PreferenceBased }

// Explain implements explain.Explainer: the aligned latent dimensions
// behind the prediction, strongest first.
func (x *FactorExplainer) Explain(u model.UserID, item *model.Item) (*explain.Explanation, error) {
	pred, err := x.md.Predict(u, item.ID)
	if err != nil {
		return nil, fmt.Errorf("item %d: %w", item.ID, explain.ErrNoEvidence)
	}
	shares := x.md.FactorOverlap(u, item.ID, 3)
	if len(shares) == 0 {
		return nil, fmt.Errorf("item %d: %w", item.ID, explain.ErrNoEvidence)
	}
	aligned := 0
	for _, s := range shares {
		if s.Weight > 0 {
			aligned++
		}
	}
	text := fmt.Sprintf(
		"Your taste profile aligns with %q on %d of its %d strongest latent factors; the strongest alignment carries %.0f%% of the factor signal.",
		item.Title, aligned, len(shares), shares[0].Share*100)
	return &explain.Explanation{
		Style:      explain.PreferenceBased,
		Text:       text,
		Detail:     factorTable(shares),
		Confidence: pred.Confidence,
		Faithful:   true,
		Evidence:   explain.Evidence{Factors: shares},
	}, nil
}

// ExplainLow implements present.LowExplainer: the factors where the
// profiles diverge explain a low prediction.
func (x *FactorExplainer) ExplainLow(u model.UserID, item *model.Item) (*explain.Explanation, error) {
	pred, err := x.md.Predict(u, item.ID)
	if err != nil {
		return nil, fmt.Errorf("item %d: %w", item.ID, explain.ErrNoEvidence)
	}
	shares := x.md.FactorOverlap(u, item.ID, 3)
	if len(shares) == 0 {
		return nil, fmt.Errorf("item %d: %w", item.ID, explain.ErrNoEvidence)
	}
	diverging := 0
	for _, s := range shares {
		if s.Weight < 0 {
			diverging++
		}
	}
	text := fmt.Sprintf(
		"Your taste profile diverges from %q on %d of its %d strongest latent factors, which holds the predicted rating at %.1f stars.",
		item.Title, diverging, len(shares), pred.Score)
	return &explain.Explanation{
		Style:      explain.PreferenceBased,
		Text:       text,
		Detail:     factorTable(shares),
		Confidence: pred.Confidence,
		Faithful:   true,
		Evidence:   explain.Evidence{Factors: shares},
	}, nil
}

// RebindMatrix implements explain.MatrixRebinder by folding the
// underlying model into the new matrix.
func (x *FactorExplainer) RebindMatrix(m *model.Matrix, touched ...model.UserID) explain.Explainer {
	return &FactorExplainer{md: x.md.RebindMatrix(m, touched...).(*Model)}
}

// factorTable renders the per-dimension breakdown for Detail.
func factorTable(shares []recsys.FactorShare) string {
	var b strings.Builder
	for _, s := range shares {
		sign := "aligns"
		if s.Weight < 0 {
			sign = "diverges"
		}
		fmt.Fprintf(&b, "factor %2d  %s  weight %+.3f  share %4.1f%%\n", s.Dim, sign, s.Weight, s.Share*100)
	}
	return strings.TrimRight(b.String(), "\n")
}
