package mf

import (
	"errors"
	"math"
	"testing"

	"repro/internal/explain"
	"repro/internal/model"
)

func TestFactorOverlapSharesAndOrder(t *testing.T) {
	c, md := trainSmall(t, Options{Seed: 31, Factors: 8})
	u := c.Ratings.Users()[0]
	it := c.Catalog.Items()[0].ID

	all := md.FactorOverlap(u, it, 0)
	if len(all) != 8 {
		t.Fatalf("got %d shares, want all 8", len(all))
	}
	var sum float64
	for i, s := range all {
		if s.Share < 0 || s.Share > 1 {
			t.Fatalf("share %v out of range", s.Share)
		}
		sum += s.Share
		if i > 0 && math.Abs(all[i-1].Weight) < math.Abs(s.Weight) {
			t.Fatalf("shares not sorted by |weight| at %d", i)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}

	top := md.FactorOverlap(u, it, 3)
	if len(top) != 3 {
		t.Fatalf("topK=3 returned %d shares", len(top))
	}
	for i := range top {
		if top[i] != all[i] {
			t.Fatalf("topK changed ordering at %d", i)
		}
	}
}

func TestFactorOverlapNilWithoutFactors(t *testing.T) {
	c, md := trainSmall(t, Options{Seed: 31})
	if got := md.FactorOverlap(999999, c.Catalog.Items()[0].ID, 3); got != nil {
		t.Fatalf("unknown user produced shares: %v", got)
	}
	if got := md.FactorOverlap(c.Ratings.Users()[0], 999999, 3); got != nil {
		t.Fatalf("unknown item produced shares: %v", got)
	}
}

func TestFactorExplainerExplains(t *testing.T) {
	c, md := trainSmall(t, Options{Seed: 37})
	x := NewFactorExplainer(md)
	if x.Style() != explain.PreferenceBased {
		t.Fatalf("style = %v", x.Style())
	}
	u := c.Ratings.Users()[0]
	item, err := c.Catalog.Item(c.Catalog.Items()[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := x.Explain(u, item)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Text == "" || exp.Detail == "" {
		t.Fatal("empty explanation")
	}
	if !exp.Faithful {
		t.Fatal("factor overlap is derived from the model; must be faithful")
	}
	if len(exp.Evidence.Factors) == 0 {
		t.Fatal("no factor evidence")
	}

	low, err := x.ExplainLow(u, item)
	if err != nil {
		t.Fatal(err)
	}
	if low.Text == "" || len(low.Evidence.Factors) == 0 {
		t.Fatal("empty why-low explanation")
	}
}

func TestFactorExplainerColdStartIsNoEvidence(t *testing.T) {
	c, md := trainSmall(t, Options{Seed: 37, Epochs: 1})
	x := NewFactorExplainer(md)
	item, err := c.Catalog.Item(c.Catalog.Items()[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Explain(999999, item); !errors.Is(err, explain.ErrNoEvidence) {
		t.Fatalf("err = %v, want ErrNoEvidence", err)
	}
}

func TestFactorExplainerRebindTracksFoldIn(t *testing.T) {
	c, md := trainSmall(t, Options{Seed: 41, Epochs: 3})
	x := NewFactorExplainer(md)
	u := c.Ratings.Users()[0]
	next := c.Ratings.Clone()
	next.Set(u, c.Catalog.Items()[0].ID, model.MaxRating)
	rebound, ok := x.RebindMatrix(next, u).(*FactorExplainer)
	if !ok {
		t.Fatal("rebind changed explainer type")
	}
	if rebound.md == md {
		t.Fatal("rebound explainer still wraps the old model")
	}
	item, err := c.Catalog.Item(c.Catalog.Items()[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rebound.Explain(u, item); err != nil {
		t.Fatal(err)
	}
}
