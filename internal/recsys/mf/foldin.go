// Incremental fold-in: RebindMatrix re-solves only the touched users'
// bias and factor vector against the fixed item factors, so an engine
// serving an MF model absorbs writes without a full retrain — the
// recsys.MatrixRebinder seam of the snapshot design. Item factors are
// deliberately frozen between full rebuilds: one user's new rating
// must not silently shift every other user's predictions, and the
// background lifecycle (core.WithTrainer) re-fits the item side on its
// own schedule.

package mf

import (
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/recsys"
)

// Model participates in the engine's lock-free snapshot concurrency.
var _ recsys.MatrixRebinder = (*Model)(nil)

// RebindMatrix implements recsys.MatrixRebinder: it returns a model
// equal to the receiver except that each touched user's bias and
// factor vector are re-estimated from m by ridge-regression fold-in
// against the fixed item factors. The receiver stays fully usable —
// readers of an older snapshot keep predicting from it — and the
// returned model implements MatrixRebinder again.
func (md *Model) RebindMatrix(m *model.Matrix, touched ...model.UserID) recsys.Recommender {
	next := &Model{
		cat:        md.cat,
		opts:       md.opts,
		trainer:    md.trainer,
		hasBias:    md.hasBias,
		mean:       md.mean,
		itemBias:   md.itemBias,   // frozen between rebuilds
		itemFactor: md.itemFactor, // frozen between rebuilds
		userBias:   make(map[model.UserID]float64, len(md.userBias)),
		userFactor: make(map[model.UserID][]float64, len(md.userFactor)),
		trainCount: make(map[model.UserID]int, len(md.trainCount)),
	}
	// Copy the user-side maps; untouched users share their (immutable)
	// factor slices with the receiver.
	for u, v := range md.userBias {
		next.userBias[u] = v
	}
	for u, f := range md.userFactor {
		next.userFactor[u] = f
	}
	for u, n := range md.trainCount {
		next.trainCount[u] = n
	}
	for _, u := range touched {
		next.foldInUser(m, u)
	}
	return next
}

// foldInUser re-estimates one user's slice of the model from their
// current ratings in m: a damped-mean bias (when the trainer fits
// biases) and a ridge-regression factor solve against the fixed item
// factors. A user with no ratings left reverts to cold start.
func (md *Model) foldInUser(m *model.Matrix, u model.UserID) {
	ratings := m.UserRatings(u)
	if len(ratings) == 0 {
		delete(md.userBias, u)
		delete(md.userFactor, u)
		delete(md.trainCount, u)
		return
	}
	md.trainCount[u] = len(ratings)

	ids := make([]model.ItemID, 0, len(ratings))
	for i := range ratings {
		ids = append(ids, i)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })

	if md.hasBias {
		var sum float64
		for _, i := range ids {
			sum += ratings[i] - md.mean - md.itemBias[i]
		}
		md.userBias[u] = sum / (biasDamping + float64(len(ids)))
	}

	// Factor solve over the items the model knows; ratings of items
	// unseen in training contribute to the bias only.
	rows := make([][]float64, 0, len(ids))
	resid := make([]float64, 0, len(ids))
	for _, i := range ids {
		f := md.itemFactor[i]
		if f == nil {
			continue
		}
		rows = append(rows, f)
		resid = append(resid, ratings[i]-md.mean-md.userBias[u]-md.itemBias[i])
	}
	md.userFactor[u] = ridgeSolve(rows, resid, md.opts.Regularization, md.opts.Factors)
}

// Checksum is a deterministic FNV-1a digest over the model's trainer
// name, global mean, biases and factors, iterated in sorted order.
// Equal seeds and equal inputs produce equal checksums, so the
// artifact store can prove two model generations identical without
// comparing factor tables.
func (md *Model) Checksum() uint64 {
	h := fnv.New64a()
	writeStr := func(s string) {
		//lint:ignore dropped-error hash.Hash.Write never returns an error
		_, _ = h.Write([]byte(s))
	}
	writeF := func(v float64) {
		bits := math.Float64bits(v)
		var buf [8]byte
		for k := 0; k < 8; k++ {
			buf[k] = byte(bits >> (8 * k))
		}
		//lint:ignore dropped-error hash.Hash.Write never returns an error
		_, _ = h.Write(buf[:])
	}
	writeStr(md.trainer)
	writeF(md.mean)

	users := make([]model.UserID, 0, len(md.userFactor))
	for u := range md.userFactor {
		users = append(users, u)
	}
	sort.Slice(users, func(a, b int) bool { return users[a] < users[b] })
	for _, u := range users {
		writeF(float64(u))
		writeF(md.userBias[u])
		writeF(float64(md.trainCount[u]))
		for _, v := range md.userFactor[u] {
			writeF(v)
		}
	}

	items := make([]model.ItemID, 0, len(md.itemFactor))
	for i := range md.itemFactor {
		items = append(items, i)
	}
	sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
	for _, i := range items {
		writeF(float64(i))
		writeF(md.itemBias[i])
		for _, v := range md.itemFactor[i] {
			writeF(v)
		}
	}
	return h.Sum64()
}
