package mf

import (
	"errors"
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/recsys"
)

// TestRebindLeavesReceiverUntouched is the contract the engine's
// lock-free snapshot design depends on: readers of the old snapshot
// keep predicting from an unchanged model while the new one serves.
func TestRebindLeavesReceiverUntouched(t *testing.T) {
	c, md := trainSmall(t, Options{Seed: 11, Epochs: 5})
	before := md.Checksum()
	u := c.Ratings.Users()[0]
	target := c.Catalog.Items()[0].ID
	pOld, err := md.Predict(u, target)
	if err != nil {
		t.Fatal(err)
	}

	next := c.Ratings.Clone()
	next.Set(u, target, model.MaxRating)
	folded := md.RebindMatrix(next, u)
	if folded == md {
		t.Fatal("RebindMatrix returned the receiver")
	}
	if md.Checksum() != before {
		t.Fatal("fold-in mutated the receiver")
	}
	pAgain, err := md.Predict(u, target)
	if err != nil {
		t.Fatal(err)
	}
	if pAgain.Score != pOld.Score {
		t.Fatalf("receiver prediction moved: %v -> %v", pOld.Score, pAgain.Score)
	}
	if _, ok := folded.(recsys.MatrixRebinder); !ok {
		t.Fatal("folded model lost the MatrixRebinder seam")
	}
}

// TestFoldInMovesPredictionTowardNewRating: rating an item at the
// scale maximum must pull the folded prediction for that item up
// relative to the unfolded model.
func TestFoldInMovesPredictionTowardNewRating(t *testing.T) {
	for _, name := range TrainerNames() {
		t.Run(name, func(t *testing.T) {
			c, md := trainBy(t, name, Options{Seed: 11})
			u := c.Ratings.Users()[0]
			// Pick an unrated item the model knows factors for.
			var target model.ItemID
			for _, it := range c.Catalog.Items() {
				if _, rated := c.Ratings.Get(u, it.ID); !rated && md.itemFactor[it.ID] != nil {
					target = it.ID
					break
				}
			}
			if target == 0 {
				t.Skip("no unrated item with factors")
			}
			pOld, err := md.Predict(u, target)
			if err != nil {
				t.Fatal(err)
			}
			next := c.Ratings.Clone()
			next.Set(u, target, model.MaxRating)
			folded := md.RebindMatrix(next, u).(*Model)
			pNew, err := folded.Predict(u, target)
			if err != nil {
				t.Fatal(err)
			}
			if pNew.Score <= pOld.Score && pOld.Score < model.MaxRating {
				t.Fatalf("%s: max rating did not raise prediction (%v -> %v)",
					name, pOld.Score, pNew.Score)
			}
		})
	}
}

// TestFoldInIdempotentForALSWR: fold-in is a pure function of the
// user's ratings and the frozen item factors, so folding the same
// user twice against the same matrix is bitwise idempotent, and the
// damped-mean bias reproduces the trainer's own estimate exactly (it
// never depended on the factor sweeps).
func TestFoldInIdempotentForALSWR(t *testing.T) {
	c, md := trainBy(t, "als-wr", Options{Seed: 13, Epochs: 4})
	u := c.Ratings.Users()[0]
	folded := md.RebindMatrix(c.Ratings, u).(*Model)
	if got, want := folded.userBias[u], md.userBias[u]; got != want {
		t.Fatalf("bias moved: %v -> %v", want, got)
	}
	again := folded.RebindMatrix(c.Ratings, u).(*Model)
	if again.Checksum() != folded.Checksum() {
		t.Fatal("second identical fold-in changed the model")
	}
	uf, ff := folded.userFactor[u], again.userFactor[u]
	for k := range uf {
		if uf[k] != ff[k] {
			t.Fatalf("factor %d not idempotent: %v -> %v", k, uf[k], ff[k])
		}
	}
}

// TestFoldInApproximatesRetrain: for a genuinely new user, folding
// their ratings in must land predictions closer to a full ALS-WR
// retrain than the cold model's global-mean fallback would be.
func TestFoldInApproximatesRetrain(t *testing.T) {
	c, md := trainBy(t, "als-wr", Options{Seed: 17, Epochs: 4})
	newUser := model.UserID(999001)
	next := c.Ratings.Clone()
	donor := c.Ratings.Users()[3]
	var copied int
	for i, v := range c.Ratings.UserRatings(donor) {
		next.Set(newUser, i, v)
		if copied++; copied >= 10 {
			break
		}
	}

	folded := md.RebindMatrix(next, newUser).(*Model)
	full := TrainALSWR(next, c.Catalog, Options{Seed: 17, Epochs: 4})

	var foldGap, meanGap float64
	var n int
	for _, it := range c.Catalog.Items() {
		pf, errF := folded.Predict(newUser, it.ID)
		pr, errR := full.Predict(newUser, it.ID)
		if errF != nil || errR != nil {
			continue
		}
		foldGap += math.Abs(pf.Score - pr.Score)
		meanGap += math.Abs(next.GlobalMean() - pr.Score)
		n++
	}
	if n == 0 {
		t.Fatal("no comparable predictions")
	}
	if foldGap >= meanGap {
		t.Fatalf("fold-in gap to retrain %.3f not tighter than global-mean gap %.3f",
			foldGap/float64(n), meanGap/float64(n))
	}
}

// TestFoldInEvictedUserColdStarts: a user whose ratings vanished from
// the matrix reverts to cold start after fold-in.
func TestFoldInEvictedUserColdStarts(t *testing.T) {
	c, md := trainSmall(t, Options{Seed: 19, Epochs: 3})
	u := c.Ratings.Users()[0]
	next := c.Ratings.Clone()
	for i := range c.Ratings.UserRatings(u) {
		next.Delete(u, i)
	}
	folded := md.RebindMatrix(next, u).(*Model)
	if _, err := folded.Predict(u, c.Catalog.Items()[0].ID); !errors.Is(err, recsys.ErrColdStart) {
		t.Fatalf("err = %v, want ErrColdStart", err)
	}
	// The receiver still serves the user.
	if _, err := md.Predict(u, c.Catalog.Items()[0].ID); err != nil {
		t.Fatalf("receiver lost the user: %v", err)
	}
}

// TestChecksumSensitiveToFoldIn: folding in a changed rating must
// change the digest — version provenance depends on it.
func TestChecksumSensitiveToFoldIn(t *testing.T) {
	c, md := trainSmall(t, Options{Seed: 23, Epochs: 3})
	u := c.Ratings.Users()[0]
	next := c.Ratings.Clone()
	next.Set(u, c.Catalog.Items()[0].ID, model.MaxRating)
	folded := md.RebindMatrix(next, u).(*Model)
	if folded.Checksum() == md.Checksum() {
		t.Fatal("fold-in with a new rating left the checksum unchanged")
	}
	// An untouched rebind shares every slice, so the digest holds.
	same := md.RebindMatrix(c.Ratings).(*Model)
	if same.Checksum() != md.Checksum() {
		t.Fatal("no-op rebind changed the checksum")
	}
}
