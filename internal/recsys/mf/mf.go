// Package mf implements matrix-factorisation collaborative filtering:
// a family of latent-factor trainers (FunkSVD-style biased SGD, ALS-WR
// alternating least squares, Paterek-style regularized SVD) producing
// one Model type behind the recsys.ModelTrainer interface.
//
// Historically MF played the role of the *unexplainable strong
// baseline* in this repository: its latent factors predict well but
// name nothing a user recognises, so ablation A5 uses it to quantify
// the survey's implicit tension between prediction accuracy and
// explanation quality. The FactorExplainer (factors.go) closes part of
// that gap: it surfaces the latent dimensions where the user's taste
// vector and the item's factor vector align — faithful to the model,
// even though the dimensions themselves stay anonymous.
//
// Models support incremental fold-in (foldin.go): RebindMatrix
// re-solves only the touched users' factor vectors against the fixed
// item factors, so an engine serving an MF model keeps its lock-free
// snapshot path between full rebuilds.
package mf

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/recsys"
	"repro/internal/rng"
)

// Options configure training. The same option set drives all three
// trainers; fields irrelevant to a trainer (LearningRate for ALS-WR)
// are ignored by it.
type Options struct {
	// Factors is the latent dimensionality (default 16).
	Factors int
	// Epochs of SGD over all ratings, or ALS sweeps (default 30).
	Epochs int
	// LearningRate for SGD-family trainers (default 0.01).
	LearningRate float64
	// Regularization strength (default 0.05). ALS-WR scales it by each
	// row's rating count (the "weighted-λ" part).
	Regularization float64
	// Seed for factor initialisation and example shuffling.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Factors == 0 {
		o.Factors = 16
	}
	if o.Epochs == 0 {
		o.Epochs = 30
	}
	if o.LearningRate == 0 {
		o.LearningRate = 0.01
	}
	if o.Regularization == 0 {
		o.Regularization = 0.05
	}
	return o
}

// Model is a trained factorisation. All trainers produce this one
// shape; prediction is mean + biases + user·item, with the bias maps
// empty for trainers that do not fit biases.
type Model struct {
	cat  *model.Catalog
	opts Options

	// trainer is the producing trainer's Name(), carried for artifact
	// provenance and checksums.
	trainer string
	// hasBias reports whether the trainer fits bias terms; fold-in
	// skips bias re-estimation when it does not.
	hasBias bool

	mean       float64
	userBias   map[model.UserID]float64
	itemBias   map[model.ItemID]float64
	userFactor map[model.UserID][]float64
	itemFactor map[model.ItemID][]float64
	// trainCount supports a crude per-user confidence.
	trainCount map[model.UserID]int
}

// newModel allocates an empty model shell for one trainer.
func newModel(cat *model.Catalog, opts Options, trainer string, hasBias bool, mean float64) *Model {
	return &Model{
		cat:        cat,
		opts:       opts,
		trainer:    trainer,
		hasBias:    hasBias,
		mean:       mean,
		userBias:   map[model.UserID]float64{},
		itemBias:   map[model.ItemID]float64{},
		userFactor: map[model.UserID][]float64{},
		itemFactor: map[model.ItemID][]float64{},
		trainCount: map[model.UserID]int{},
	}
}

// example is one (user, item, rating) training triple; examples lists
// them deterministically: users sorted, then each user's items sorted.
type example struct {
	u model.UserID
	i model.ItemID
	v float64
}

func examples(m *model.Matrix) []example {
	var out []example
	for _, u := range m.Users() {
		ratings := m.UserRatings(u)
		ids := make([]model.ItemID, 0, len(ratings))
		for i := range ratings {
			ids = append(ids, i)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, i := range ids {
			out = append(out, example{u, i, ratings[i]})
		}
	}
	return out
}

// Train fits a FunkSVD model to the matrix — the original SGD trainer,
// kept as a package-level function for direct callers (experiments).
// Training is deterministic in opts.Seed: examples are visited in a
// seeded shuffled order each epoch.
func Train(m *model.Matrix, cat *model.Catalog, opts Options) *Model {
	opts = opts.withDefaults()
	r := rng.New(opts.Seed + 0x5eed)
	md := newModel(cat, opts, "sgd", true, m.GlobalMean())
	exs := examples(m)
	for _, ex := range exs {
		md.trainCount[ex.u]++
	}
	factors := func() []float64 {
		f := make([]float64, opts.Factors)
		for k := range f {
			f[k] = r.Norm(0, 0.1)
		}
		return f
	}
	for _, ex := range exs {
		if md.userFactor[ex.u] == nil {
			md.userFactor[ex.u] = factors()
		}
		if md.itemFactor[ex.i] == nil {
			md.itemFactor[ex.i] = factors()
		}
	}
	lr, reg := opts.LearningRate, opts.Regularization
	order := make([]int, len(exs))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		r.ShuffleInts(order)
		for _, idx := range order {
			ex := exs[idx]
			uf, itf := md.userFactor[ex.u], md.itemFactor[ex.i]
			pred := md.raw(ex.u, ex.i)
			err := ex.v - pred
			md.userBias[ex.u] += lr * (err - reg*md.userBias[ex.u])
			md.itemBias[ex.i] += lr * (err - reg*md.itemBias[ex.i])
			for k := 0; k < opts.Factors; k++ {
				du := lr * (err*itf[k] - reg*uf[k])
				di := lr * (err*uf[k] - reg*itf[k])
				uf[k] += du
				itf[k] += di
			}
		}
	}
	return md
}

// Name implements recsys.Named.
func (md *Model) Name() string { return "matrix-factorisation" }

// TrainerName reports which trainer produced this model ("sgd",
// "als-wr" or "rsvd") — artifact provenance.
func (md *Model) TrainerName() string { return md.trainer }

func (md *Model) raw(u model.UserID, i model.ItemID) float64 {
	v := md.mean + md.userBias[u] + md.itemBias[i]
	uf, itf := md.userFactor[u], md.itemFactor[i]
	for k := 0; k < len(uf) && k < len(itf); k++ {
		v += uf[k] * itf[k]
	}
	return v
}

// Predict implements recsys.Predictor. Users or items never seen in
// training fall back to biases around the global mean; a user with no
// training data at all is a cold start.
func (md *Model) Predict(u model.UserID, i model.ItemID) (recsys.Prediction, error) {
	if md.trainCount[u] == 0 {
		return recsys.Prediction{}, fmt.Errorf("user %d: %w", u, recsys.ErrColdStart)
	}
	score := model.ClampRating(md.raw(u, i))
	conf := math.Min(1, float64(md.trainCount[u])/20)
	return recsys.Prediction{Item: i, Score: score, Confidence: conf}, nil
}

// Recommend implements recsys.Recommender.
func (md *Model) Recommend(u model.UserID, n int, exclude func(model.ItemID) bool) []recsys.Prediction {
	return recsys.TopN(recsys.RankAll(md, md.cat, u, exclude), n)
}

// FactorNorms reports the L2 norm of each latent dimension across
// items — diagnostic only. The raw norms name nothing a user
// recognises; per-prediction factor overlap (FactorOverlap) is the
// explainable slice of the same geometry.
func (md *Model) FactorNorms() []float64 {
	norms := make([]float64, md.opts.Factors)
	for _, f := range md.itemFactor {
		for k, v := range f {
			norms[k] += v * v
		}
	}
	for k := range norms {
		norms[k] = math.Sqrt(norms[k])
	}
	return norms
}
