// Package mf implements matrix-factorisation collaborative filtering
// (FunkSVD-style biased latent factors trained by stochastic gradient
// descent).
//
// In this repository MF plays the role of the *unexplainable strong
// baseline*: its latent factors predict well but name nothing a user
// recognises, so its explanations can only be the vague
// preference-based fallback. Ablation A5 uses it to quantify the
// survey's implicit tension between prediction accuracy and
// explanation quality — a recommender that cannot ground its
// explanations gains persuasion only through hype and loses
// effectiveness.
package mf

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/recsys"
	"repro/internal/rng"
)

// Options configure training.
type Options struct {
	// Factors is the latent dimensionality (default 16).
	Factors int
	// Epochs of SGD over all ratings (default 30).
	Epochs int
	// LearningRate for SGD (default 0.01).
	LearningRate float64
	// Regularization strength (default 0.05).
	Regularization float64
	// Seed for factor initialisation and example shuffling.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Factors == 0 {
		o.Factors = 16
	}
	if o.Epochs == 0 {
		o.Epochs = 30
	}
	if o.LearningRate == 0 {
		o.LearningRate = 0.01
	}
	if o.Regularization == 0 {
		o.Regularization = 0.05
	}
	return o
}

// Model is a trained factorisation.
type Model struct {
	cat  *model.Catalog
	opts Options

	mean       float64
	userBias   map[model.UserID]float64
	itemBias   map[model.ItemID]float64
	userFactor map[model.UserID][]float64
	itemFactor map[model.ItemID][]float64
	// trainCount supports a crude per-user confidence.
	trainCount map[model.UserID]int
}

// Train fits a model to the matrix. Training is deterministic in
// opts.Seed: examples are visited in a seeded shuffled order each
// epoch.
func Train(m *model.Matrix, cat *model.Catalog, opts Options) *Model {
	opts = opts.withDefaults()
	r := rng.New(opts.Seed + 0x5eed)
	md := &Model{
		cat:        cat,
		opts:       opts,
		mean:       m.GlobalMean(),
		userBias:   map[model.UserID]float64{},
		itemBias:   map[model.ItemID]float64{},
		userFactor: map[model.UserID][]float64{},
		itemFactor: map[model.ItemID][]float64{},
		trainCount: map[model.UserID]int{},
	}
	// Deterministic example list: sorted users, sorted items.
	type example struct {
		u model.UserID
		i model.ItemID
		v float64
	}
	var examples []example
	for _, u := range m.Users() {
		ratings := m.UserRatings(u)
		ids := make([]model.ItemID, 0, len(ratings))
		for i := range ratings {
			ids = append(ids, i)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, i := range ids {
			examples = append(examples, example{u, i, ratings[i]})
		}
		md.trainCount[u] = len(ids)
	}
	factors := func() []float64 {
		f := make([]float64, opts.Factors)
		for k := range f {
			f[k] = r.Norm(0, 0.1)
		}
		return f
	}
	for _, ex := range examples {
		if md.userFactor[ex.u] == nil {
			md.userFactor[ex.u] = factors()
		}
		if md.itemFactor[ex.i] == nil {
			md.itemFactor[ex.i] = factors()
		}
	}
	lr, reg := opts.LearningRate, opts.Regularization
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		r.ShuffleInts(order)
		for _, idx := range order {
			ex := examples[idx]
			uf, itf := md.userFactor[ex.u], md.itemFactor[ex.i]
			pred := md.raw(ex.u, ex.i)
			err := ex.v - pred
			md.userBias[ex.u] += lr * (err - reg*md.userBias[ex.u])
			md.itemBias[ex.i] += lr * (err - reg*md.itemBias[ex.i])
			for k := 0; k < opts.Factors; k++ {
				du := lr * (err*itf[k] - reg*uf[k])
				di := lr * (err*uf[k] - reg*itf[k])
				uf[k] += du
				itf[k] += di
			}
		}
	}
	return md
}

// Name implements recsys.Named.
func (md *Model) Name() string { return "matrix-factorisation" }

func (md *Model) raw(u model.UserID, i model.ItemID) float64 {
	v := md.mean + md.userBias[u] + md.itemBias[i]
	uf, itf := md.userFactor[u], md.itemFactor[i]
	for k := 0; k < len(uf) && k < len(itf); k++ {
		v += uf[k] * itf[k]
	}
	return v
}

// Predict implements recsys.Predictor. Users or items never seen in
// training fall back to biases around the global mean; a user with no
// training data at all is a cold start.
func (md *Model) Predict(u model.UserID, i model.ItemID) (recsys.Prediction, error) {
	if md.trainCount[u] == 0 {
		return recsys.Prediction{}, fmt.Errorf("user %d: %w", u, recsys.ErrColdStart)
	}
	score := model.ClampRating(md.raw(u, i))
	conf := math.Min(1, float64(md.trainCount[u])/20)
	return recsys.Prediction{Item: i, Score: score, Confidence: conf}, nil
}

// Recommend implements recsys.Recommender.
func (md *Model) Recommend(u model.UserID, n int, exclude func(model.ItemID) bool) []recsys.Prediction {
	return recsys.TopN(recsys.RankAll(md, md.cat, u, exclude), n)
}

// FactorNorms reports the L2 norm of each latent dimension across
// items — diagnostic only. The point of exposing it is what it does
// NOT contain: anything a user could recognise. This is the
// explanation gap ablation A5 measures.
func (md *Model) FactorNorms() []float64 {
	norms := make([]float64, md.opts.Factors)
	for _, f := range md.itemFactor {
		for k, v := range f {
			norms[k] += v * v
		}
	}
	for k := range norms {
		norms[k] = math.Sqrt(norms[k])
	}
	return norms
}
