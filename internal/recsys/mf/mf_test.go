package mf

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/recsys"
)

func trainSmall(t testing.TB, opts Options) (*dataset.Community, *Model) {
	t.Helper()
	c := dataset.Movies(dataset.Config{Seed: 71, Users: 80, Items: 100, RatingsPerUser: 25})
	return c, Train(c.Ratings, c.Catalog, opts)
}

func TestPredictOnScale(t *testing.T) {
	c, md := trainSmall(t, Options{Seed: 1})
	for _, it := range c.Catalog.Items()[:20] {
		p, err := md.Predict(1, it.ID)
		if err != nil {
			t.Fatal(err)
		}
		if p.Score < model.MinRating || p.Score > model.MaxRating {
			t.Fatalf("score %v off scale", p.Score)
		}
		if p.Confidence < 0 || p.Confidence > 1 {
			t.Fatalf("confidence %v", p.Confidence)
		}
	}
}

func TestColdStart(t *testing.T) {
	_, md := trainSmall(t, Options{Seed: 1})
	if _, err := md.Predict(9999, 1); !errors.Is(err, recsys.ErrColdStart) {
		t.Fatalf("err = %v", err)
	}
}

func TestTrainingFitsObservedRatings(t *testing.T) {
	c, md := trainSmall(t, Options{Seed: 1})
	var errSum float64
	var n int
	for _, u := range c.Ratings.Users() {
		for i, v := range c.Ratings.UserRatings(u) {
			p, err := md.Predict(u, i)
			if err != nil {
				continue
			}
			errSum += math.Abs(p.Score - v)
			n++
		}
	}
	// The generator's rating noise is sigma 0.6, so an MAE around 0.5
	// on training data is close to irreducible; far above that means
	// SGD failed to fit anything.
	trainMAE := errSum / float64(n)
	if trainMAE > 0.6 {
		t.Fatalf("training MAE %.3f too high; SGD not converging", trainMAE)
	}
}

func TestBeatsMeanBaselineHeldOut(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 73, Users: 150, Items: 100, RatingsPerUser: 35})
	type holdout struct {
		u model.UserID
		i model.ItemID
		v float64
	}
	var held []holdout
	train := c.Ratings.Clone()
	for _, u := range c.Ratings.Users() {
		var pick model.ItemID
		for i := range c.Ratings.UserRatings(u) {
			if pick == 0 || i < pick {
				pick = i
			}
		}
		v, _ := c.Ratings.Get(u, pick)
		held = append(held, holdout{u, pick, v})
		train.Delete(u, pick)
	}
	md := Train(train, c.Catalog, Options{Seed: 3})
	gm := train.GlobalMean()
	var mfErr, gmErr float64
	for _, h := range held {
		p, err := md.Predict(h.u, h.i)
		if err != nil {
			continue
		}
		mfErr += math.Abs(p.Score - h.v)
		gmErr += math.Abs(gm - h.v)
	}
	if mfErr >= gmErr {
		t.Fatalf("MF MAE %.3f not better than global mean %.3f", mfErr/float64(len(held)), gmErr/float64(len(held)))
	}
}

func TestDeterministicTraining(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 75, Users: 30, Items: 40, RatingsPerUser: 10})
	a := Train(c.Ratings, c.Catalog, Options{Seed: 5, Epochs: 5})
	b := Train(c.Ratings, c.Catalog, Options{Seed: 5, Epochs: 5})
	for _, it := range c.Catalog.Items() {
		pa, errA := a.Predict(1, it.ID)
		pb, errB := b.Predict(1, it.ID)
		if (errA == nil) != (errB == nil) || pa.Score != pb.Score {
			t.Fatalf("training not deterministic at item %d: %v vs %v", it.ID, pa.Score, pb.Score)
		}
	}
}

func TestRecommendSortedExcludesRated(t *testing.T) {
	c, md := trainSmall(t, Options{Seed: 1})
	u := model.UserID(2)
	recs := md.Recommend(u, 10, recsys.ExcludeRated(c.Ratings, u))
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Score < recs[i].Score {
			t.Fatal("not sorted")
		}
	}
	for _, p := range recs {
		if _, rated := c.Ratings.Get(u, p.Item); rated {
			t.Fatal("rated item recommended")
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Factors != 16 || o.Epochs != 30 || o.LearningRate != 0.01 || o.Regularization != 0.05 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestFactorNorms(t *testing.T) {
	_, md := trainSmall(t, Options{Seed: 1, Factors: 8})
	norms := md.FactorNorms()
	if len(norms) != 8 {
		t.Fatalf("norms = %v", norms)
	}
	var nonzero int
	for _, v := range norms {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("all factors collapsed to zero")
	}
}

func TestName(t *testing.T) {
	_, md := trainSmall(t, Options{Seed: 1, Epochs: 1})
	if md.Name() != "matrix-factorisation" {
		t.Fatal("name")
	}
}

func BenchmarkTrain(b *testing.B) {
	c := dataset.Movies(dataset.Config{Seed: 77, Users: 100, Items: 150, RatingsPerUser: 25})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Train(c.Ratings, c.Catalog, Options{Seed: uint64(i + 1), Epochs: 10})
	}
}
