// The trainer family behind the recsys.ModelTrainer seam: the original
// FunkSVD SGD, ALS-WR (alternating least squares with weighted-λ
// regularization, Zhou et al.), and a Paterek-style regularized SVD
// without bias terms. All three are deterministic in Options.Seed and
// produce the same Model shape, so the lifecycle machinery (artifact
// store, fold-in, factor explanations) is trainer-agnostic.

package mf

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/recsys"
	"repro/internal/rng"
)

// Trainer is the common interface of the MF trainer family — an alias
// of recsys.ModelTrainer so mf trainers plug directly into
// core.WithTrainer without an adapter.
type Trainer = recsys.ModelTrainer

// SGD is the FunkSVD trainer (biased stochastic gradient descent) as a
// Trainer value.
type SGD struct{ Opts Options }

// Name implements recsys.Named.
func (SGD) Name() string { return "sgd" }

// Train implements recsys.ModelTrainer.
func (t SGD) Train(m *model.Matrix, cat *model.Catalog) recsys.Recommender {
	return Train(m, cat, t.Opts)
}

// ALSWR is the alternating-least-squares trainer with weighted-λ
// regularization: each sweep solves every user's factor vector against
// fixed item factors, then every item's against fixed user factors,
// with the ridge term scaled by the row's rating count so heavy raters
// are regularized proportionally.
type ALSWR struct{ Opts Options }

// Name implements recsys.Named.
func (ALSWR) Name() string { return "als-wr" }

// Train implements recsys.ModelTrainer.
func (t ALSWR) Train(m *model.Matrix, cat *model.Catalog) recsys.Recommender {
	return TrainALSWR(m, cat, t.Opts)
}

// RSVD is the Paterek-style regularized-SVD trainer: plain factor
// inner product around the global mean, no bias terms, SGD updates.
type RSVD struct{ Opts Options }

// Name implements recsys.Named.
func (RSVD) Name() string { return "rsvd" }

// Train implements recsys.ModelTrainer.
func (t RSVD) Train(m *model.Matrix, cat *model.Catalog) recsys.Recommender {
	return TrainRSVD(m, cat, t.Opts)
}

// TrainerNames lists the registered trainer names, for flag validation
// and help text.
func TrainerNames() []string { return []string{"sgd", "als-wr", "rsvd"} }

// NewTrainer resolves a trainer by name ("als" is accepted for
// "als-wr"). Unknown names error with the known set, so flag
// validation can surface it verbatim.
func NewTrainer(name string, opts Options) (Trainer, error) {
	switch name {
	case "sgd":
		return SGD{Opts: opts}, nil
	case "als", "als-wr":
		return ALSWR{Opts: opts}, nil
	case "rsvd":
		return RSVD{Opts: opts}, nil
	default:
		return nil, fmt.Errorf("mf: unknown trainer %q (known: %s)", name, strings.Join(TrainerNames(), ", "))
	}
}

// biasDamping is the shrinkage constant of the damped-mean bias
// estimates ALS-WR (and fold-in) use: bias = Σ residual / (damping +
// n). Small rating counts shrink toward zero instead of overfitting.
const biasDamping = 10.0

// TrainALSWR fits a model by alternating least squares. Biases are
// damped residual means computed once up front; the factors then fit
// the remaining residual. Iteration order is fully sorted, so the
// result is deterministic in opts.Seed (which drives only the item
// factor initialisation).
func TrainALSWR(m *model.Matrix, cat *model.Catalog, opts Options) *Model {
	opts = opts.withDefaults()
	r := rng.New(opts.Seed ^ 0xa15d)
	md := newModel(cat, opts, "als-wr", true, m.GlobalMean())

	users := m.Users()
	itemSet := map[model.ItemID]bool{}
	for _, u := range users {
		for i := range m.UserRatings(u) {
			itemSet[i] = true
		}
		md.trainCount[u] = len(m.UserRatings(u))
	}
	items := make([]model.ItemID, 0, len(itemSet))
	for i := range itemSet {
		items = append(items, i)
	}
	sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })

	// Damped-mean biases: items first (against the global mean), then
	// users (against mean + item bias). Both sums run in sorted key
	// order — float addition is not associative, so summing in map
	// iteration order would break bit-determinism of the checksum.
	for _, i := range items {
		ratings := m.ItemRatings(i)
		raters := make([]model.UserID, 0, len(ratings))
		for u := range ratings {
			raters = append(raters, u)
		}
		sort.Slice(raters, func(a, b int) bool { return raters[a] < raters[b] })
		var sum float64
		for _, u := range raters {
			sum += ratings[u] - md.mean
		}
		md.itemBias[i] = sum / (biasDamping + float64(len(raters)))
	}
	for _, u := range users {
		ratings := m.UserRatings(u)
		ids := make([]model.ItemID, 0, len(ratings))
		for i := range ratings {
			ids = append(ids, i)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		var sum float64
		for _, i := range ids {
			sum += ratings[i] - md.mean - md.itemBias[i]
		}
		md.userBias[u] = sum / (biasDamping + float64(len(ids)))
	}

	// Seeded item-factor initialisation in sorted item order; user
	// factors start at zero and are set by the first solve.
	for _, i := range items {
		f := make([]float64, opts.Factors)
		for k := range f {
			f[k] = r.Norm(0, 0.1)
		}
		md.itemFactor[i] = f
	}
	for _, u := range users {
		md.userFactor[u] = make([]float64, opts.Factors)
	}

	for sweep := 0; sweep < opts.Epochs; sweep++ {
		for _, u := range users {
			md.userFactor[u] = md.solveUserFactors(m, u)
		}
		for _, i := range items {
			md.itemFactor[i] = md.solveItemFactors(m, i)
		}
	}
	return md
}

// solveUserFactors computes u's ridge-regression factor vector against
// the fixed item factors: argmin Σ (resid − q·x)² + λ·n·‖x‖².
func (md *Model) solveUserFactors(m *model.Matrix, u model.UserID) []float64 {
	ratings := m.UserRatings(u)
	ids := make([]model.ItemID, 0, len(ratings))
	for i := range ratings {
		if md.itemFactor[i] != nil {
			ids = append(ids, i)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	rows := make([][]float64, 0, len(ids))
	resid := make([]float64, 0, len(ids))
	for _, i := range ids {
		rows = append(rows, md.itemFactor[i])
		resid = append(resid, ratings[i]-md.mean-md.userBias[u]-md.itemBias[i])
	}
	return ridgeSolve(rows, resid, md.opts.Regularization, md.opts.Factors)
}

// solveItemFactors is the item-side mirror of solveUserFactors.
func (md *Model) solveItemFactors(m *model.Matrix, i model.ItemID) []float64 {
	ratings := m.ItemRatings(i)
	ids := make([]model.UserID, 0, len(ratings))
	for u := range ratings {
		if md.userFactor[u] != nil {
			ids = append(ids, u)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	rows := make([][]float64, 0, len(ids))
	resid := make([]float64, 0, len(ids))
	for _, u := range ids {
		rows = append(rows, md.userFactor[u])
		resid = append(resid, ratings[u]-md.mean-md.userBias[u]-md.itemBias[i])
	}
	return ridgeSolve(rows, resid, md.opts.Regularization, md.opts.Factors)
}

// ridgeSolve solves the k×k normal equations (QᵀQ + λ·n·I)x = Qᵀr by
// Gaussian elimination with partial pivoting. The weighted-λ term
// keeps the system positive definite whenever λ > 0; an empty row set
// returns the zero vector.
func ridgeSolve(rows [][]float64, resid []float64, lambda float64, k int) []float64 {
	x := make([]float64, k)
	if len(rows) == 0 {
		return x
	}
	lam := lambda * float64(len(rows))
	if lam <= 0 {
		lam = 1e-9
	}
	a := make([][]float64, k)
	b := make([]float64, k)
	for i := range a {
		a[i] = make([]float64, k)
		a[i][i] = lam
	}
	for ri, q := range rows {
		for i := 0; i < k; i++ {
			qi := q[i]
			if qi == 0 {
				continue
			}
			b[i] += resid[ri] * qi
			for j := 0; j < k; j++ {
				a[i][j] += qi * q[j]
			}
		}
	}
	// Forward elimination with partial pivoting.
	for col := 0; col < k; col++ {
		pivot := col
		for row := col + 1; row < k; row++ {
			if abs(a[row][col]) > abs(a[pivot][col]) {
				pivot = row
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		p := a[col][col]
		if p == 0 {
			continue
		}
		for row := col + 1; row < k; row++ {
			f := a[row][col] / p
			if f == 0 {
				continue
			}
			for j := col; j < k; j++ {
				a[row][j] -= f * a[col][j]
			}
			b[row] -= f * b[col]
		}
	}
	// Back substitution.
	for i := k - 1; i >= 0; i-- {
		if a[i][i] == 0 {
			x[i] = 0
			continue
		}
		s := b[i]
		for j := i + 1; j < k; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TrainRSVD fits a bias-free regularized SVD: prediction is the global
// mean plus the factor inner product, trained by SGD over a seeded
// shuffled example order. Distinct from Train (FunkSVD) in that no
// bias terms are fitted — the factors carry everything.
func TrainRSVD(m *model.Matrix, cat *model.Catalog, opts Options) *Model {
	opts = opts.withDefaults()
	r := rng.New(opts.Seed ^ 0x45d7)
	md := newModel(cat, opts, "rsvd", false, m.GlobalMean())
	exs := examples(m)
	for _, ex := range exs {
		md.trainCount[ex.u]++
	}
	factors := func() []float64 {
		f := make([]float64, opts.Factors)
		for k := range f {
			f[k] = r.Norm(0, 0.1)
		}
		return f
	}
	for _, ex := range exs {
		if md.userFactor[ex.u] == nil {
			md.userFactor[ex.u] = factors()
		}
		if md.itemFactor[ex.i] == nil {
			md.itemFactor[ex.i] = factors()
		}
	}
	lr, reg := opts.LearningRate, opts.Regularization
	order := make([]int, len(exs))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		r.ShuffleInts(order)
		for _, idx := range order {
			ex := exs[idx]
			uf, itf := md.userFactor[ex.u], md.itemFactor[ex.i]
			err := ex.v - md.raw(ex.u, ex.i)
			for k := 0; k < opts.Factors; k++ {
				du := lr * (err*itf[k] - reg*uf[k])
				di := lr * (err*uf[k] - reg*itf[k])
				uf[k] += du
				itf[k] += di
			}
		}
	}
	return md
}
