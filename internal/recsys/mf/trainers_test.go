package mf

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
)

// trainBy trains the small community with one named trainer.
func trainBy(t testing.TB, name string, opts Options) (*dataset.Community, *Model) {
	t.Helper()
	c := dataset.Movies(dataset.Config{Seed: 71, Users: 80, Items: 100, RatingsPerUser: 25})
	tr, err := NewTrainer(name, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, tr.Train(c.Ratings, c.Catalog).(*Model)
}

func TestTrainerNamesResolve(t *testing.T) {
	for _, name := range TrainerNames() {
		tr, err := NewTrainer(name, Options{Seed: 1})
		if err != nil {
			t.Fatalf("NewTrainer(%q): %v", name, err)
		}
		if tr.Name() != name {
			t.Fatalf("NewTrainer(%q).Name() = %q", name, tr.Name())
		}
	}
}

func TestTrainerAliasALS(t *testing.T) {
	tr, err := NewTrainer("als", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "als-wr" {
		t.Fatalf("alias resolved to %q", tr.Name())
	}
}

func TestTrainerUnknownNameErrors(t *testing.T) {
	_, err := NewTrainer("deep-wide", Options{})
	if err == nil {
		t.Fatal("no error for unknown trainer")
	}
	for _, name := range TrainerNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list known trainer %q", err, name)
		}
	}
}

func TestTrainerProvenance(t *testing.T) {
	for _, name := range TrainerNames() {
		_, md := trainBy(t, name, Options{Seed: 2, Epochs: 3})
		if md.TrainerName() != name {
			t.Fatalf("trainer %q produced model stamped %q", name, md.TrainerName())
		}
	}
}

// Every trainer must be bit-deterministic in its seed: the artifact
// checksum is the proof the lifecycle relies on.
func TestTrainerDeterministicChecksums(t *testing.T) {
	for _, name := range TrainerNames() {
		t.Run(name, func(t *testing.T) {
			_, a := trainBy(t, name, Options{Seed: 9, Epochs: 4})
			_, b := trainBy(t, name, Options{Seed: 9, Epochs: 4})
			if a.Checksum() != b.Checksum() {
				t.Fatalf("%s: same seed, different checksums %016x vs %016x",
					name, a.Checksum(), b.Checksum())
			}
			_, c := trainBy(t, name, Options{Seed: 10, Epochs: 4})
			if a.Checksum() == c.Checksum() {
				t.Fatalf("%s: different seeds collided on %016x", name, a.Checksum())
			}
		})
	}
}

// Every trainer must fit the training data better than the global
// mean — the floor below which a latent-factor model learned nothing.
func TestTrainersBeatMeanOnTrainingData(t *testing.T) {
	for _, name := range TrainerNames() {
		t.Run(name, func(t *testing.T) {
			c, md := trainBy(t, name, Options{Seed: 5})
			gm := c.Ratings.GlobalMean()
			var mfErr, gmErr float64
			var n int
			for _, u := range c.Ratings.Users() {
				for i, v := range c.Ratings.UserRatings(u) {
					p, err := md.Predict(u, i)
					if err != nil {
						continue
					}
					mfErr += math.Abs(p.Score - v)
					gmErr += math.Abs(gm - v)
					n++
				}
			}
			if n == 0 {
				t.Fatal("no predictions")
			}
			if mfErr >= gmErr {
				t.Fatalf("%s training MAE %.3f not better than global mean %.3f",
					name, mfErr/float64(n), gmErr/float64(n))
			}
		})
	}
}

func TestTrainersPredictOnScale(t *testing.T) {
	for _, name := range TrainerNames() {
		t.Run(name, func(t *testing.T) {
			c, md := trainBy(t, name, Options{Seed: 5})
			for _, it := range c.Catalog.Items()[:20] {
				p, err := md.Predict(1, it.ID)
				if err != nil {
					t.Fatal(err)
				}
				if p.Score < model.MinRating || p.Score > model.MaxRating {
					t.Fatalf("%s: score %v off scale", name, p.Score)
				}
			}
		})
	}
}

func TestRSVDFitsNoBiases(t *testing.T) {
	_, md := trainBy(t, "rsvd", Options{Seed: 5, Epochs: 3})
	if len(md.userBias) != 0 || len(md.itemBias) != 0 {
		t.Fatalf("rsvd fitted biases: %d user, %d item", len(md.userBias), len(md.itemBias))
	}
	if md.hasBias {
		t.Fatal("rsvd model claims hasBias")
	}
}

func TestRidgeSolveRecoversExactSolution(t *testing.T) {
	// Overdetermined consistent system with tiny λ: the solve must
	// recover the generating vector to numerical precision.
	want := []float64{1.5, -2.0, 0.25}
	rows := [][]float64{
		{1, 0, 0}, {0, 1, 0}, {0, 0, 1},
		{1, 1, 0}, {0, 1, 1}, {1, 1, 1},
	}
	resid := make([]float64, len(rows))
	for ri, q := range rows {
		for k := range want {
			resid[ri] += q[k] * want[k]
		}
	}
	got := ridgeSolve(rows, resid, 1e-12, len(want))
	for k := range want {
		if math.Abs(got[k]-want[k]) > 1e-6 {
			t.Fatalf("x[%d] = %v, want %v", k, got[k], want[k])
		}
	}
}

func TestRidgeSolveEmptyRowsIsZero(t *testing.T) {
	got := ridgeSolve(nil, nil, 0.05, 4)
	for k, v := range got {
		if v != 0 {
			t.Fatalf("x[%d] = %v, want 0", k, v)
		}
	}
}
