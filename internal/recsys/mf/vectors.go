package mf

import (
	"sort"

	"repro/internal/ann"
	"repro/internal/model"
)

// This file exposes a trained factorisation to the ANN subsystem.
//
// The embedding is the standard MIPS reduction of the biased MF score:
// item i maps to [itemFactor(i)..., itemBias(i)] and user u queries
// with [userFactor(u)..., 1], so query·item = uf·if + ib — exactly
// raw(u, i) minus the per-user constant mean + userBias(u), which
// cannot change the user's item ranking. Crucially, fold-in
// (RebindMatrix) re-solves only user-side state and shares the item
// bias and factor maps frozen between full rebuilds, so an index built
// from these vectors stays *exact* across every write-path fold-in
// until the next trained swap publishes a new model.

// ANNItemVectors implements ann.ItemVectorSource: one vector per
// trained item, sorted by ID.
func (md *Model) ANNItemVectors() []ann.Vector {
	if len(md.itemFactor) == 0 {
		return nil
	}
	ids := make([]model.ItemID, 0, len(md.itemFactor))
	for i := range md.itemFactor {
		ids = append(ids, i)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	dim := len(md.itemFactor[ids[0]]) + 1
	out := make([]ann.Vector, 0, len(ids))
	for _, i := range ids {
		f := md.itemFactor[i]
		if len(f)+1 != dim {
			continue // defensive: skip malformed rows rather than poison the index
		}
		e := make([]float32, dim)
		for k, x := range f {
			e[k] = float32(x)
		}
		e[dim-1] = float32(md.itemBias[i])
		out = append(out, ann.Vector{ID: int64(i), Elems: e})
	}
	return out
}

// ANNUserQuery implements ann.UserQuerySource: the user's factor
// vector with a trailing 1 to pick up the item bias. ok is false for
// users the model has not folded in, signalling the cold-start
// fallback.
func (md *Model) ANNUserQuery(user int64) ([]float32, bool) {
	uf, ok := md.userFactor[model.UserID(user)]
	if !ok {
		return nil, false
	}
	q := make([]float32, len(uf)+1)
	for k, x := range uf {
		q[k] = float32(x)
	}
	q[len(uf)] = 1
	return q, true
}
