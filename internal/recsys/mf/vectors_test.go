package mf

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
)

func trainedModel(t *testing.T) (*dataset.Community, *Model) {
	t.Helper()
	c := dataset.Movies(dataset.Config{Seed: 11, Users: 20, Items: 30, RatingsPerUser: 10})
	md := Train(c.Ratings, c.Catalog, Options{Seed: 11, Factors: 6, Epochs: 4})
	return c, md
}

func TestANNItemVectorsSortedAndSized(t *testing.T) {
	_, md := trainedModel(t)
	vecs := md.ANNItemVectors()
	if len(vecs) == 0 {
		t.Fatal("no item vectors")
	}
	dim := len(vecs[0].Elems)
	for k, v := range vecs {
		if k > 0 && v.ID <= vecs[k-1].ID {
			t.Fatalf("item order not strictly ascending at %d: %d after %d", k, v.ID, vecs[k-1].ID)
		}
		if len(v.Elems) != dim {
			t.Fatalf("item %d dim = %d, want %d", v.ID, len(v.Elems), dim)
		}
	}
	if !reflect.DeepEqual(vecs, md.ANNItemVectors()) {
		t.Fatal("ANNItemVectors layout varies between calls")
	}
}

// TestANNQueryDotMatchesRawScore pins the MIPS reduction: query·item
// must equal the model's raw score minus the per-user constant
// (mean + userBias), which drops out of ranking.
func TestANNQueryDotMatchesRawScore(t *testing.T) {
	c, md := trainedModel(t)
	u := c.Ratings.Users()[0]
	q, ok := md.ANNUserQuery(int64(u))
	if !ok {
		t.Fatalf("no query for trained user %d", u)
	}
	vecs := md.ANNItemVectors()
	for _, v := range vecs[:5] {
		if len(q) != len(v.Elems) {
			t.Fatalf("query dim %d vs item dim %d", len(q), len(v.Elems))
		}
		var dot float64
		for k := range q {
			dot += float64(q[k]) * float64(v.Elems[k])
		}
		pred, err := md.Predict(u, model.ItemID(v.ID))
		if err != nil {
			t.Fatal(err)
		}
		constant := md.mean + md.userBias[u]
		// float32 round-trip tolerance.
		if diff := math.Abs(dot + constant - pred.Score); diff > 1e-3 {
			t.Fatalf("item %d: dot %.6f + const %.6f != raw %.6f (diff %.6f)",
				v.ID, dot, constant, pred.Score, diff)
		}
	}
}

func TestANNUserQueryColdUser(t *testing.T) {
	_, md := trainedModel(t)
	if _, ok := md.ANNUserQuery(1 << 40); ok {
		t.Fatal("query produced for a user the model never saw")
	}
}
