// Package recsys defines the interfaces shared by every recommendation
// algorithm in the repository, and ranking helpers built on them.
//
// The survey's Tables 3 and 4 classify systems by the *content* of
// their explanations — collaborative-based, content-based or
// preference-based — independent of the underlying algorithm. To make
// that separation concrete, recommenders here expose two things: a
// numeric Prediction (score plus confidence) through the common
// interface, and algorithm-specific *evidence* (neighbours, feature
// influences, utility breakdowns) through their own methods, which the
// explain package turns into user-facing explanations.
package recsys

import (
	"errors"
	"sort"

	"repro/internal/model"
)

// ErrColdStart is returned when an algorithm has no basis at all for a
// prediction (no overlapping ratings, no profile). Callers may fall
// back to item or global means — explicitly, so that the "frank"
// low-confidence path of Section 2.3 stays visible.
var ErrColdStart = errors.New("recsys: insufficient data for prediction")

// Prediction is one scored item.
type Prediction struct {
	Item  model.ItemID
	Score float64 // predicted rating on [MinRating, MaxRating]
	// Confidence in [0, 1]: how sure the recommender is of Score. The
	// paper's Section 4.6 distinguishes recommendation strength (Score)
	// from confidence; both are first-class here so personalities and
	// "frank" explanations can use them.
	Confidence float64
}

// Predictor predicts a single user-item rating.
type Predictor interface {
	Predict(u model.UserID, i model.ItemID) (Prediction, error)
}

// Recommender ranks candidate items for a user.
type Recommender interface {
	Predictor
	// Recommend returns up to n predictions sorted by descending score.
	// Items for which exclude returns true are skipped; a nil exclude
	// skips nothing. Implementations conventionally exclude items the
	// user has already rated themselves.
	Recommend(u model.UserID, n int, exclude func(model.ItemID) bool) []Prediction
}

// Name identifies an algorithm for provenance in hybrid explanations.
type Named interface {
	Name() string
}

// ModelTrainer produces a fully trained recommender from a rating
// matrix — the offline half of the versioned model lifecycle (see
// internal/modelstore and core.WithTrainer). Train must treat m as
// immutable input and be deterministic in the trainer's own
// configuration: equal matrices and equal seeds yield recommenders
// with byte-identical output. Trainers whose models implement
// MatrixRebinder additionally support incremental fold-in between
// full rebuilds.
type ModelTrainer interface {
	Named
	Train(m *model.Matrix, cat *model.Catalog) Recommender
}

// FactorShare is one latent dimension's contribution to a factorised
// prediction — the evidence behind "factors your taste shares with
// this item" explanations. The dimensions are anonymous by nature;
// exposing their weights keeps the explanation faithful to the model
// even though it cannot name what each factor means.
type FactorShare struct {
	Dim    int     // latent dimension index
	Weight float64 // signed contribution user[Dim] * item[Dim]
	Share  float64 // |Weight| / Σ|Weight| over all dimensions, in [0, 1]
}

// MatrixRebinder is the optional contract a Recommender implements to
// participate in snapshot-based concurrency (see DESIGN.md,
// "Concurrency model"). RebindMatrix returns a recommender equivalent
// to the receiver but reading m instead of the matrix it was built
// over, reusing whatever internal caches remain valid; entries derived
// from the touched users' ratings must be recomputed.
//
// Implementations must leave the receiver fully usable: goroutines
// still reading an older snapshot keep using it after a rebind. The
// returned recommender must itself implement MatrixRebinder, since the
// engine rebinds the latest generation on every subsequent write. A
// custom recommender installed on an engine without implementing this
// interface is served behind a read-write lock instead of lock-free
// snapshots.
type MatrixRebinder interface {
	RebindMatrix(m *model.Matrix, touched ...model.UserID) Recommender
}

// RankAll predicts every catalogue item for u with p, skipping
// excluded items and prediction failures, and returns the results
// sorted by descending score (ties broken by item ID for determinism).
func RankAll(p Predictor, cat *model.Catalog, u model.UserID, exclude func(model.ItemID) bool) []Prediction {
	preds := make([]Prediction, 0, cat.Len())
	for _, it := range cat.Items() {
		if exclude != nil && exclude(it.ID) {
			continue
		}
		pr, err := p.Predict(u, it.ID)
		if err != nil {
			continue
		}
		preds = append(preds, pr)
	}
	SortPredictions(preds)
	return preds
}

// SortPredictions orders predictions by descending score, breaking
// ties by ascending item ID so output is deterministic.
func SortPredictions(preds []Prediction) {
	sort.Slice(preds, func(a, b int) bool {
		if preds[a].Score != preds[b].Score {
			return preds[a].Score > preds[b].Score
		}
		return preds[a].Item < preds[b].Item
	})
}

// TopN truncates a sorted prediction list to at most n entries.
func TopN(preds []Prediction, n int) []Prediction {
	if n < 0 {
		n = 0
	}
	if n > len(preds) {
		n = len(preds)
	}
	return preds[:n]
}

// ExcludeRated returns an exclude function that skips items u has
// already rated in m — the standard candidate filter.
func ExcludeRated(m *model.Matrix, u model.UserID) func(model.ItemID) bool {
	rated := m.UserRatings(u)
	return func(i model.ItemID) bool {
		_, ok := rated[i]
		return ok
	}
}
