package recsys

import (
	"errors"
	"testing"

	"repro/internal/model"
)

type scoreByID struct{ failOn model.ItemID }

func (s scoreByID) Predict(u model.UserID, i model.ItemID) (Prediction, error) {
	if i == s.failOn {
		return Prediction{}, errors.New("boom")
	}
	return Prediction{Item: i, Score: float64(i % 7), Confidence: 1}, nil
}

func catN(n int) *model.Catalog {
	cat := model.NewCatalog("t")
	for i := 1; i <= n; i++ {
		cat.MustAdd(&model.Item{ID: model.ItemID(i)})
	}
	return cat
}

func TestRankAllSortsAndSkips(t *testing.T) {
	cat := catN(10)
	preds := RankAll(scoreByID{failOn: 5}, cat, 1, func(i model.ItemID) bool { return i == 3 })
	if len(preds) != 8 { // 10 minus excluded 3 minus failing 5
		t.Fatalf("got %d predictions", len(preds))
	}
	for i := 1; i < len(preds); i++ {
		if preds[i-1].Score < preds[i].Score {
			t.Fatal("not sorted by score")
		}
		if preds[i-1].Score == preds[i].Score && preds[i-1].Item >= preds[i].Item {
			t.Fatal("ties not broken by item id")
		}
	}
	for _, p := range preds {
		if p.Item == 3 || p.Item == 5 {
			t.Fatalf("item %d should have been skipped", p.Item)
		}
	}
}

func TestRankAllNilExclude(t *testing.T) {
	preds := RankAll(scoreByID{}, catN(4), 1, nil)
	if len(preds) != 4 {
		t.Fatalf("got %d", len(preds))
	}
}

func TestTopN(t *testing.T) {
	preds := []Prediction{{Item: 1}, {Item: 2}, {Item: 3}}
	if got := TopN(preds, 2); len(got) != 2 {
		t.Fatalf("TopN(2) = %d", len(got))
	}
	if got := TopN(preds, 10); len(got) != 3 {
		t.Fatalf("TopN(10) = %d", len(got))
	}
	if got := TopN(preds, -1); len(got) != 0 {
		t.Fatalf("TopN(-1) = %d", len(got))
	}
}

func TestExcludeRated(t *testing.T) {
	m := model.NewMatrix()
	m.Set(1, 10, 4)
	ex := ExcludeRated(m, 1)
	if !ex(10) || ex(11) {
		t.Fatal("ExcludeRated wrong")
	}
	// A user with no ratings excludes nothing.
	ex2 := ExcludeRated(m, 2)
	if ex2(10) {
		t.Fatal("empty user should exclude nothing")
	}
}
