package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/pipeline"
)

// BreakerOptions configures the circuit-breaker interceptor. The zero
// value is usable: every field has a default.
type BreakerOptions struct {
	// FailureThreshold is the run of consecutive trip-worthy failures
	// that opens the circuit. Default 5.
	FailureThreshold int
	// Cooldown is how long an open circuit rejects calls before moving
	// to half-open and admitting probes. Default 1s.
	Cooldown time.Duration
	// HalfOpenProbes is the number of consecutive successful probes a
	// half-open circuit needs to close again. Probes are admitted one
	// at a time. Default 1.
	HalfOpenProbes int
	// ShouldTrip decides whether an error counts toward opening the
	// circuit. Default: any non-nil error except context.Canceled.
	// Callers normally exclude domain outcomes (cold start, no
	// evidence) so a run of legitimate 404s cannot open a circuit.
	ShouldTrip func(error) bool
	// Stages selects which stages get a breaker; nil means all.
	Stages func(pipeline.StageInfo) bool
	// Recorder receives breaker_* events; nil discards them.
	Recorder Recorder
	// After schedules the open → half-open transition; it exists so
	// tests can trigger the cooldown deterministically instead of
	// sleeping. Default time.AfterFunc.
	After func(d time.Duration, f func())
	// Clock, when set, timestamps circuit trips so rejections can carry
	// the *remaining* cooldown as a retry-after hint. Nil (the default,
	// and the only lint-clean option inside determinism-checked
	// packages) reports the full Cooldown as a conservative hint.
	Clock func() time.Time
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 5
	}
	if o.Cooldown <= 0 {
		o.Cooldown = time.Second
	}
	if o.HalfOpenProbes <= 0 {
		o.HalfOpenProbes = 1
	}
	if o.ShouldTrip == nil {
		o.ShouldTrip = func(err error) bool {
			return err != nil && !errors.Is(err, context.Canceled)
		}
	}
	if o.After == nil {
		o.After = func(d time.Duration, f func()) { time.AfterFunc(d, f) }
	}
	o.Recorder = orNop(o.Recorder)
	return o
}

// Breaker returns an interceptor giving every wrapped stage its own
// circuit: closed while healthy, open (calls rejected with
// ErrBreakerOpen) after FailureThreshold consecutive trip-worthy
// failures, half-open (single probes admitted) after Cooldown, and
// closed again after HalfOpenProbes probe successes. State transitions
// are reported to the Recorder as breaker_* events.
func Breaker(opts BreakerOptions) pipeline.Interceptor {
	opts = opts.withDefaults()
	return func(info pipeline.StageInfo, next pipeline.Handler) pipeline.Handler {
		if opts.Stages != nil && !opts.Stages(info) {
			return next
		}
		b := &breakerState{opts: opts, info: info}
		return func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
			ok, hint := b.allow()
			if !ok {
				opts.Recorder.RecordEvent(ctx, info.Pipeline, info.Stage, EventBreakerReject)
				return nil, withHint(fmt.Errorf("stage %s/%s: %w", info.Pipeline, info.Stage, ErrBreakerOpen), hint)
			}
			resp, err := next(ctx, req)
			b.observe(ctx, err)
			return resp, err
		}
	}
}

// Circuit states.
const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// breakerState is one stage's circuit. A mutex (not atomics) keeps the
// state machine simple and provably consistent; the critical section
// is a handful of integer updates, far below stage-execution cost.
type breakerState struct {
	opts BreakerOptions
	info pipeline.StageInfo

	mu       sync.Mutex
	state    int
	fails    int       // consecutive trip-worthy failures while closed
	succ     int       // consecutive probe successes while half-open
	probing  bool      // a half-open probe is in flight
	gen      int       // open-generation; stale cooldown timers no-op
	openedAt time.Time // trip time, zero unless Clock is configured
}

// allow reports whether a call may proceed, reserving the half-open
// probe slot when applicable. For rejected calls hint is the suggested
// wait before retrying: the remaining cooldown when a Clock is
// configured, the full Cooldown otherwise, and zero for a busy
// half-open circuit (the probe outcome is imminent).
func (b *breakerState) allow() (ok bool, hint time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true, 0
	case stateHalfOpen:
		if b.probing {
			return false, 0
		}
		b.probing = true
		return true, 0
	default: // stateOpen
		hint = b.opts.Cooldown
		if b.opts.Clock != nil && !b.openedAt.IsZero() {
			if left := b.opts.Cooldown - b.opts.Clock().Sub(b.openedAt); left < hint {
				hint = left
			}
		}
		if hint < 0 {
			hint = 0
		}
		return false, hint
	}
}

// observe feeds one call outcome into the state machine.
func (b *breakerState) observe(ctx context.Context, err error) {
	trip := err != nil && b.opts.ShouldTrip(err)
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		if !trip {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.opts.FailureThreshold {
			b.open(ctx)
		}
	case stateHalfOpen:
		b.probing = false
		if trip {
			b.open(ctx)
			return
		}
		b.succ++
		if b.succ >= b.opts.HalfOpenProbes {
			b.state = stateClosed
			b.fails = 0
			b.opts.Recorder.RecordEvent(ctx, b.info.Pipeline, b.info.Stage, EventBreakerClose)
		}
	default:
		// stateOpen: an in-flight call admitted before the trip
		// completed; its outcome no longer matters.
	}
}

// open trips the circuit and schedules the half-open transition. ctx
// belongs to the request whose failure tripped it. Callers must hold
// b.mu.
func (b *breakerState) open(ctx context.Context) {
	b.state = stateOpen
	b.fails = 0
	b.succ = 0
	b.gen++
	b.openedAt = time.Time{}
	if b.opts.Clock != nil {
		b.openedAt = b.opts.Clock()
	}
	gen := b.gen
	b.opts.Recorder.RecordEvent(ctx, b.info.Pipeline, b.info.Stage, EventBreakerOpen)
	b.opts.After(b.opts.Cooldown, func() { b.halfOpen(gen) })
}

// halfOpen moves an open circuit of generation gen to half-open; a
// timer from a previous open generation is ignored. The transition is
// timer-driven, so no request context exists to attribute it to.
func (b *breakerState) halfOpen(gen int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != stateOpen || b.gen != gen {
		return
	}
	b.state = stateHalfOpen
	b.succ = 0
	b.probing = false
	b.opts.Recorder.RecordEvent(context.Background(), b.info.Pipeline, b.info.Stage, EventBreakerHalfOpen)
}
