package resilience

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/pipeline"
)

// Route binds one stage to a degraded-mode replacement handler. The
// handler has the ordinary stage signature: it may fill the request's
// working set and yield (nil response) so downstream stages keep
// running, or return a terminal response itself.
type Route struct {
	// Pipeline restricts the route to one pipeline; "" matches any.
	Pipeline string
	// Stage is the stage name the route protects.
	Stage string
	// Handler is the degraded-mode replacement.
	Handler pipeline.Handler
}

// FallbackOptions configures the fallback interceptor.
type FallbackOptions struct {
	// Routes are the degraded-mode replacements, matched first-wins.
	// A stage with no route is passed through untouched.
	Routes []Route
	// When decides whether an error warrants degraded serving.
	// Default: any non-nil error except context.Canceled (the caller
	// is gone) and ErrOverloaded (shedding means shed — serving
	// degraded work under overload defeats the point of refusing it).
	// Callers normally also exclude domain outcomes so a legitimate
	// not-found keeps its status code.
	When func(error) bool
	// Recorder receives fallback, fallback_error and panic events;
	// nil discards them.
	Recorder Recorder
}

func (o FallbackOptions) withDefaults() FallbackOptions {
	if o.When == nil {
		o.When = func(err error) bool {
			return err != nil &&
				!errors.Is(err, context.Canceled) &&
				!errors.Is(err, ErrOverloaded)
		}
	}
	o.Recorder = orNop(o.Recorder)
	return o
}

// Fallback returns an interceptor that reroutes a failed stage to its
// degraded-mode replacement: when the wrapped stage (including the
// breaker, retry, deadline and recovery layers composed inside it)
// returns an error matching When, the route's handler runs instead and
// the request is marked Degraded so the presentation layer can tag the
// response. If the degraded path itself fails, the stage error becomes
// ErrDegraded — the one case where degraded mode surfaces as a 503.
//
// Compose Fallback outside Breaker so an open circuit is absorbed
// into degraded serving, and inside Shed so overload rejections are
// not.
func Fallback(opts FallbackOptions) pipeline.Interceptor {
	opts = opts.withDefaults()
	return func(info pipeline.StageInfo, next pipeline.Handler) pipeline.Handler {
		route := matchRoute(opts.Routes, info)
		if route == nil {
			return next
		}
		degraded := route.Handler
		return func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
			resp, err := next(ctx, req)
			if err == nil || !opts.When(err) {
				return resp, err
			}
			var pe *pipeline.PanicError
			if errors.As(err, &pe) {
				opts.Recorder.RecordEvent(ctx, info.Pipeline, info.Stage, EventPanic)
			}
			opts.Recorder.RecordEvent(ctx, info.Pipeline, info.Stage, EventFallback)
			req.Degraded = true
			fresp, ferr := degraded(ctx, req)
			if ferr != nil {
				opts.Recorder.RecordEvent(ctx, info.Pipeline, info.Stage, EventFallbackError)
				return nil, fmt.Errorf("stage %s/%s: %w (primary: %v; fallback: %v)",
					info.Pipeline, info.Stage, ErrDegraded, err, ferr)
			}
			return fresp, nil
		}
	}
}

// matchRoute returns the first route matching info, or nil.
func matchRoute(routes []Route, info pipeline.StageInfo) *Route {
	for i := range routes {
		r := &routes[i]
		if r.Stage != info.Stage {
			continue
		}
		if r.Pipeline != "" && r.Pipeline != info.Pipeline {
			continue
		}
		return r
	}
	return nil
}
