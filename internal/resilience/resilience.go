// Package resilience hardens the serving pipeline against failure.
// The survey's trust aim (Table 1) is explicitly about keeping users
// confident in the system even when the recommender errs; for a
// service that means failing *gracefully* — shedding load it cannot
// carry, refusing to hammer a broken stage, retrying transient
// faults, and serving a cheaper degraded explanation instead of an
// error page — rather than failing closed.
//
// Everything here is a pipeline.Interceptor, composable with the
// stock Metrics/Deadline/Recover chain of internal/pipeline. The
// engine inserts them between Metrics and Deadline in this order:
//
//	Metrics ⟶ Shed ⟶ Fallback ⟶ Breaker ⟶ Retry ⟶ Deadline ⟶ Recover ⟶ stage
//
// The ordering is load-bearing:
//
//   - Shed is outermost of the four so overload is rejected before any
//     further work — including degraded work — is attempted; a shed
//     request is the one failure Fallback does not absorb.
//   - Fallback wraps Breaker so an open circuit (ErrBreakerOpen), a
//     retry-exhausted fault, a per-stage deadline, or a recovered
//     panic all reroute to the degraded handler.
//   - Breaker wraps Retry so the circuit counts post-retry outcomes: a
//     stage that succeeds on its second attempt is a success.
//   - Retry wraps Deadline so every attempt gets a fresh per-stage
//     deadline (WithStageTimeout), and its backoff jitter draws from a
//     seeded internal/rng stream — this package is covered by
//     recsyslint's determinism rule, so wall-clock reads and math/rand
//     are mechanically banned from it.
//
// The package is domain-agnostic: it never inspects requests, only
// errors. Callers supply the judgement calls — which errors should
// trip a breaker or deserve a fallback (infrastructure faults yes,
// domain outcomes like a cold-start user no) — via predicates.
package resilience

import (
	"context"
	"errors"
	"time"
)

// Sentinel errors of the resilience layer. internal/core re-exports
// them and the HTTP layer maps them onto 429/503 with Retry-After.
var (
	// ErrBreakerOpen is returned when a stage's circuit breaker is open
	// and no fallback route absorbs it. Maps to 503.
	ErrBreakerOpen = errors.New("resilience: circuit breaker open")
	// ErrOverloaded is returned when load shedding rejects a request
	// because a stage's concurrency limit and queue are full. Maps to
	// 429.
	ErrOverloaded = errors.New("resilience: overloaded, load shed")
	// ErrDegraded is returned when degraded-mode serving was attempted
	// and the fallback path itself failed. Maps to 503.
	ErrDegraded = errors.New("resilience: degraded-mode serving failed")
)

// Recorder counts resilience events (breaker transitions and
// rejections, shed rejections, retries, fallback activations) per
// pipeline stage. The engine's counters implement it; implementations
// must be safe for concurrent use, and cheap — breakers invoke it with
// internal locks held.
type Recorder interface {
	RecordEvent(pipeline, stage, event string)
}

// Event names passed to Recorder.RecordEvent.
const (
	EventBreakerOpen     = "breaker_open"      // circuit tripped closed → open
	EventBreakerHalfOpen = "breaker_half_open" // cooldown elapsed, probing
	EventBreakerClose    = "breaker_close"     // probe(s) succeeded, recovered
	EventBreakerReject   = "breaker_reject"    // call refused while open
	EventShedReject      = "shed_reject"       // limit + queue full, load shed
	EventRetry           = "retry"             // one re-attempt after a fault
	EventFallback        = "fallback"          // degraded handler invoked
	EventFallbackError   = "fallback_error"    // degraded handler also failed
	EventPanic           = "panic"             // recovered panic rerouted
)

// nopRecorder is the default when no Recorder is configured.
type nopRecorder struct{}

func (nopRecorder) RecordEvent(pipeline, stage, event string) {}

// orNop returns rec, or the no-op recorder when rec is nil.
func orNop(rec Recorder) Recorder {
	if rec == nil {
		return nopRecorder{}
	}
	return rec
}

// sleepCtx waits d or until ctx is done, whichever comes first,
// returning the context's error in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
