// Package resilience hardens the serving pipeline against failure.
// The survey's trust aim (Table 1) is explicitly about keeping users
// confident in the system even when the recommender errs; for a
// service that means failing *gracefully* — shedding load it cannot
// carry, refusing to hammer a broken stage, retrying transient
// faults, and serving a cheaper degraded explanation instead of an
// error page — rather than failing closed.
//
// Everything here is a pipeline.Interceptor, composable with the
// stock Metrics/Deadline/Recover chain of internal/pipeline. The
// engine inserts them between Metrics/Trace and Deadline in this
// order:
//
//	Metrics ⟶ Trace ⟶ Shed ⟶ Fallback ⟶ Breaker ⟶ Retry ⟶ Deadline ⟶ Recover ⟶ stage
//
// The ordering is load-bearing:
//
//   - Shed is outermost of the four so overload is rejected before any
//     further work — including degraded work — is attempted; a shed
//     request is the one failure Fallback does not absorb.
//   - Fallback wraps Breaker so an open circuit (ErrBreakerOpen), a
//     retry-exhausted fault, a per-stage deadline, or a recovered
//     panic all reroute to the degraded handler.
//   - Breaker wraps Retry so the circuit counts post-retry outcomes: a
//     stage that succeeds on its second attempt is a success.
//   - Retry wraps Deadline so every attempt gets a fresh per-stage
//     deadline (WithStageTimeout), and its backoff jitter draws from a
//     seeded internal/rng stream — this package is covered by
//     recsyslint's determinism rule, so wall-clock reads and math/rand
//     are mechanically banned from it.
//
// The package is domain-agnostic: it never inspects requests, only
// errors. Callers supply the judgement calls — which errors should
// trip a breaker or deserve a fallback (infrastructure faults yes,
// domain outcomes like a cold-start user no) — via predicates.
package resilience

import (
	"context"
	"errors"
	"time"
)

// Sentinel errors of the resilience layer. internal/core re-exports
// them and the HTTP layer maps them onto 429/503 with Retry-After.
var (
	// ErrBreakerOpen is returned when a stage's circuit breaker is open
	// and no fallback route absorbs it. Maps to 503.
	ErrBreakerOpen = errors.New("resilience: circuit breaker open")
	// ErrOverloaded is returned when load shedding rejects a request
	// because a stage's concurrency limit and queue are full. Maps to
	// 429.
	ErrOverloaded = errors.New("resilience: overloaded, load shed")
	// ErrDegraded is returned when degraded-mode serving was attempted
	// and the fallback path itself failed. Maps to 503.
	ErrDegraded = errors.New("resilience: degraded-mode serving failed")
)

// Recorder counts resilience events (breaker transitions and
// rejections, shed rejections, retries, fallback activations) per
// pipeline stage. The engine's counters implement it; implementations
// must be safe for concurrent use, and cheap — breakers invoke it with
// internal locks held.
//
// ctx is the request context of the call that triggered the event, so
// an implementation can attach the event to the request's trace as a
// child span; events with no owning request (a breaker's cooldown
// timer firing) carry a contextless background context. Recorders
// must not retain ctx.
type Recorder interface {
	RecordEvent(ctx context.Context, pipeline, stage, event string)
}

// Event names passed to Recorder.RecordEvent.
const (
	EventBreakerOpen     = "breaker_open"      // circuit tripped closed → open
	EventBreakerHalfOpen = "breaker_half_open" // cooldown elapsed, probing
	EventBreakerClose    = "breaker_close"     // probe(s) succeeded, recovered
	EventBreakerReject   = "breaker_reject"    // call refused while open
	EventShedReject      = "shed_reject"       // limit + queue full, load shed
	EventRetry           = "retry"             // one re-attempt after a fault
	EventFallback        = "fallback"          // degraded handler invoked
	EventFallbackError   = "fallback_error"    // degraded handler also failed
	EventPanic           = "panic"             // recovered panic rerouted
)

// nopRecorder is the default when no Recorder is configured.
type nopRecorder struct{}

func (nopRecorder) RecordEvent(ctx context.Context, pipeline, stage, event string) {}

// hintedError carries a retry-after estimate alongside a rejection.
// It wraps rather than replaces so errors.Is chains to the sentinels
// (ErrBreakerOpen, ErrOverloaded) keep working.
type hintedError struct {
	err   error
	after time.Duration
}

func (h *hintedError) Error() string                 { return h.err.Error() }
func (h *hintedError) Unwrap() error                 { return h.err }
func (h *hintedError) RetryAfterHint() time.Duration { return h.after }

// withHint attaches a retry-after estimate to err. Non-positive hints
// are attached as-is; extraction clamps, not construction, so callers
// can distinguish "retry immediately" from "no estimate".
func withHint(err error, after time.Duration) error {
	return &hintedError{err: err, after: after}
}

// RetryAfterHint extracts a retry-after estimate from a rejection
// error, if one was attached: an open breaker reports its remaining
// cooldown, a shed rejection estimates queue drain time. ok is false
// when the error chain carries no hint — the caller should fall back
// to a configured default.
func RetryAfterHint(err error) (d time.Duration, ok bool) {
	var h interface{ RetryAfterHint() time.Duration }
	if errors.As(err, &h) {
		return h.RetryAfterHint(), true
	}
	return 0, false
}

// orNop returns rec, or the no-op recorder when rec is nil.
func orNop(rec Recorder) Recorder {
	if rec == nil {
		return nopRecorder{}
	}
	return rec
}

// sleepCtx waits d or until ctx is done, whichever comes first,
// returning the context's error in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
