package resilience

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/pipeline"
)

// eventLog is a Recorder that accumulates events for assertions.
type eventLog struct {
	mu sync.Mutex
	m  map[string]int
}

func newEventLog() *eventLog { return &eventLog{m: make(map[string]int)} }

func (l *eventLog) RecordEvent(ctx context.Context, pipe, stage, event string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.m[pipe+"/"+stage+"/"+event]++
}

func (l *eventLog) count(key string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.m[key]
}

// manualClock is the After seam: it captures scheduled cooldown
// callbacks so tests drive the open → half-open transition explicitly
// instead of sleeping.
type manualClock struct {
	mu      sync.Mutex
	pending []func()
}

func (c *manualClock) After(d time.Duration, f func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pending = append(c.pending, f)
}

// fire runs and clears all captured callbacks.
func (c *manualClock) fire() {
	c.mu.Lock()
	fs := c.pending
	c.pending = nil
	c.mu.Unlock()
	for _, f := range fs {
		f()
	}
}

// onePipeline builds a single-stage "p"/"s" pipeline wrapped by ics.
func onePipeline(h pipeline.Handler, ics ...pipeline.Interceptor) *pipeline.Pipeline {
	return pipeline.New("p", []pipeline.Stage{{Name: "s", Run: h}}, ics...)
}

func okHandler(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
	return &pipeline.Response{}, nil
}

// TestBreakerTransitions walks the full state machine — closed → open
// → half-open → closed — with the cooldown driven by the manual clock,
// and checks every transition is observable as a recorder event.
func TestBreakerTransitions(t *testing.T) {
	clock := &manualClock{}
	log := newEventLog()
	inj := fault.NewInjector(1, fault.Rule{Stage: "s", Nth: 1, Count: 3, Err: fault.ErrInjected})
	p := onePipeline(okHandler,
		Breaker(BreakerOptions{FailureThreshold: 3, After: clock.After, Recorder: log}),
		inj.Interceptor(),
	)
	ctx := context.Background()

	// Three injected failures open the circuit.
	for i := 0; i < 3; i++ {
		if _, err := p.Run(ctx, &pipeline.Request{}); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("call %d: err = %v, want injected fault", i, err)
		}
	}
	if got := log.count("p/s/" + EventBreakerOpen); got != 1 {
		t.Fatalf("breaker_open events = %d, want 1", got)
	}

	// While open, calls are rejected without reaching the stage: the
	// injector's rule is exhausted (Count: 3), so a call that got
	// through would succeed.
	if _, err := p.Run(ctx, &pipeline.Request{}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open circuit: err = %v, want ErrBreakerOpen", err)
	}
	if got := log.count("p/s/" + EventBreakerReject); got != 1 {
		t.Fatalf("breaker_reject events = %d, want 1", got)
	}

	// Cooldown elapses (manually): half-open, one successful probe
	// closes the circuit again.
	clock.fire()
	if got := log.count("p/s/" + EventBreakerHalfOpen); got != 1 {
		t.Fatalf("breaker_half_open events = %d, want 1", got)
	}
	if _, err := p.Run(ctx, &pipeline.Request{}); err != nil {
		t.Fatalf("probe: err = %v, want success", err)
	}
	if got := log.count("p/s/" + EventBreakerClose); got != 1 {
		t.Fatalf("breaker_close events = %d, want 1", got)
	}
	// Closed again: calls flow.
	if _, err := p.Run(ctx, &pipeline.Request{}); err != nil {
		t.Fatalf("after close: err = %v, want success", err)
	}
}

// TestBreakerHalfOpenAdmitsOneProbe pins the probe discipline: while a
// half-open probe is in flight, other calls are rejected.
func TestBreakerHalfOpenAdmitsOneProbe(t *testing.T) {
	clock := &manualClock{}
	inj := fault.NewInjector(1, fault.Rule{Stage: "s", Nth: 1, Count: 1, Err: fault.ErrInjected})
	probeEntered := make(chan struct{})
	probeRelease := make(chan struct{})
	blocking := func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
		close(probeEntered)
		<-probeRelease
		return &pipeline.Response{}, nil
	}
	p := onePipeline(blocking,
		Breaker(BreakerOptions{FailureThreshold: 1, After: clock.After}),
		inj.Interceptor(),
	)
	ctx := context.Background()
	if _, err := p.Run(ctx, &pipeline.Request{}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	clock.fire() // half-open

	done := make(chan error, 1)
	go func() {
		_, err := p.Run(ctx, &pipeline.Request{})
		done <- err
	}()
	<-probeEntered
	// The probe slot is taken; a concurrent call must be rejected.
	if _, err := p.Run(ctx, &pipeline.Request{}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second probe: err = %v, want ErrBreakerOpen", err)
	}
	close(probeRelease)
	if err := <-done; err != nil {
		t.Fatalf("probe: err = %v, want success", err)
	}
}

// TestBreakerConcurrentLoad hammers a breaker-wrapped stage from many
// goroutines while the fault injector fails a bounded prefix of calls,
// then heals. Run under -race this exercises the state machine's
// locking; the assertions check the circuit both opened and recovered,
// and that every call got exactly one of the three legal outcomes.
func TestBreakerConcurrentLoad(t *testing.T) {
	clock := &manualClock{}
	log := newEventLog()
	inj := fault.NewInjector(7, fault.Rule{Stage: "s", Nth: 1, Count: 50, Err: fault.ErrInjected})
	p := onePipeline(okHandler,
		Breaker(BreakerOptions{FailureThreshold: 5, After: clock.After, Recorder: log}),
		inj.Interceptor(),
	)
	ctx := context.Background()

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	var mu sync.Mutex
	outcomes := map[string]int{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_, err := p.Run(ctx, &pipeline.Request{})
				key := "ok"
				switch {
				case errors.Is(err, ErrBreakerOpen):
					key = "rejected"
				case errors.Is(err, fault.ErrInjected):
					key = "injected"
				case err != nil:
					key = fmt.Sprintf("unexpected: %v", err)
				}
				mu.Lock()
				outcomes[key]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if outcomes["rejected"] == 0 {
		t.Fatalf("no calls rejected by open breaker; outcomes = %v", outcomes)
	}
	if log.count("p/s/"+EventBreakerOpen) == 0 {
		t.Fatal("breaker never opened under injected fault load")
	}
	for key := range outcomes {
		if key != "ok" && key != "rejected" && key != "injected" {
			t.Fatalf("illegal outcome %q; outcomes = %v", key, outcomes)
		}
	}

	// Heal: each probe consumes at most one remaining injected fault
	// (the rule caps at 50 firings total), so driving cooldown + probe
	// repeatedly must eventually close the circuit for good.
	for i := 0; i < 60; i++ {
		clock.fire()
		if _, err := p.Run(ctx, &pipeline.Request{}); err == nil {
			break
		}
	}
	if _, err := p.Run(ctx, &pipeline.Request{}); err != nil {
		t.Fatalf("after heal: err = %v, want success", err)
	}
	if log.count("p/s/"+EventBreakerClose) == 0 {
		t.Fatal("breaker never closed after the fault cleared")
	}
}

// TestBreakerRejectCarriesCooldownHint: an open-circuit rejection must
// carry a retry-after hint — the remaining cooldown when a Clock is
// wired, the full cooldown otherwise.
func TestBreakerRejectCarriesCooldownHint(t *testing.T) {
	clock := &manualClock{}
	now := time.Unix(100, 0)
	cooldown := 8 * time.Second
	inj := fault.NewInjector(1, fault.Rule{Stage: "s", Nth: 1, Count: 1, Err: fault.ErrInjected})
	p := onePipeline(okHandler,
		Breaker(BreakerOptions{
			FailureThreshold: 1,
			Cooldown:         cooldown,
			After:            clock.After,
			Clock:            func() time.Time { return now },
		}),
		inj.Interceptor(),
	)
	ctx := context.Background()
	if _, err := p.Run(ctx, &pipeline.Request{}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}

	// Immediately after the trip the whole cooldown remains.
	_, err := p.Run(ctx, &pipeline.Request{})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if hint, ok := RetryAfterHint(err); !ok || hint != cooldown {
		t.Fatalf("hint = %v, %v; want %v, true", hint, ok, cooldown)
	}

	// 5s into the cooldown, 3s remain.
	now = now.Add(5 * time.Second)
	_, err = p.Run(ctx, &pipeline.Request{})
	if hint, ok := RetryAfterHint(err); !ok || hint != 3*time.Second {
		t.Fatalf("hint = %v, %v; want 3s, true", hint, ok)
	}

	// Without a Clock the hint degrades to the full cooldown.
	inj2 := fault.NewInjector(1, fault.Rule{Stage: "s", Nth: 1, Count: 1, Err: fault.ErrInjected})
	p2 := onePipeline(okHandler,
		Breaker(BreakerOptions{FailureThreshold: 1, Cooldown: cooldown, After: clock.After}),
		inj2.Interceptor(),
	)
	//lint:ignore dropped-error the injected failure only serves to trip the breaker
	_, _ = p2.Run(ctx, &pipeline.Request{})
	_, err = p2.Run(ctx, &pipeline.Request{})
	if hint, ok := RetryAfterHint(err); !ok || hint != cooldown {
		t.Fatalf("clockless hint = %v, %v; want %v, true", hint, ok, cooldown)
	}
}

// TestRetryAfterHintAbsent: plain errors carry no hint.
func TestRetryAfterHintAbsent(t *testing.T) {
	if hint, ok := RetryAfterHint(errors.New("plain")); ok || hint != 0 {
		t.Fatalf("hint = %v, %v; want 0, false", hint, ok)
	}
	if hint, ok := RetryAfterHint(nil); ok || hint != 0 {
		t.Fatalf("nil hint = %v, %v; want 0, false", hint, ok)
	}
}

// TestShedBoundsConcurrencyAndQueue checks the three shed outcomes
// with MaxConcurrent=1, MaxQueue=1: one running, one queued, the next
// rejected with ErrOverloaded — and the queued caller completing once
// the slot frees.
func TestShedBoundsConcurrencyAndQueue(t *testing.T) {
	log := newEventLog()
	entered := make(chan struct{})
	release := make(chan struct{})
	blocking := func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		return &pipeline.Response{}, nil
	}
	p := onePipeline(blocking, Shed(ShedOptions{MaxConcurrent: 1, MaxQueue: 1, DrainEstimate: 100 * time.Millisecond, Recorder: log}))
	ctx := context.Background()

	first := make(chan error, 1)
	go func() { _, err := p.Run(ctx, &pipeline.Request{}); first <- err }()
	<-entered // the slot is held

	queued := make(chan error, 1)
	go func() { _, err := p.Run(ctx, &pipeline.Request{}); queued <- err }()
	// Wait until the second caller is actually queued, not merely
	// launched, or the third call below could win the queue slot.
	// (Probes themselves record shed_reject events, hence the baseline.)
	for !shedQueueFull(p) {
		runtime.Gosched()
	}
	before := log.count("p/s/" + EventShedReject)

	_, err := p.Run(ctx, &pipeline.Request{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow call: err = %v, want ErrOverloaded", err)
	}
	// One caller queued, one slot, 100ms estimated service time: the
	// rejection advises (1+1)/1 service times = 200ms.
	if hint, ok := RetryAfterHint(err); !ok || hint != 200*time.Millisecond {
		t.Fatalf("hint = %v, %v; want 200ms, true", hint, ok)
	}
	if got := log.count("p/s/" + EventShedReject); got != before+1 {
		t.Fatalf("shed_reject events = %d, want %d", got, before+1)
	}

	close(release)
	if err := <-first; err != nil {
		t.Fatalf("first: err = %v", err)
	}
	if err := <-queued; err != nil {
		t.Fatalf("queued: err = %v", err)
	}
}

// TestShedQueuedCallerHonoursContext checks a waiter leaves the queue
// with the context's error when its request dies while queued.
func TestShedQueuedCallerHonoursContext(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	blocking := func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		return &pipeline.Response{}, nil
	}
	p := onePipeline(blocking, Shed(ShedOptions{MaxConcurrent: 1, MaxQueue: 1}))
	defer close(release)

	first := make(chan error, 1)
	go func() { _, err := p.Run(context.Background(), &pipeline.Request{}); first <- err }()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() { _, err := p.Run(ctx, &pipeline.Request{}); queued <- err }()
	for !shedQueueFull(p) {
		runtime.Gosched()
	}
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: err = %v, want context.Canceled", err)
	}
}

// shedQueueFull is a test-only probe: it cannot see the interceptor's
// internals, so it infers queue occupancy from the one observable
// signal — a probe call rejecting means limit+queue are full. The
// probe's context is pre-cancelled so that when the queue still has
// room the probe leaves it immediately instead of occupying the slot.
func shedQueueFull(p *pipeline.Pipeline) bool {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.Run(ctx, &pipeline.Request{})
	return errors.Is(err, ErrOverloaded)
}

// TestRetryRecoversTransientFault: first attempt fails, the retry
// succeeds; the backoff is observed through the Sleep seam and must lie
// in the equal-jitter window [base/2, base).
func TestRetryRecoversTransientFault(t *testing.T) {
	log := newEventLog()
	var slept []time.Duration
	var mu sync.Mutex
	sleep := func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
		return nil
	}
	base := 8 * time.Millisecond
	inj := fault.NewInjector(1, fault.Rule{Stage: "s", Nth: 1, Count: 1, Err: fault.ErrInjected})
	p := onePipeline(okHandler,
		Retry(RetryOptions{Attempts: 3, BaseDelay: base, Seed: 9, Sleep: sleep, Recorder: log}),
		inj.Interceptor(),
	)
	if _, err := p.Run(context.Background(), &pipeline.Request{}); err != nil {
		t.Fatalf("err = %v, want success on retry", err)
	}
	if got := log.count("p/s/" + EventRetry); got != 1 {
		t.Fatalf("retry events = %d, want 1", got)
	}
	if len(slept) != 1 {
		t.Fatalf("sleeps = %v, want exactly one backoff", slept)
	}
	if slept[0] < base/2 || slept[0] >= base {
		t.Fatalf("backoff %v outside equal-jitter window [%v, %v)", slept[0], base/2, base)
	}
}

// TestRetryBackoffDeterministicFromSeed: equal seeds produce equal
// jitter sequences — the property the determinism lint rule protects.
func TestRetryBackoffDeterministicFromSeed(t *testing.T) {
	run := func(seed uint64) []time.Duration {
		var slept []time.Duration
		sleep := func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		}
		inj := fault.NewInjector(1, fault.Rule{Stage: "s", Nth: 1, Err: fault.ErrInjected})
		p := onePipeline(okHandler,
			Retry(RetryOptions{Attempts: 4, BaseDelay: 4 * time.Millisecond, Seed: seed, Sleep: sleep}),
			inj.Interceptor(),
		)
		for i := 0; i < 5; i++ {
			//lint:ignore dropped-error every attempt is injected to fail; only the backoff sequence matters here
			_, _ = p.Run(context.Background(), &pipeline.Request{})
		}
		return slept
	}
	a, b := run(3), run(3)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("backoff sequences %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded backoff diverged at %d: %v vs %v", i, a, b)
		}
	}
}

// TestRetrySkipsNonRetryable: breaker rejections, sheds, cancellations
// and recovered panics must not be retried by default.
func TestRetrySkipsNonRetryable(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"breaker open", fmt.Errorf("stage p/s: %w", ErrBreakerOpen)},
		{"overloaded", fmt.Errorf("stage p/s: %w", ErrOverloaded)},
		{"cancelled", context.Canceled},
		{"panic", &pipeline.PanicError{Pipeline: "p", Stage: "s", Value: "boom"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			calls := 0
			failing := func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
				calls++
				return nil, tc.err
			}
			p := onePipeline(failing, Retry(RetryOptions{Attempts: 3}))
			if _, err := p.Run(context.Background(), &pipeline.Request{}); !errors.Is(err, tc.err) && !errors.As(err, new(*pipeline.PanicError)) {
				t.Fatalf("err = %v, want original", err)
			}
			if calls != 1 {
				t.Fatalf("calls = %d, want 1 (no retries)", calls)
			}
		})
	}
}

// TestFallbackServesDegraded: the routed degraded handler takes over
// on a matching failure, and the request is marked Degraded.
func TestFallbackServesDegraded(t *testing.T) {
	log := newEventLog()
	degraded := func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
		return &pipeline.Response{}, nil
	}
	inj := fault.NewInjector(1, fault.Rule{Stage: "s", Nth: 1, Err: fault.ErrInjected})
	p := onePipeline(okHandler,
		Fallback(FallbackOptions{
			Routes:   []Route{{Pipeline: "p", Stage: "s", Handler: degraded}},
			Recorder: log,
		}),
		inj.Interceptor(),
	)
	req := &pipeline.Request{}
	if _, err := p.Run(context.Background(), req); err != nil {
		t.Fatalf("err = %v, want degraded success", err)
	}
	if !req.Degraded {
		t.Fatal("request not marked Degraded")
	}
	if got := log.count("p/s/" + EventFallback); got != 1 {
		t.Fatalf("fallback events = %d, want 1", got)
	}
}

// TestFallbackRefusesOverload: shedding means shed — ErrOverloaded
// passes through untouched by default.
func TestFallbackRefusesOverload(t *testing.T) {
	degraded := func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
		return &pipeline.Response{}, nil
	}
	overloaded := func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
		return nil, fmt.Errorf("stage p/s: %w", ErrOverloaded)
	}
	p := onePipeline(overloaded,
		Fallback(FallbackOptions{Routes: []Route{{Stage: "s", Handler: degraded}}}),
	)
	req := &pipeline.Request{}
	if _, err := p.Run(context.Background(), req); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded passthrough", err)
	}
	if req.Degraded {
		t.Fatal("overloaded request must not be served degraded")
	}
}

// TestFallbackFailureBecomesErrDegraded: when the degraded path itself
// fails, the caller sees ErrDegraded carrying both causes.
func TestFallbackFailureBecomesErrDegraded(t *testing.T) {
	log := newEventLog()
	badFallback := func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
		return nil, errors.New("fallback also broken")
	}
	inj := fault.NewInjector(1, fault.Rule{Stage: "s", Nth: 1, Err: fault.ErrInjected})
	p := onePipeline(okHandler,
		Fallback(FallbackOptions{
			Routes:   []Route{{Stage: "s", Handler: badFallback}},
			Recorder: log,
		}),
		inj.Interceptor(),
	)
	_, err := p.Run(context.Background(), &pipeline.Request{})
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}
	if got := log.count("p/s/" + EventFallbackError); got != 1 {
		t.Fatalf("fallback_error events = %d, want 1", got)
	}
}

// TestFallbackReroutesRecoveredPanic composes the production ordering
// Fallback → Recover → chaos and checks an injected panic surfaces as
// degraded serving plus a panic event — stage context intact.
func TestFallbackReroutesRecoveredPanic(t *testing.T) {
	log := newEventLog()
	degraded := func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
		return &pipeline.Response{}, nil
	}
	inj := fault.NewInjector(1, fault.Rule{Stage: "s", Nth: 1, Panic: "injected panic"})
	p := onePipeline(okHandler,
		Fallback(FallbackOptions{
			Routes:   []Route{{Stage: "s", Handler: degraded}},
			Recorder: log,
		}),
		pipeline.Recover(),
		inj.Interceptor(),
	)
	req := &pipeline.Request{}
	if _, err := p.Run(context.Background(), req); err != nil {
		t.Fatalf("err = %v, want degraded success", err)
	}
	if !req.Degraded {
		t.Fatal("request not marked Degraded after recovered panic")
	}
	if got := log.count("p/s/" + EventPanic); got != 1 {
		t.Fatalf("panic events = %d, want 1", got)
	}
}
