package resilience

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/pipeline"
	"repro/internal/rng"
)

// RetryOptions configures the retry interceptor.
type RetryOptions struct {
	// Attempts is the total number of tries per stage execution,
	// including the first. Default 2; values below 2 disable retrying.
	Attempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// subsequent retry. Default 2ms.
	BaseDelay time.Duration
	// MaxDelay caps the (pre-jitter) backoff. Default 100ms.
	MaxDelay time.Duration
	// Seed seeds the jitter stream. All randomness routes through
	// internal/rng so runs are reproducible from the seed — the same
	// determinism contract recsyslint enforces on the experiment
	// packages. Default 1.
	Seed uint64
	// RetryWhen decides whether an error is worth another attempt.
	// Default: any non-nil error except context.Canceled, an open
	// breaker, a shed rejection, or a recovered panic. Retrying is
	// only sound for idempotent stages; the engine's read stages
	// qualify because they rebuild their working fields from scratch
	// on every run.
	RetryWhen func(error) bool
	// Stages selects which stages are retried; nil means all.
	Stages func(pipeline.StageInfo) bool
	// Recorder receives one retry event per re-attempt; nil discards.
	Recorder Recorder
	// Sleep waits out a backoff; it exists so tests can observe delays
	// without real time passing. Default: a timer honouring ctx.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (o RetryOptions) withDefaults() RetryOptions {
	if o.Attempts <= 0 {
		o.Attempts = 2
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 2 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 100 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RetryWhen == nil {
		o.RetryWhen = func(err error) bool {
			var pe *pipeline.PanicError
			return err != nil &&
				!errors.Is(err, context.Canceled) &&
				!errors.Is(err, ErrBreakerOpen) &&
				!errors.Is(err, ErrOverloaded) &&
				!errors.As(err, &pe)
		}
	}
	if o.Sleep == nil {
		o.Sleep = sleepCtx
	}
	o.Recorder = orNop(o.Recorder)
	return o
}

// Retry returns an interceptor that re-runs a failed stage up to
// Attempts times with exponential backoff and seeded equal-jitter
// (each delay is uniform in [d/2, d), d doubling per attempt). Compose
// it inside Breaker — the circuit should judge the post-retry outcome
// — and outside Deadline, so each attempt gets a fresh per-stage
// deadline. A retry never starts on a dead context.
func Retry(opts RetryOptions) pipeline.Interceptor {
	opts = opts.withDefaults()
	j := &jitterStream{rnd: rng.New(opts.Seed)}
	return func(info pipeline.StageInfo, next pipeline.Handler) pipeline.Handler {
		if (opts.Stages != nil && !opts.Stages(info)) || opts.Attempts < 2 {
			return next
		}
		return func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
			for attempt := 0; ; attempt++ {
				resp, err := next(ctx, req)
				if err == nil || attempt+1 >= opts.Attempts || !opts.RetryWhen(err) || ctx.Err() != nil {
					return resp, err
				}
				opts.Recorder.RecordEvent(ctx, info.Pipeline, info.Stage, EventRetry)
				if serr := opts.Sleep(ctx, j.backoff(opts, attempt)); serr != nil {
					// The parent context died mid-backoff; the stage's
					// own error is the more informative one to return.
					return nil, err
				}
			}
		}
	}
}

// jitterStream is the shared, mutex-guarded jitter source. One stream
// per Retry interceptor keeps draws seed-reproducible in sequential
// use (tests, experiments) while staying safe under concurrency.
type jitterStream struct {
	mu  sync.Mutex
	rnd *rng.RNG
}

// backoff computes the delay before retry number attempt (0-based):
// equal jitter over an exponentially growing, capped window.
func (j *jitterStream) backoff(opts RetryOptions, attempt int) time.Duration {
	d := opts.BaseDelay
	for i := 0; i < attempt && d < opts.MaxDelay; i++ {
		d *= 2
	}
	if d > opts.MaxDelay {
		d = opts.MaxDelay
	}
	j.mu.Lock()
	f := j.rnd.Float64()
	j.mu.Unlock()
	return d/2 + time.Duration(f*float64(d/2))
}
