package resilience

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/pipeline"
)

// ShedOptions configures the load-shedding interceptor.
type ShedOptions struct {
	// MaxConcurrent bounds how many executions of one stage may run at
	// once. Default 64.
	MaxConcurrent int
	// MaxQueue bounds how many callers may wait for a slot beyond
	// MaxConcurrent before new arrivals are rejected outright with
	// ErrOverloaded. Default: MaxConcurrent.
	MaxQueue int
	// Stages selects which stages are shed; nil means all.
	Stages func(pipeline.StageInfo) bool
	// Recorder receives shed_reject events; nil discards them.
	Recorder Recorder
}

func (o ShedOptions) withDefaults() ShedOptions {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 64
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = o.MaxConcurrent
	}
	o.Recorder = orNop(o.Recorder)
	return o
}

// Shed returns an interceptor that bounds each wrapped stage to
// MaxConcurrent simultaneous executions with a queue of at most
// MaxQueue waiters. A caller that finds both full is rejected
// immediately with ErrOverloaded (the HTTP layer answers 429 with
// Retry-After) — under overload, work the system cannot finish in time
// is cheapest to refuse before it starts. A queued caller whose
// context dies while waiting leaves with the context's error.
func Shed(opts ShedOptions) pipeline.Interceptor {
	opts = opts.withDefaults()
	return func(info pipeline.StageInfo, next pipeline.Handler) pipeline.Handler {
		if opts.Stages != nil && !opts.Stages(info) {
			return next
		}
		slots := make(chan struct{}, opts.MaxConcurrent)
		var queued atomic.Int64
		return func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
			select {
			case slots <- struct{}{}:
				// Fast path: a slot was free.
			default:
				if queued.Add(1) > int64(opts.MaxQueue) {
					queued.Add(-1)
					opts.Recorder.RecordEvent(info.Pipeline, info.Stage, EventShedReject)
					return nil, fmt.Errorf("stage %s/%s: %w", info.Pipeline, info.Stage, ErrOverloaded)
				}
				select {
				case slots <- struct{}{}:
					queued.Add(-1)
				case <-ctx.Done():
					queued.Add(-1)
					return nil, ctx.Err()
				}
			}
			defer func() { <-slots }()
			return next(ctx, req)
		}
	}
}
