package resilience

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/pipeline"
)

// ShedOptions configures the load-shedding interceptor.
type ShedOptions struct {
	// MaxConcurrent bounds how many executions of one stage may run at
	// once. Default 64.
	MaxConcurrent int
	// MaxQueue bounds how many callers may wait for a slot beyond
	// MaxConcurrent before new arrivals are rejected outright with
	// ErrOverloaded. Default: MaxConcurrent.
	MaxQueue int
	// Stages selects which stages are shed; nil means all.
	Stages func(pipeline.StageInfo) bool
	// Recorder receives shed_reject events; nil discards them.
	Recorder Recorder
	// DrainEstimate is the assumed per-execution service time used to
	// derive the retry-after hint on a shed rejection: with the queue
	// at depth q and MaxConcurrent slots draining in parallel, a
	// rejected caller is told to come back after roughly
	// (q+MaxConcurrent)/MaxConcurrent service times. Default 250ms.
	DrainEstimate time.Duration
}

func (o ShedOptions) withDefaults() ShedOptions {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 64
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = o.MaxConcurrent
	}
	if o.DrainEstimate <= 0 {
		o.DrainEstimate = 250 * time.Millisecond
	}
	o.Recorder = orNop(o.Recorder)
	return o
}

// Shed returns an interceptor that bounds each wrapped stage to
// MaxConcurrent simultaneous executions with a queue of at most
// MaxQueue waiters. A caller that finds both full is rejected
// immediately with ErrOverloaded (the HTTP layer answers 429 with
// Retry-After) — under overload, work the system cannot finish in time
// is cheapest to refuse before it starts. A queued caller whose
// context dies while waiting leaves with the context's error.
func Shed(opts ShedOptions) pipeline.Interceptor {
	opts = opts.withDefaults()
	return func(info pipeline.StageInfo, next pipeline.Handler) pipeline.Handler {
		if opts.Stages != nil && !opts.Stages(info) {
			return next
		}
		slots := make(chan struct{}, opts.MaxConcurrent)
		var queued atomic.Int64
		return func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
			select {
			case slots <- struct{}{}:
				// Fast path: a slot was free.
			default:
				if depth := queued.Add(1); depth > int64(opts.MaxQueue) {
					queued.Add(-1)
					opts.Recorder.RecordEvent(ctx, info.Pipeline, info.Stage, EventShedReject)
					// depth-1 callers are genuinely queued; each of the
					// MaxConcurrent slots must drain (queue/slots)+1
					// service times before a re-arrival could be admitted.
					hint := opts.DrainEstimate * time.Duration(depth-1+int64(opts.MaxConcurrent)) / time.Duration(opts.MaxConcurrent)
					return nil, withHint(fmt.Errorf("stage %s/%s: %w", info.Pipeline, info.Stage, ErrOverloaded), hint)
				}
				select {
				case slots <- struct{}{}:
					queued.Add(-1)
				case <-ctx.Done():
					queued.Add(-1)
					return nil, ctx.Err()
				}
			}
			defer func() { <-slots }()
			return next(ctx, req)
		}
	}
}
