// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the experiment harness.
//
// The experiments in this repository must be exactly reproducible from a
// seed, independent of Go version and of any other package's use of
// math/rand's global state. We therefore implement our own generator
// (xoshiro256** seeded via splitmix64) rather than relying on math/rand.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator.
// It implements xoshiro256** with splitmix64 seeding.
// The zero value is not usable; construct with New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed. Two generators constructed
// from the same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expansion of the seed into 256 bits of state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split returns a new generator derived from r's stream. The child is
// statistically independent of subsequent draws from r, which makes it
// safe to hand one child to each simulated user in an experiment.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be overkill
	// here; simple modulo bias is negligible for the ranges we use, but
	// we still reject to keep draws exactly uniform.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the Marsaglia
// polar method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Norm returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) Norm(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Bernoulli reports true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponential variate with the given rate (lambda).
// It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with non-positive rate")
	}
	// Guard against Log(0) by nudging the draw away from zero.
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(u) / rate
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher-Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen index weighted by weights. Weights
// must be non-negative and not all zero; otherwise Pick returns 0.
func (r *RNG) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	target := r.Float64() * total
	var acc float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Poisson returns a Poisson variate with the given mean using Knuth's
// method. Suitable for the small means used in our simulations.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
