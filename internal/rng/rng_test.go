package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for n := 1; n <= 40; n++ {
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestNormScaling(t *testing.T) {
	r := New(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Norm(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Fatalf("Norm(10,2) mean = %v", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(19)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestExpMean(t *testing.T) {
	r := New(23)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Exp(0)")
		}
	}()
	New(1).Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(29)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermIsPermutationQuick(t *testing.T) {
	r := New(31)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPickWeighted(t *testing.T) {
	r := New(37)
	weights := []float64{0, 1, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Pick(weights)]++
	}
	if counts[0] != 0 {
		t.Fatalf("picked zero-weight index %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestPickDegenerate(t *testing.T) {
	r := New(41)
	if got := r.Pick([]float64{0, 0}); got != 0 {
		t.Fatalf("Pick of all-zero weights = %d, want 0", got)
	}
	if got := r.Pick([]float64{5}); got != 0 {
		t.Fatalf("Pick of single weight = %d, want 0", got)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(43)
	const n = 50000
	var sum int
	for i := 0; i < n; i++ {
		sum += r.Poisson(3)
	}
	mean := float64(sum) / n
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("Poisson(3) mean = %v", mean)
	}
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(47)
	child := parent.Split()
	// The child stream must not simply mirror the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("parent and child agreed on %d of 100 draws", same)
	}
}

func TestShuffleCoversAllOrders(t *testing.T) {
	r := New(53)
	counts := map[[3]int]int{}
	for i := 0; i < 6000; i++ {
		s := []int{0, 1, 2}
		r.ShuffleInts(s)
		counts[[3]int{s[0], s[1], s[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("3-element shuffle produced %d distinct orders, want 6", len(counts))
	}
	for order, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("order %v occurred %d times out of 6000, far from uniform", order, c)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
