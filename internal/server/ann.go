// The ANN debug surface: GET /debug/ann reports the approximate
// candidate-generation index state when the backing Service keeps one
// — the engine's indexes on a single-engine server, every shard's on a
// sharded one — and /metrics grows recsys_ann_* lines. Feature-
// detected through small interfaces exactly like the cluster, model
// and WAL surfaces, so a brute-force server serves what it served
// before.

package server

import (
	"fmt"
	"io"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/core"
)

// ANNStater is implemented by single-engine backends that can report
// their ANN index state (core.Engine always does; the state carries
// Enabled=false without WithANN).
type ANNStater interface {
	ANNState() core.ANNState
}

// ShardANNStater is implemented by sharded backends (cluster.Router):
// per-shard ANN state in shard-ID order.
type ShardANNStater interface {
	ShardANN() []cluster.ShardANN
}

// hasANNSurface reports whether the backend serves approximate
// candidates and is worth registering /debug/ann for.
func hasANNSurface(svc any) bool {
	if sa, ok := svc.(ShardANNStater); ok {
		for _, sh := range sa.ShardANN() {
			if sh.ANN.Enabled {
				return true
			}
		}
		return false
	}
	as, ok := svc.(ANNStater)
	return ok && as.ANNState().Enabled
}

// handleANN serves GET /debug/ann: the backend's ANN index state,
// per shard on a sharded deployment.
func (s *Server) handleANN(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	if sa, ok := s.svc.(ShardANNStater); ok {
		writeJSON(w, http.StatusOK, map[string]any{"shards": sa.ShardANN()})
		return
	}
	as, ok := s.svc.(ANNStater)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("backend has no ANN index"))
		return
	}
	writeJSON(w, http.StatusOK, as.ANNState())
}

// writeANNMetrics renders the recsys_ann_* lines on /metrics:
// unlabelled for a single engine, shard-labelled for a cluster.
// Backends (or shards) without an ANN index emit nothing.
func (s *Server) writeANNMetrics(w http.ResponseWriter) {
	if sa, ok := s.svc.(ShardANNStater); ok {
		for _, sh := range sa.ShardANN() {
			if !sh.ANN.Enabled {
				continue
			}
			writeANNLines(w, fmt.Sprintf("{shard=\"%d\"}", sh.Shard), sh.ANN)
		}
		return
	}
	if as, ok := s.svc.(ANNStater); ok {
		if st := as.ANNState(); st.Enabled {
			writeANNLines(w, "", st)
		}
	}
}

func writeANNLines(w io.Writer, labels string, st core.ANNState) {
	fmt.Fprintf(w, "recsys_ann_searches_total%s %d\n", labels, st.Searches)
	fmt.Fprintf(w, "recsys_ann_rescored_total%s %d\n", labels, st.Rescored)
	fmt.Fprintf(w, "recsys_ann_fallbacks_total%s %d\n", labels, st.Fallbacks)
	fmt.Fprintf(w, "recsys_ann_content_vectors%s %d\n", labels, st.ContentVectors)
	fmt.Fprintf(w, "recsys_ann_model_vectors%s %d\n", labels, st.ModelVectors)
	comps := st.ContentStats.DistanceComps + st.ModelStats.DistanceComps
	fmt.Fprintf(w, "recsys_ann_distance_comps_total%s %d\n", labels, comps)
}
