package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/recsys/mf"
)

func annServer(t testing.TB) *Server {
	t.Helper()
	c := dataset.Movies(dataset.Config{Seed: 501, Users: 50, Items: 70, RatingsPerUser: 18})
	eng, err := core.New(c.Catalog, c.Ratings, core.WithSeed(1),
		core.WithTrainer(core.TrainerConfig{
			Trainer: mf.SGD{Opts: mf.Options{Seed: 1, Factors: 8, Epochs: 4}},
		}),
		core.WithANN(core.ANNConfig{Kind: "hnsw", Quantize: true}))
	if err != nil {
		t.Fatal(err)
	}
	return New(eng)
}

func annClusterServer(t testing.TB) *Server {
	t.Helper()
	c := dataset.Movies(dataset.Config{Seed: 501, Users: 50, Items: 70, RatingsPerUser: 18})
	rt, err := cluster.New(c.Catalog, c.Ratings, cluster.Options{
		Shards: 3, Seed: 9,
		ANN: &core.ANNConfig{Kind: "flat"},
		Trainer: func(shardSeed uint64) core.TrainerConfig {
			return core.TrainerConfig{
				Trainer: mf.SGD{Opts: mf.Options{Seed: shardSeed, Factors: 8, Epochs: 4}},
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(rt)
}

func TestANNEndpointEngine(t *testing.T) {
	s := annServer(t)
	rec, out := doJSON(t, s, http.MethodGet, "/debug/ann", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, out)
	}
	if out["enabled"] != true || out["kind"] != "hnsw" || out["quantize"] != true {
		t.Fatalf("body = %v", out)
	}
	if out["content_vectors"].(float64) == 0 || out["model_vectors"].(float64) == 0 {
		t.Fatalf("indexes missing: %v", out)
	}
}

func TestANNEndpointCluster(t *testing.T) {
	s := annClusterServer(t)
	rec, out := doJSON(t, s, http.MethodGet, "/debug/ann", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, out)
	}
	shards, ok := out["shards"].([]any)
	if !ok || len(shards) != 3 {
		t.Fatalf("shards = %v", out["shards"])
	}
	for i, raw := range shards {
		sh := raw.(map[string]any)
		if sh["shard"].(float64) != float64(i) {
			t.Fatalf("shard order: %v at index %d", sh["shard"], i)
		}
		if sh["ann"].(map[string]any)["enabled"] != true {
			t.Fatalf("shard %d disabled: %v", i, sh)
		}
	}
}

func TestANNEndpointAbsentWithoutANN(t *testing.T) {
	_, s := lifecycleServer(t, 0)
	req := httptest.NewRequest(http.MethodGet, "/debug/ann", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404 on a brute-force backend", rec.Code)
	}
}

func TestANNMetricsLines(t *testing.T) {
	s := annServer(t)
	// Serve one request so the counters are non-trivially populated.
	if rec, _ := doJSON(t, s, http.MethodGet, "/similar?user=1&item=1&n=3", nil); rec.Code != http.StatusOK {
		t.Fatalf("similar status = %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		"recsys_ann_searches_total ",
		"recsys_ann_rescored_total ",
		"recsys_ann_fallbacks_total ",
		"recsys_ann_content_vectors ",
		"recsys_ann_model_vectors ",
		"recsys_ann_distance_comps_total ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestANNMetricsShardLabelled(t *testing.T) {
	s := annClusterServer(t)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		`recsys_ann_searches_total{shard="0"}`,
		`recsys_ann_searches_total{shard="2"}`,
		"recsys_model_version_skew 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestModelsEndpointReportsVersionSkew(t *testing.T) {
	s := annClusterServer(t)
	rec, out := doJSON(t, s, http.MethodGet, "/debug/models", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, out)
	}
	sk, ok := out["version_skew"].(map[string]any)
	if !ok {
		t.Fatalf("version_skew missing: %v", out)
	}
	if sk["enabled"] != true || sk["skew"].(float64) != 0 {
		t.Fatalf("skew = %v", sk)
	}
	if sk["min_version"].(float64) != 1 || sk["max_version"].(float64) != 1 {
		t.Fatalf("skew bounds = %v", sk)
	}
}

func TestDebugMuxServesANN(t *testing.T) {
	s := annServer(t)
	mux := s.DebugMux(false)
	req := httptest.NewRequest(http.MethodGet, "/debug/ann", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("debug mux /debug/ann status = %d", rec.Code)
	}
}
