// The cluster debug surface: GET /debug/cluster reports ring
// parameters, per-shard health and routing counters when the backing
// Service is a sharded router, and /metrics grows recsys_shard_*
// lines. Both are feature-detected through the ClusterStater
// interface, so a single-engine server serves exactly what it served
// before.

package server

import (
	"fmt"
	"net/http"

	"repro/internal/cluster"
)

// ClusterStater is implemented by Service backends that route over a
// shard cluster (cluster.Router). When the server's Service implements
// it, GET /debug/cluster serves the topology snapshot and /metrics
// includes per-shard counters.
type ClusterStater interface {
	ClusterState() cluster.State
}

// handleCluster serves GET /debug/cluster.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	cs, ok := s.svc.(ClusterStater)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("backend is not a cluster"))
		return
	}
	writeJSON(w, http.StatusOK, cs.ClusterState())
}

// writeShardMetrics renders the per-shard recsys_shard_* lines.
// ClusterState reports shards in ID order, so the scrape is stable.
func (s *Server) writeShardMetrics(w http.ResponseWriter) {
	cs, ok := s.svc.(ClusterStater)
	if !ok {
		return
	}
	st := cs.ClusterState()
	for _, sh := range st.Shards {
		healthy := 0
		if sh.Healthy {
			healthy = 1
		}
		fmt.Fprintf(w, "recsys_shard_healthy{shard=\"%d\"} %d\n", sh.ID, healthy)
		fmt.Fprintf(w, "recsys_shard_owned_users{shard=\"%d\"} %d\n", sh.ID, sh.OwnedUsers)
		fmt.Fprintf(w, "recsys_shard_ratings{shard=\"%d\"} %d\n", sh.ID, sh.Ratings)
		fmt.Fprintf(w, "recsys_shard_requests_total{shard=\"%d\"} %d\n", sh.ID, sh.Requests)
		fmt.Fprintf(w, "recsys_shard_infra_failures_total{shard=\"%d\"} %d\n", sh.ID, sh.InfraFailures)
		fmt.Fprintf(w, "recsys_shard_degraded_total{shard=\"%d\"} %d\n", sh.ID, sh.Degraded)
		fmt.Fprintf(w, "recsys_shard_journaled_writes_total{shard=\"%d\"} %d\n", sh.ID, sh.Journaled)
		fmt.Fprintf(w, "recsys_shard_journal_errors_total{shard=\"%d\"} %d\n", sh.ID, sh.JournalErrors)
		fmt.Fprintf(w, "recsys_shard_replayed_writes_total{shard=\"%d\"} %d\n", sh.ID, sh.Replayed)
		fmt.Fprintf(w, "recsys_shard_journal_depth{shard=\"%d\"} %d\n", sh.ID, sh.JournalDepth)
	}
}
