package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/fault"
)

func clusterServer(t *testing.T, gate cluster.Gate) (*cluster.Router, *Server) {
	t.Helper()
	c := dataset.Movies(dataset.Config{Seed: 503, Users: 60, Items: 80, RatingsPerUser: 18})
	rt, err := cluster.New(c.Catalog, c.Ratings, cluster.Options{
		Shards:           4,
		Seed:             9,
		FailureThreshold: 1,
		Gate:             gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt, New(rt)
}

func TestDebugClusterEndpoint(t *testing.T) {
	rt, s := clusterServer(t, nil)
	req := httptest.NewRequest(http.MethodGet, "/debug/cluster", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var st cluster.State
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if st.Seed != 9 || len(st.Shards) != 4 {
		t.Fatalf("state = %+v, want seed 9 and 4 shards", st)
	}
	total := 0
	for i, sh := range st.Shards {
		if sh.ID != i {
			t.Fatalf("shards not in ID order: %+v", st.Shards)
		}
		if !sh.Healthy {
			t.Fatalf("shard %d unhealthy with no faults injected", sh.ID)
		}
		total += sh.OwnedUsers
	}
	if want := len(rt.Ratings().Users()); total != want {
		t.Fatalf("owned users sum %d != community users %d", total, want)
	}

	// The endpoint only exists on cluster backends.
	_, plain := testServer(t)
	rec2 := httptest.NewRecorder()
	plain.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/debug/cluster", nil))
	if rec2.Code != http.StatusNotFound {
		t.Fatalf("single-engine /debug/cluster status = %d, want 404", rec2.Code)
	}
}

func TestDebugMuxServesCluster(t *testing.T) {
	_, s := clusterServer(t, nil)
	mux := s.DebugMux(false)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/cluster", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("debug mux /debug/cluster status = %d", rec.Code)
	}
}

func TestMetricsExposeShardLines(t *testing.T) {
	sim := fault.NewClusterSim(21)
	rt, s := clusterServer(t, sim)

	// Serve a request per shard owner so requests_total moves, then
	// kill shard 2 and serve a request it owns to grow its degraded
	// and journaled counters.
	users := rt.Ratings().Users()
	byShard := map[int]int64{}
	for _, u := range users {
		if _, ok := byShard[rt.Owner(u)]; !ok {
			byShard[rt.Owner(u)] = int64(u)
		}
	}
	for sh := 0; sh < 4; sh++ {
		if _, ok := byShard[sh]; !ok {
			t.Fatalf("no user owned by shard %d", sh)
		}
	}
	sim.Kill(2)
	victim := byShard[2]
	doJSON(t, s, http.MethodGet, "/recommend?user="+itoa(victim)+"&n=3", nil)
	doJSON(t, s, http.MethodPost, "/rate", map[string]any{"user": victim, "item": 1, "value": 4})
	for sh, u := range byShard {
		if sh == 2 {
			continue
		}
		doJSON(t, s, http.MethodGet, "/recommend?user="+itoa(u)+"&n=3", nil)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`recsys_shard_healthy{shard="0"} 1`,
		`recsys_shard_healthy{shard="2"} 0`,
		`recsys_shard_degraded_total{shard="2"} 1`,
		`recsys_shard_journaled_writes_total{shard="2"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, shardLines(body))
		}
	}
	for sh := 0; sh < 4; sh++ {
		prefix := `recsys_shard_requests_total{shard="` + itoa(int64(sh)) + `"} `
		line := metricLine(body, prefix)
		if line == "" || strings.HasSuffix(line, " 0") {
			t.Errorf("shard %d served requests but line is %q", sh, line)
		}
	}
}

// itoa formats a user ID without pulling in strconv repeatedly at call
// sites.
func itoa(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// metricLine returns the first /metrics line starting with prefix.
func metricLine(body, prefix string) string {
	for _, l := range strings.Split(body, "\n") {
		if strings.HasPrefix(l, prefix) {
			return l
		}
	}
	return ""
}

// shardLines filters a /metrics body down to the shard lines for
// readable failures.
func shardLines(body string) string {
	var out []string
	for _, l := range strings.Split(body, "\n") {
		if strings.HasPrefix(l, "recsys_shard_") {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
