// The tracing debug surface: GET /debug/traces lists retained traces
// (filterable by op, status and minimum duration) with summary
// latency quantiles, GET /debug/traces/{id} returns one full span
// tree, and DebugMux packages both — optionally with net/http/pprof —
// for a separate operator-only listener (-debug-addr in cmd/recserver)
// so profiling and trace inspection never share a port with user
// traffic unless the operator wants them to.

package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"repro/internal/stats"
	"repro/internal/trace"
)

// traceSummaryJSON is one row of the /debug/traces listing.
type traceSummaryJSON struct {
	ID       trace.TraceID `json:"id"`
	Op       string        `json:"op"`
	Start    time.Time     `json:"start"`
	Duration string        `json:"duration"`
	Status   string        `json:"status"`
	Degraded bool          `json:"degraded,omitempty"`
	Reason   string        `json:"reason"`
	Spans    int           `json:"spans"`
	Dropped  int           `json:"dropped,omitempty"`
}

// handleTraceList serves GET /debug/traces. Query parameters:
//
//	op=recommend     only traces of one operation
//	status=error     only traces with that status ("ok"/"error")
//	min_ms=250       only traces at least that slow
//	limit=20         at most that many rows (default 50)
//
// The response carries the matching rows newest-first plus p50/p95/p99
// over the *matched* durations — the quantiles describe exactly the
// population listed, so narrowing the filter narrows the summary too.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	q := r.URL.Query()
	limit, err := queryInt(r, "limit", 50)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	minMS, err := queryInt(r, "min_ms", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opFilter, statusFilter := q.Get("op"), q.Get("status")

	var rows []traceSummaryJSON
	var durs []float64
	for _, d := range s.tracer.Recent(0) {
		if opFilter != "" && d.Op != opFilter {
			continue
		}
		if statusFilter != "" && d.Status != statusFilter {
			continue
		}
		if d.Duration < time.Duration(minMS)*time.Millisecond {
			continue
		}
		durs = append(durs, d.Duration.Seconds()*1000)
		if limit > 0 && len(rows) >= limit {
			continue // keep counting durations for the summary
		}
		rows = append(rows, traceSummaryJSON{
			ID:       d.ID,
			Op:       d.Op,
			Start:    d.Start,
			Duration: d.Duration.String(),
			Status:   d.Status,
			Degraded: d.Degraded,
			Reason:   d.Reason,
			Spans:    len(d.Spans),
			Dropped:  d.Dropped,
		})
	}
	resp := map[string]any{
		"traces":  rows,
		"matched": len(durs),
	}
	if len(durs) > 0 {
		resp["latency_ms"] = map[string]float64{
			"p50": stats.Quantile(durs, 0.50),
			"p95": stats.Quantile(durs, 0.95),
			"p99": stats.Quantile(durs, 0.99),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTraceGet serves GET /debug/traces/{id}: the full span tree of
// one retained trace, by the ID the client received in X-Trace-ID.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
	id, err := trace.ParseTraceID(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	d := s.tracer.Lookup(id)
	if d == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("trace %s not retained (not sampled, or evicted from the ring)", id))
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// DebugMux returns a mux serving the trace debug endpoints — and, when
// withPprof is set, the net/http/pprof profiling handlers — for a
// dedicated debug listener. cmd/recserver mounts it on -debug-addr;
// keeping it off the serving port is the default posture because
// pprof and whole-trace payloads (user IDs, item IDs, error text) are
// operator data, not user data.
func (s *Server) DebugMux(withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	if s.tracer != nil {
		mux.HandleFunc("/debug/traces", s.handleTraceList)
		mux.HandleFunc("/debug/traces/", s.handleTraceGet)
	}
	if _, ok := s.svc.(ClusterStater); ok {
		mux.HandleFunc("/debug/cluster", s.handleCluster)
	}
	if hasModelSurface(s.svc) {
		mux.HandleFunc("/debug/models", s.handleModels)
		mux.HandleFunc("/debug/models/retrain", s.handleModelRetrain)
		mux.HandleFunc("/debug/models/rollback", s.handleModelRollback)
	}
	if hasANNSurface(s.svc) {
		mux.HandleFunc("/debug/ann", s.handleANN)
	}
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
