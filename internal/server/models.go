// The model-lifecycle debug surface: GET /debug/models reports the
// versioned-model state (per shard on a sharded backend), POST
// /debug/models/retrain triggers a synchronous retrain, POST
// /debug/models/rollback re-serves the previous generation, and
// /metrics grows recsys_model_* / recsys_train_* lines. Everything is
// feature-detected through small interfaces, mirroring the cluster
// debug surface, so backends without a lifecycle serve exactly what
// they served before.

package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/modelstore"
)

// ModelStater is implemented by single-engine backends that can report
// their model-lifecycle state (core.Engine always does; state carries
// Enabled=false when no trainer is configured).
type ModelStater interface {
	ModelsState() core.ModelsState
}

// ShardModelStater is implemented by sharded backends
// (cluster.Router): per-shard lifecycle state in shard-ID order.
type ShardModelStater interface {
	ShardModels() []cluster.ShardModels
}

// VersionSkewer is implemented by sharded backends that can summarise
// the spread of serving model versions across their shards
// (cluster.Router). The summary rides along in the /debug/models
// payload and as a recsys_model_version_skew metric so operators spot
// a shard whose retrains are stuck while its peers advance.
type VersionSkewer interface {
	ModelVersionSkew() cluster.VersionSkew
}

// Retrainer is implemented by backends that can retrain their serving
// model on demand (core.Engine and cluster.Router).
type Retrainer interface {
	Retrain(ctx context.Context) error
}

// ModelRollbacker is implemented by backends that can re-serve their
// previous model generation (core.Engine).
type ModelRollbacker interface {
	RollbackModel() (core.ModelArtifact, error)
}

// hasModelSurface reports whether the backend exposes any model
// lifecycle state worth registering the debug endpoints for.
func hasModelSurface(svc core.Service) bool {
	if _, ok := svc.(ShardModelStater); ok {
		return true
	}
	_, ok := svc.(ModelStater)
	return ok
}

// modelsPayload builds the GET /debug/models response body.
func (s *Server) modelsPayload() (any, bool) {
	if sm, ok := s.svc.(ShardModelStater); ok {
		payload := map[string]any{"shards": sm.ShardModels()}
		if vs, ok := s.svc.(VersionSkewer); ok {
			payload["version_skew"] = vs.ModelVersionSkew()
		}
		return payload, true
	}
	if ms, ok := s.svc.(ModelStater); ok {
		return ms.ModelsState(), true
	}
	return nil, false
}

// handleModels serves GET /debug/models.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	payload, ok := s.modelsPayload()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("backend has no model lifecycle"))
		return
	}
	writeJSON(w, http.StatusOK, payload)
}

// handleModelRetrain serves POST /debug/models/retrain: a synchronous
// retrain (every shard on a cluster), answering with the post-swap
// lifecycle state. 404 without a configured trainer, 409 when a
// training run already holds the single-flight gate.
func (s *Server) handleModelRetrain(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	rt, ok := s.svc.(Retrainer)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("backend cannot retrain"))
		return
	}
	err := rt.Retrain(r.Context())
	switch {
	case err == nil:
	case errors.Is(err, core.ErrNoTrainer):
		writeError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, core.ErrTrainInProgress):
		writeError(w, http.StatusConflict, err)
		return
	default:
		s.writeServiceError(w, err)
		return
	}
	payload, _ := s.modelsPayload()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "retrained",
		"models": payload,
	})
}

// handleModelRollback serves POST /debug/models/rollback: republish
// the previous generation under a new version. 404 without a trainer,
// 409 when no predecessor generation is retained.
func (s *Server) handleModelRollback(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	rb, ok := s.svc.(ModelRollbacker)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("backend cannot roll back models"))
		return
	}
	art, err := rb.RollbackModel()
	switch {
	case err == nil:
	case errors.Is(err, core.ErrNoTrainer):
		writeError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, modelstore.ErrNoHistory):
		writeError(w, http.StatusConflict, err)
		return
	default:
		s.writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "rolled-back",
		"artifact": art,
	})
}

// writeModelMetrics renders the recsys_model_* / recsys_train_* lines
// on /metrics: unlabelled for a single engine, shard-labelled for a
// cluster. Backends (or shards) without a lifecycle emit nothing.
func (s *Server) writeModelMetrics(w http.ResponseWriter) {
	if sm, ok := s.svc.(ShardModelStater); ok {
		for _, shm := range sm.ShardModels() {
			if !shm.Models.Enabled {
				continue
			}
			writeModelLines(w, fmt.Sprintf("{shard=\"%d\"}", shm.Shard), shm.Models)
		}
		if vs, ok := s.svc.(VersionSkewer); ok {
			if sk := vs.ModelVersionSkew(); sk.Enabled {
				fmt.Fprintf(w, "recsys_model_version_skew %d\n", sk.Skew)
			}
		}
		return
	}
	if ms, ok := s.svc.(ModelStater); ok {
		if st := ms.ModelsState(); st.Enabled {
			writeModelLines(w, "", st)
		}
	}
}

func writeModelLines(w io.Writer, labels string, st core.ModelsState) {
	inFlight := 0
	if st.TrainInFlight {
		inFlight = 1
	}
	fmt.Fprintf(w, "recsys_model_version%s %d\n", labels, st.ServingVersion)
	fmt.Fprintf(w, "recsys_model_data_rev%s %d\n", labels, st.DataRev)
	fmt.Fprintf(w, "recsys_model_foldins_total%s %d\n", labels, st.FoldIns)
	fmt.Fprintf(w, "recsys_model_swap_foldins_total%s %d\n", labels, st.SwapFoldIns)
	fmt.Fprintf(w, "recsys_train_in_flight%s %d\n", labels, inFlight)
	fmt.Fprintf(w, "recsys_train_started_total%s %d\n", labels, st.TrainsStarted)
	fmt.Fprintf(w, "recsys_train_completed_total%s %d\n", labels, st.TrainsCompleted)
	fmt.Fprintf(w, "recsys_train_failed_total%s %d\n", labels, st.TrainsFailed)
	fmt.Fprintf(w, "recsys_train_seconds_total%s %.9f\n", labels, st.TrainSecondsTotal)
}
