package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/recsys/mf"
)

func lifecycleServer(t testing.TB, retrainEvery int) (*dataset.Community, *Server) {
	t.Helper()
	c := dataset.Movies(dataset.Config{Seed: 501, Users: 50, Items: 70, RatingsPerUser: 18})
	eng, err := core.New(c.Catalog, c.Ratings, core.WithSeed(1),
		core.WithTrainer(core.TrainerConfig{
			Trainer:      mf.SGD{Opts: mf.Options{Seed: 1, Factors: 8, Epochs: 4}},
			RetrainEvery: retrainEvery,
		}))
	if err != nil {
		t.Fatal(err)
	}
	return c, New(eng)
}

func clusterLifecycleServer(t testing.TB) *Server {
	t.Helper()
	c := dataset.Movies(dataset.Config{Seed: 501, Users: 50, Items: 70, RatingsPerUser: 18})
	rt, err := cluster.New(c.Catalog, c.Ratings, cluster.Options{
		Shards: 3, Seed: 9,
		Trainer: func(shardSeed uint64) core.TrainerConfig {
			return core.TrainerConfig{
				Trainer: mf.SGD{Opts: mf.Options{Seed: shardSeed, Factors: 8, Epochs: 4}},
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(rt)
}

func TestModelsEndpointEngine(t *testing.T) {
	_, s := lifecycleServer(t, 0)
	rec, out := doJSON(t, s, http.MethodGet, "/debug/models", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, out)
	}
	if out["enabled"] != true || out["trainer"] != "sgd" {
		t.Fatalf("body = %v", out)
	}
	if out["serving_version"].(float64) != 1 {
		t.Fatalf("serving_version = %v", out["serving_version"])
	}
	arts, ok := out["artifacts"].([]any)
	if !ok || len(arts) != 1 {
		t.Fatalf("artifacts = %v", out["artifacts"])
	}
	if rec, _ := doJSON(t, s, http.MethodPost, "/debug/models", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /debug/models = %d", rec.Code)
	}
}

func TestModelsEndpointDisabledEngine(t *testing.T) {
	_, s := testServer(t)
	rec, out := doJSON(t, s, http.MethodGet, "/debug/models", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if out["enabled"] != false {
		t.Fatalf("body = %v", out)
	}
}

func TestModelsEndpointCluster(t *testing.T) {
	s := clusterLifecycleServer(t)
	rec, out := doJSON(t, s, http.MethodGet, "/debug/models", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, out)
	}
	shards, ok := out["shards"].([]any)
	if !ok || len(shards) != 3 {
		t.Fatalf("shards = %v", out["shards"])
	}
	first := shards[0].(map[string]any)
	models := first["models"].(map[string]any)
	if models["enabled"] != true || models["serving_version"].(float64) != 1 {
		t.Fatalf("shard 0 models = %v", models)
	}
}

func TestModelRetrainEndpoint(t *testing.T) {
	_, s := lifecycleServer(t, 0)
	rec, out := doJSON(t, s, http.MethodPost, "/debug/models/retrain", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, out)
	}
	if out["status"] != "retrained" {
		t.Fatalf("body = %v", out)
	}
	models := out["models"].(map[string]any)
	if models["serving_version"].(float64) != 2 {
		t.Fatalf("post-retrain version = %v", models["serving_version"])
	}
	if rec, _ := doJSON(t, s, http.MethodGet, "/debug/models/retrain", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET retrain = %d", rec.Code)
	}
}

func TestModelRetrainWithoutTrainerIs404(t *testing.T) {
	_, s := testServer(t)
	rec, _ := doJSON(t, s, http.MethodPost, "/debug/models/retrain", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestModelRetrainClusterFansOut(t *testing.T) {
	s := clusterLifecycleServer(t)
	rec, out := doJSON(t, s, http.MethodPost, "/debug/models/retrain", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, out)
	}
	shards := out["models"].(map[string]any)["shards"].([]any)
	for _, sh := range shards {
		m := sh.(map[string]any)["models"].(map[string]any)
		if m["serving_version"].(float64) != 2 {
			t.Fatalf("shard not retrained: %v", m)
		}
	}
}

func TestModelRollbackEndpoint(t *testing.T) {
	_, s := lifecycleServer(t, 0)
	// No predecessor yet: conflict.
	rec, _ := doJSON(t, s, http.MethodPost, "/debug/models/rollback", nil)
	if rec.Code != http.StatusConflict {
		t.Fatalf("rollback without history = %d", rec.Code)
	}
	if rec, _ := doJSON(t, s, http.MethodPost, "/debug/models/retrain", nil); rec.Code != http.StatusOK {
		t.Fatalf("retrain = %d", rec.Code)
	}
	rec, out := doJSON(t, s, http.MethodPost, "/debug/models/rollback", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("rollback = %d: %v", rec.Code, out)
	}
	art := out["artifact"].(map[string]any)
	if art["version"].(float64) != 3 || art["serving"] != true {
		t.Fatalf("artifact = %v", art)
	}
}

func TestModelRollbackWithoutTrainerIs404(t *testing.T) {
	_, s := testServer(t)
	rec, _ := doJSON(t, s, http.MethodPost, "/debug/models/rollback", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestResponsesCarryModelVersion(t *testing.T) {
	_, s := lifecycleServer(t, 0)
	rec, out := doJSON(t, s, http.MethodGet, "/recommend?user=1&n=3", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, out)
	}
	if out["model_version"].(float64) != 1 {
		t.Fatalf("model_version = %v", out["model_version"])
	}
	item := out["recommendations"].([]any)[0].(map[string]any)["item"].(float64)
	rec, out = doJSON(t, s, http.MethodGet, "/explain?user=1&item="+itoa(int64(item)), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("explain status = %d: %v", rec.Code, out)
	}
	if out["model_version"].(float64) != 1 {
		t.Fatalf("explanation model_version = %v", out["model_version"])
	}

	// Stock engines must not leak a version field.
	_, s2 := testServer(t)
	rec, out = doJSON(t, s2, http.MethodGet, "/recommend?user=1&n=3", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if _, has := out["model_version"]; has {
		t.Fatalf("stock engine response carries model_version: %v", out)
	}
}

func TestMetricsCarryModelLines(t *testing.T) {
	_, s := lifecycleServer(t, 0)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, line := range []string{
		"recsys_model_version 1",
		"recsys_model_data_rev 0",
		"recsys_model_foldins_total 0",
		"recsys_train_in_flight 0",
		"recsys_train_started_total 1",
		"recsys_train_completed_total 1",
		"recsys_train_failed_total 0",
		"recsys_train_seconds_total",
	} {
		if !strings.Contains(body, line) {
			t.Fatalf("metrics missing %q:\n%s", line, body)
		}
	}

	// Stock engine: no model lines at all.
	_, s2 := testServer(t)
	rec = httptest.NewRecorder()
	s2.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if strings.Contains(rec.Body.String(), "recsys_model_") {
		t.Fatal("stock engine emitted model metrics")
	}
}

func TestMetricsShardLabelledModelLines(t *testing.T) {
	s := clusterLifecycleServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, line := range []string{
		`recsys_model_version{shard="0"} 1`,
		`recsys_model_version{shard="1"} 1`,
		`recsys_model_version{shard="2"} 1`,
	} {
		if !strings.Contains(body, line) {
			t.Fatalf("metrics missing %q:\n%s", line, body)
		}
	}
}

func TestDebugMuxServesModelEndpoints(t *testing.T) {
	_, s := lifecycleServer(t, 0)
	mux := s.DebugMux(false)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/models", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("debug mux /debug/models = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/models/retrain", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("debug mux retrain = %d", rec.Code)
	}
}
