// End-to-end resilience tests over the HTTP surface: degraded-mode
// serving stays 200 with "degraded": true, shed/breaker rejections
// carry Retry-After, /healthz flips during a drain, and SIGTERM-style
// shutdown drains in-flight requests without dropping any.

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/pipeline"
)

// chaosServer builds a Server over an engine with resilience on and
// the given fault rules injected.
func chaosServer(t testing.TB, cfg core.ResilienceConfig, rules ...fault.Rule) *Server {
	t.Helper()
	c := dataset.Movies(dataset.Config{Seed: 701, Users: 30, Items: 50, RatingsPerUser: 12})
	inj := fault.NewInjector(701, rules...)
	eng, err := core.New(c.Catalog, c.Ratings,
		core.WithSeed(1),
		core.WithResilience(cfg),
		core.WithChaos(inj.Interceptor()),
	)
	if err != nil {
		t.Fatal(err)
	}
	return New(eng)
}

// TestRecommendDegradedOverHTTP is the issue's acceptance scenario: the
// CF explain stage forced broken, /recommend still answers 200 with a
// well-formed recommendation list marked "degraded": true.
func TestRecommendDegradedOverHTTP(t *testing.T) {
	s := chaosServer(t, core.ResilienceConfig{},
		fault.Rule{Pipeline: pipeline.OpRecommend, Stage: "explainTopN", Nth: 1, Err: fault.ErrInjected})
	rec, out := doJSON(t, s, http.MethodGet, "/recommend?user=1&n=5", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %v", rec.Code, out)
	}
	if out["degraded"] != true {
		t.Fatalf(`response missing "degraded": true: %v`, out)
	}
	recs, ok := out["recommendations"].([]any)
	if !ok || len(recs) != 5 {
		t.Fatalf("recommendations = %v, want 5 entries", out["recommendations"])
	}
	for _, r := range recs {
		entry := r.(map[string]any)
		if entry["explanation"] == "" || entry["explanation"] == nil {
			t.Fatalf("degraded entry lacks explanation text: %v", entry)
		}
		if entry["title"] == "" || entry["title"] == nil {
			t.Fatalf("degraded entry lacks title: %v", entry)
		}
	}
}

// TestExplainDegradedOverHTTP: /explain answers 200 + degraded with the
// primary explainer broken, including after the breaker opens.
func TestExplainDegradedOverHTTP(t *testing.T) {
	s := chaosServer(t, core.ResilienceConfig{BreakerThreshold: 2},
		fault.Rule{Pipeline: pipeline.OpExplain, Stage: "explain", Nth: 1, Err: fault.ErrInjected})
	for i := 0; i < 6; i++ {
		rec, out := doJSON(t, s, http.MethodGet, "/explain?user=1&item=3", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("call %d: status = %d, want 200; body %v", i, rec.Code, out)
		}
		if out["degraded"] != true {
			t.Fatalf("call %d: missing degraded flag: %v", i, out)
		}
		if out["text"] == "" || out["style"] == "" {
			t.Fatalf("call %d: degraded explanation incomplete: %v", i, out)
		}
	}
}

// TestRetryAfterOnShed: a saturated stage answers 429 with a
// Retry-After derived from the queue depth and the configured drain
// estimate — not the server's static default. With MaxConcurrent=1,
// MaxQueue=1 and a 2s drain estimate, the rejected arrival observes
// depth 2 and is told 2s*(2-1+1)/1 = 4s.
func TestRetryAfterOnShed(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	gate := func(info pipeline.StageInfo, next pipeline.Handler) pipeline.Handler {
		if info.Pipeline != pipeline.OpRecommend || info.Stage != "rank" {
			return next
		}
		return func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
			entered <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return next(ctx, req)
		}
	}
	defer close(release)
	c := dataset.Movies(dataset.Config{Seed: 702, Users: 20, Items: 30, RatingsPerUser: 8})
	eng, err := core.New(c.Catalog, c.Ratings,
		core.WithResilience(core.ResilienceConfig{
			MaxConcurrent:     1,
			MaxQueue:          1,
			ShedDrainEstimate: 2 * time.Second,
		}),
		core.WithChaos(gate),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, WithRetryAfter(3*time.Second))

	// Saturate: one request holds the stage, one queues.
	for i := 0; i < 2; i++ {
		go func() {
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/recommend?user=1&n=5", nil))
		}()
	}
	<-entered

	// Keep probing until a request is actually shed (the queue fill is
	// asynchronous); pre-cancelled probes cannot jam the queue forever
	// but plain requests can be queued, so give each probe a deadline.
	deadline := time.After(5 * time.Second)
	for {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		req := httptest.NewRequest(http.MethodGet, "/recommend?user=1&n=5", nil).WithContext(ctx)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code == http.StatusTooManyRequests {
			if got := rec.Header().Get("Retry-After"); got != "4" {
				t.Fatalf("Retry-After = %q, want derived %q (not the static default)", got, "4")
			}
			var out map[string]any
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out["error"] == "" {
				t.Fatalf("shed response body %q not an error envelope", rec.Body.String())
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("no 429 observed; last status %d", rec.Code)
		default:
		}
	}
}

// TestRetryAfterOnBreakerOpen: a breaker rejection answers 503 with a
// Retry-After derived from the breaker's remaining cooldown (the
// engine wires the wall clock, so immediately after the trip the whole
// 30s cooldown remains → ceil → "30"), not the server default. The
// similar pipeline's present stage has no fallback route, so the
// rejection reaches the client instead of being absorbed.
func TestRetryAfterOnBreakerOpen(t *testing.T) {
	s := chaosServer(t,
		core.ResilienceConfig{BreakerThreshold: 1, BreakerCooldown: 30 * time.Second},
		fault.Rule{Pipeline: pipeline.OpSimilar, Stage: "present", Nth: 1, Err: fault.ErrInjected})

	// First request fails for real (statusFor blames the unknown
	// injected error on the request) and trips the one-failure breaker.
	rec, _ := doJSON(t, s, http.MethodGet, "/similar?user=1&item=3&n=5", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("tripping request = %d, want 400", rec.Code)
	}
	// Second request is rejected by the open breaker.
	rec, out := doJSON(t, s, http.MethodGet, "/similar?user=1&item=3&n=5", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %v", rec.Code, out)
	}
	if got := rec.Header().Get("Retry-After"); got != "30" {
		t.Fatalf("Retry-After = %q, want remaining cooldown %q", got, "30")
	}
}

// TestHealthzDuringDrain: StartDrain flips /healthz to 503 (with
// Retry-After) while the other endpoints keep serving.
func TestHealthzDuringDrain(t *testing.T) {
	_, s := testServer(t)
	rec, out := doJSON(t, s, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("pre-drain healthz = %d %v", rec.Code, out)
	}

	s.StartDrain()
	rec, out = doJSON(t, s, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusServiceUnavailable || out["status"] != "draining" {
		t.Fatalf("draining healthz = %d %v, want 503/draining", rec.Code, out)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("draining healthz lacks Retry-After")
	}

	// Still serving: a drain refuses new *placement* (load balancers
	// read /healthz), not requests that still arrive.
	rec, _ = doJSON(t, s, http.MethodGet, "/recommend?user=1&n=3", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("recommend during drain = %d, want 200", rec.Code)
	}
}

// TestRequestTimeoutBoundsStuckStage: a wedged stage surfaces as 504
// via the server's request timeout instead of hanging the connection.
func TestRequestTimeoutBoundsStuckStage(t *testing.T) {
	stuck := func(info pipeline.StageInfo, next pipeline.Handler) pipeline.Handler {
		if info.Stage != "rank" {
			return next
		}
		return func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}
	}
	c := dataset.Movies(dataset.Config{Seed: 703, Users: 10, Items: 20, RatingsPerUser: 5})
	eng, err := core.New(c.Catalog, c.Ratings, core.WithChaos(stuck))
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, WithRequestTimeout(20*time.Millisecond))
	rec, _ := doJSON(t, s, http.MethodGet, "/recommend?user=1&n=3", nil)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", rec.Code)
	}
}

// TestMetricsExposeResilienceCounters: degraded serving and resilience
// events appear on /metrics in Prometheus text format.
func TestMetricsExposeResilienceCounters(t *testing.T) {
	s := chaosServer(t, core.ResilienceConfig{BreakerThreshold: 2},
		fault.Rule{Pipeline: pipeline.OpExplain, Stage: "explain", Nth: 1, Err: fault.ErrInjected})
	for i := 0; i < 4; i++ {
		if rec, _ := doJSON(t, s, http.MethodGet, "/explain?user=1&item=3", nil); rec.Code != http.StatusOK {
			t.Fatalf("explain = %d, want degraded 200", rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"recsys_degraded_served_total 4",
		`recsys_resilience_events_total{pipeline="explain",stage="explain",event="fallback"} 4`,
		`recsys_resilience_events_total{pipeline="explain",stage="explain",event="breaker_open"} 1`,
		`recsys_stage_panics_total{pipeline="explain",stage="explain"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

// TestGracefulDrainCompletesInFlight is the shutdown chaos test: K
// requests enter a gated stage, the server starts draining, /healthz
// goes unhealthy, Shutdown begins — and once the gate opens, every one
// of the K in-flight requests completes with 200. No request is
// dropped by the drain.
func TestGracefulDrainCompletesInFlight(t *testing.T) {
	const inflight = 4
	release := make(chan struct{})
	entered := make(chan struct{}, inflight)
	gate := func(info pipeline.StageInfo, next pipeline.Handler) pipeline.Handler {
		if info.Pipeline != pipeline.OpRecommend || info.Stage != "rank" {
			return next
		}
		return func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
			entered <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return next(ctx, req)
		}
	}
	c := dataset.Movies(dataset.Config{Seed: 704, Users: 20, Items: 30, RatingsPerUser: 8})
	eng, err := core.New(c.Catalog, c.Ratings, core.WithChaos(gate))
	if err != nil {
		t.Fatal(err)
	}
	h := New(eng)
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	codes := make(chan int, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/recommend?user=1&n=3")
			if err != nil {
				codes <- -1
				return
			}
			//lint:ignore dropped-error nothing to do about a close failure on a drained test body
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	// All K requests are inside the gated stage before the drain starts.
	for i := 0; i < inflight; i++ {
		<-entered
	}

	// Drain exactly as cmd/recserver does on SIGTERM: mark unhealthy,
	// then Shutdown with a deadline while the requests are in flight.
	h.StartDrain()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore dropped-error status code is the assertion; the body is irrelevant
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", resp.StatusCode)
	}

	shutdownDone := make(chan error, 1)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownDone <- srv.Config.Shutdown(shutdownCtx) }()

	// The gate opens; every in-flight request must complete normally.
	close(release)
	wg.Wait()
	for i := 0; i < inflight; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("in-flight request finished with %d during drain, want 200", code)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown did not complete cleanly: %v", err)
	}

	// After shutdown the listener is closed: new connections fail
	// rather than being silently dropped mid-response.
	if _, err := http.Get(srv.URL + "/healthz"); err == nil {
		t.Fatal("listener still accepting after drain completed")
	}
}

// TestDrainedServiceErrorEnvelope sanity-checks writeServiceError's
// Retry-After coverage directly across the retryable statuses.
func TestDrainedServiceErrorEnvelope(t *testing.T) {
	_, s := testServer(t)
	for _, tc := range []struct {
		err        error
		wantStatus int
	}{
		{fmt.Errorf("stage recommend/rank: %w", core.ErrOverloaded), http.StatusTooManyRequests},
		{fmt.Errorf("stage explain/explain: %w", core.ErrBreakerOpen), http.StatusServiceUnavailable},
		{core.ErrDegraded, http.StatusServiceUnavailable},
	} {
		rec := httptest.NewRecorder()
		s.writeServiceError(rec, tc.err)
		if rec.Code != tc.wantStatus {
			t.Fatalf("status = %d, want %d", rec.Code, tc.wantStatus)
		}
		if rec.Header().Get("Retry-After") != "1" {
			t.Fatalf("Retry-After = %q, want default %q", rec.Header().Get("Retry-After"), "1")
		}
		var out errorJSON
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out.Error == "" {
			t.Fatalf("body %q is not an error envelope", rec.Body.String())
		}
	}
	// Non-retryable statuses must not advertise Retry-After.
	rec := httptest.NewRecorder()
	s.writeServiceError(rec, errors.New("bad request"))
	if rec.Header().Get("Retry-After") != "" {
		t.Fatal("Retry-After set on a 400")
	}
}
