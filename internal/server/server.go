// Package server exposes a core.Service over HTTP as a small JSON API
// — the deployment surface every commercial system in the survey's
// Table 3 had. The server depends only on the Service interface, never
// the concrete *core.Engine, so sharded, remote or fake backends drop
// in unchanged. Endpoints cover the full explain-present-interact
// cycle:
//
//	GET  /recommend?user=U&n=N     explained top-N
//	GET  /explain?user=U&item=I    on-demand justification
//	GET  /whylow?user=U&item=I     "why is this predicted low?"
//	GET  /similar?user=U&item=I&n=N
//	POST /rate     {"user":U,"item":I,"value":V}
//	POST /opinion  {"user":U,"kind":"no-more-like-this","item":I,"aspect":""}
//	POST /influence {"user":U,"item":I,"weight":0.5}
//	GET  /healthz
//	GET  /metrics  usage counters in Prometheus text format
//
// Resilience semantics: a load-shed request answers 429 and an
// open-breaker/failed-fallback request answers 503, both carrying a
// Retry-After header; degraded-mode responses stay 200 but carry
// "degraded": true. During a drain (StartDrain, called by the binary on
// SIGTERM) /healthz flips to 503 so load balancers stop routing here
// while in-flight requests finish.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"mime"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/interact"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/present"
	"repro/internal/recsys"
	"repro/internal/trace"
)

// maxBodyBytes caps POST bodies; every accepted payload is a few
// hundred bytes, so 64 KiB is generous while still bounding what a
// hostile client can make the decoder buffer.
const maxBodyBytes = 64 << 10

// Server wraps a recommendation Service with HTTP handlers.
type Server struct {
	svc core.Service
	mux *http.ServeMux

	// requestTimeout bounds each request's context (0 = unbounded);
	// retryAfter is the fallback hint sent with 429/503 responses when
	// the error carries no derived one; draining is flipped by
	// StartDrain and turns /healthz into a 503.
	requestTimeout time.Duration
	retryAfter     time.Duration
	draining       atomic.Bool

	// tracer, when non-nil, traces every API request: traceparent
	// headers are honoured, X-Trace-ID is stamped on responses, and
	// /debug/traces serves the retained ring.
	tracer *trace.Tracer
}

// Option configures a Server.
type Option func(*Server)

// WithRequestTimeout bounds every request to d: the request context
// expires after d, so a stuck pipeline stage surfaces as 504 instead
// of an indefinitely held connection. Zero (the default) leaves
// requests bounded only by the client and the stage timeouts.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.requestTimeout = d }
}

// WithRetryAfter sets the fallback Retry-After hint (rounded up to
// whole seconds, minimum 1) carried by 429 and 503 responses whose
// error chain does not already carry a derived hint — an open breaker
// reports its remaining cooldown, a shed stage its estimated queue
// drain time, and those derived values win. Default 1s.
func WithRetryAfter(d time.Duration) Option {
	return func(s *Server) { s.retryAfter = d }
}

// WithTracer installs a trace.Tracer on the HTTP surface. Every API
// request (not /healthz, /metrics or /debug/*) starts a trace —
// honouring an incoming W3C traceparent header — and carries its ID
// back on the X-Trace-ID response header; retained traces are served
// by GET /debug/traces (filterable) and GET /debug/traces/{id}. The
// same tracer should be installed on the engine (core.WithTracer) so
// stage spans land in the request's trace.
func WithTracer(t *trace.Tracer) Option {
	return func(s *Server) { s.tracer = t }
}

// New builds a Server over any core.Service implementation.
func New(svc core.Service, opts ...Option) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux(), retryAfter: time.Second}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("/recommend", s.handleRecommend)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/whylow", s.handleWhyLow)
	s.mux.HandleFunc("/similar", s.handleSimilar)
	s.mux.HandleFunc("/rate", s.handleRate)
	s.mux.HandleFunc("/opinion", s.handleOpinion)
	s.mux.HandleFunc("/influence", s.handleInfluence)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if s.tracer != nil {
		s.mux.HandleFunc("/debug/traces", s.handleTraceList)
		s.mux.HandleFunc("/debug/traces/", s.handleTraceGet)
	}
	if _, ok := svc.(ClusterStater); ok {
		s.mux.HandleFunc("/debug/cluster", s.handleCluster)
	}
	if hasWALSurface(svc) {
		s.mux.HandleFunc("/debug/wal", s.handleWAL)
	}
	if hasModelSurface(svc) {
		s.mux.HandleFunc("/debug/models", s.handleModels)
		s.mux.HandleFunc("/debug/models/retrain", s.handleModelRetrain)
		s.mux.HandleFunc("/debug/models/rollback", s.handleModelRollback)
	}
	if hasANNSurface(svc) {
		s.mux.HandleFunc("/debug/ann", s.handleANN)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.requestTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	if s.tracer != nil && tracedPath(r.URL.Path) {
		s.serveTraced(w, r)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// tracedPath reports whether a request path gets a trace: the API
// endpoints do; health, metrics and the debug surface itself do not.
func tracedPath(path string) bool {
	switch path {
	case "/healthz", "/metrics":
		return false
	}
	return !strings.HasPrefix(path, "/debug/")
}

// serveTraced wraps one API request in a root span: an incoming W3C
// traceparent is honoured (same trace ID, remote parent, and a set
// sampled flag forces retention), X-Trace-ID is stamped on the
// response before the handler runs, and a 5xx status marks the trace
// errored even when no span recorded the failure.
func (s *Server) serveTraced(w http.ResponseWriter, r *http.Request) {
	op := strings.TrimPrefix(r.URL.Path, "/")
	ctx := r.Context()
	var root *trace.ActiveSpan
	if id, parent, sampled, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
		ctx, root = s.tracer.StartWithParent(ctx, op, id, parent, sampled)
	} else {
		ctx, root = s.tracer.Start(ctx, op)
	}
	root.SetAttr("method", r.Method)
	root.SetAttr("path", r.URL.Path)
	w.Header().Set("X-Trace-ID", root.TraceID().String())
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r.WithContext(ctx))
	root.SetAttr("status", strconv.Itoa(sw.status))
	if sw.status >= 500 {
		root.Fail()
	}
	root.End(nil)
}

// statusWriter captures the response status for the root span.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// StartDrain puts the server into drain mode: /healthz starts
// answering 503 so load balancers rotate this instance out, while every
// other endpoint keeps serving in-flight and still-arriving requests.
// The binary calls it on SIGTERM, ahead of http.Server.Shutdown.
// Draining is one-way and idempotent.
func (s *Server) StartDrain() { s.draining.Store(true) }

// errorJSON is the error envelope.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	//lint:ignore dropped-error status and headers are already on the wire; an Encode failure here means a closed client connection, which has no recovery
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

// statusClientClosedRequest is the nginx-convention status for a
// request abandoned by the client; no standard code exists.
const statusClientClosedRequest = 499

// statusFor maps domain errors onto HTTP codes. A recovered pipeline
// panic is the server's fault (500); resilience rejections are load
// signals (429 shed, 503 breaker/degraded-failure, both retryable);
// everything else unknown is blamed on the request (400).
func statusFor(err error) int {
	var pe *pipeline.PanicError
	switch {
	case errors.As(err, &pe):
		return http.StatusInternalServerError
	case errors.Is(err, core.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, core.ErrBreakerOpen), errors.Is(err, core.ErrDegraded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, recsys.ErrColdStart), errors.Is(err, explain.ErrNoEvidence):
		return http.StatusNotFound
	case errors.Is(err, model.ErrUnknownItem):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

// writeServiceError maps a Service error onto its status and writes the
// error envelope; retryable statuses (429, 503) carry a Retry-After
// hint so well-behaved clients back off instead of hammering a breaker.
// The hint is derived from the rejection itself when the resilience
// layer attached one — an open breaker's remaining cooldown, a shed
// stage's estimated queue drain — and falls back to the configured
// default otherwise.
func (s *Server) writeServiceError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		after := s.retryAfter
		if hint, ok := core.RetryAfterHint(err); ok {
			after = hint
		}
		w.Header().Set("Retry-After", retryAfterSeconds(after))
	}
	writeError(w, status, err)
}

// retryAfterSeconds renders a duration as the whole-second decimal form
// Retry-After requires (RFC 9110 §10.2.3), rounding up with a floor of
// one second — "Retry-After: 0" would invite an immediate retry.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func queryInt(r *http.Request, key string, def int) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		if def >= 0 {
			return def, nil
		}
		return 0, fmt.Errorf("missing required query parameter %q", key)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %w", key, err)
	}
	// User IDs, item IDs and counts are all non-negative; a negative
	// value is a client error, not a lookup miss.
	if v < 0 {
		return 0, fmt.Errorf("parameter %q: must be non-negative, got %d", key, v)
	}
	return v, nil
}

// allowMethod enforces the handler's single allowed method, answering
// 405 with the required Allow header (RFC 9110 §15.5.6) on mismatch.
// It reports whether the request may proceed.
func allowMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("%s only", method))
	return false
}

// decodeJSON enforces the shared POST body contract — a JSON content
// type when one is declared (415 otherwise), at most maxBodyBytes
// (413), and a well-formed JSON payload (400) — and reports whether
// the handler may proceed.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || (mt != "application/json" && !strings.HasSuffix(mt, "+json")) {
			writeError(w, http.StatusUnsupportedMediaType,
				fmt.Errorf("content type %q: want application/json", ct))
			return false
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return false
	}
	return true
}

// entryJSON is one recommendation in a response.
type entryJSON struct {
	Item        model.ItemID `json:"item"`
	Title       string       `json:"title"`
	Score       float64      `json:"score"`
	Confidence  float64      `json:"confidence"`
	Explanation string       `json:"explanation,omitempty"`
	Detail      string       `json:"detail,omitempty"`
	Style       string       `json:"style,omitempty"`
}

func toEntries(p *present.Presentation) []entryJSON {
	out := make([]entryJSON, 0, len(p.Entries))
	for _, e := range p.Entries {
		ej := entryJSON{
			Item:       e.Item.ID,
			Title:      e.Item.Title,
			Score:      e.Prediction.Score,
			Confidence: e.Prediction.Confidence,
		}
		if e.Explanation != nil {
			ej.Explanation = e.Explanation.Text
			ej.Detail = e.Explanation.Detail
			ej.Style = e.Explanation.Style.String()
		}
		out = append(out, ej)
	}
	return out
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	user, err := queryInt(r, "user", -1)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	n, err := queryInt(r, "n", 10)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	p, err := s.svc.RecommendContext(r.Context(), model.UserID(user), n)
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	resp := map[string]any{
		"user":            user,
		"recommendations": toEntries(p),
	}
	if p.Degraded {
		resp["degraded"] = true
	}
	if p.ModelVersion > 0 {
		resp["model_version"] = p.ModelVersion
	}
	writeJSON(w, http.StatusOK, resp)
}

type explanationJSON struct {
	Text       string  `json:"text"`
	Detail     string  `json:"detail,omitempty"`
	Style      string  `json:"style"`
	Confidence float64 `json:"confidence"`
	Faithful   bool    `json:"faithful"`
	Degraded   bool    `json:"degraded,omitempty"`
	// ModelVersion is the serving model generation behind the answer
	// when the backend runs a versioned lifecycle; omitted otherwise.
	ModelVersion uint64 `json:"model_version,omitempty"`
}

func (s *Server) explainEndpoint(w http.ResponseWriter, r *http.Request,
	f func(ctx context.Context, u model.UserID, i model.ItemID) (*explain.Explanation, error)) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	user, err := queryInt(r, "user", -1)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	item, err := queryInt(r, "item", -1)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	exp, err := f(r.Context(), model.UserID(user), model.ItemID(item))
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, explanationJSON{
		Text: exp.Text, Detail: exp.Detail, Style: exp.Style.String(),
		Confidence: exp.Confidence, Faithful: exp.Faithful,
		Degraded: exp.Degraded, ModelVersion: exp.ModelVersion,
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.explainEndpoint(w, r, s.svc.ExplainContext)
}

func (s *Server) handleWhyLow(w http.ResponseWriter, r *http.Request) {
	s.explainEndpoint(w, r, s.svc.WhyLowContext)
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	user, err := queryInt(r, "user", -1)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	item, err := queryInt(r, "item", -1)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	n, err := queryInt(r, "n", 5)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	p, err := s.svc.SimilarToContext(r.Context(), model.UserID(user), model.ItemID(item), n)
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"seed":    item,
		"similar": toEntries(p),
	})
}

type rateRequest struct {
	User  model.UserID `json:"user"`
	Item  model.ItemID `json:"item"`
	Value float64      `json:"value"`
}

func (s *Server) handleRate(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	var req rateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	// NaN fails every range comparison, so the non-finite check must
	// come first or a poisoned value would sail through.
	if math.IsNaN(req.Value) || math.IsInf(req.Value, 0) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("value %v is not a finite number", req.Value))
		return
	}
	if req.Value < model.MinRating || req.Value > model.MaxRating {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("value %v outside [%v, %v]", req.Value, model.MinRating, model.MaxRating))
		return
	}
	if _, err := s.svc.Catalog().Item(req.Item); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if err := s.svc.Rate(req.User, req.Item, req.Value); err != nil {
		s.writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "rated"})
}

type opinionRequest struct {
	User   model.UserID `json:"user"`
	Kind   string       `json:"kind"`
	Item   model.ItemID `json:"item,omitempty"`
	Aspect string       `json:"aspect,omitempty"`
}

// opinionKinds maps wire names to OpinionKind values; the names are
// the String() forms.
var opinionKinds = map[string]interact.OpinionKind{
	interact.MoreLikeThis.String():   interact.MoreLikeThis,
	interact.MoreLater.String():      interact.MoreLater,
	interact.GiveMeMore.String():     interact.GiveMeMore,
	interact.AlreadyKnow.String():    interact.AlreadyKnow,
	interact.NoMoreLikeThis.String(): interact.NoMoreLikeThis,
	interact.NotThisAspect.String():  interact.NotThisAspect,
	interact.SurpriseMe.String():     interact.SurpriseMe,
}

func (s *Server) handleOpinion(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	var req opinionRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	kind, ok := opinionKinds[req.Kind]
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown opinion kind %q", req.Kind))
		return
	}
	err := s.svc.Opinion(req.User, interact.Opinion{Kind: kind, Item: req.Item, Aspect: req.Aspect})
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "applied",
		"surprise": s.svc.Surprise(req.User),
	})
}

type influenceRequest struct {
	User   model.UserID `json:"user"`
	Item   model.ItemID `json:"item"`
	Weight float64      `json:"weight"`
}

// handleInfluence adjusts how strongly a past rating influences the
// content model — the Figure-3 scrutability extension.
func (s *Server) handleInfluence(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodPost) {
		return
	}
	var req influenceRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := s.svc.SetInfluenceWeight(req.User, req.Item, req.Weight); err != nil {
		s.writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "adjusted"})
}

// handleMetrics exposes the engine's usage counters in Prometheus
// text format — the survey's indirect efficiency/satisfaction measures
// (inspected explanations, repair-action activations) as live gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	m := s.svc.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "recsys_recommendations_total %d\n", m.Recommendations)
	fmt.Fprintf(w, "recsys_explanations_served_total %d\n", m.ExplanationsServed)
	fmt.Fprintf(w, "recsys_whylow_queries_total %d\n", m.WhyLowQueries)
	fmt.Fprintf(w, "recsys_repair_actions_total %d\n", m.RepairActions)
	fmt.Fprintf(w, "recsys_degraded_served_total %d\n", m.DegradedServed)
	s.writeShardMetrics(w)
	s.writeModelMetrics(w)
	s.writeWALMetrics(w)
	s.writeANNMetrics(w)
	// Per-stage pipeline counters, sorted for a stable scrape.
	keys := make([]string, 0, len(m.Stages))
	for k := range m.Stages {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := m.Stages[k]
		pipe, stage, _ := strings.Cut(k, "/")
		fmt.Fprintf(w, "recsys_stage_invocations_total{pipeline=%q,stage=%q} %d\n", pipe, stage, st.Invocations)
		fmt.Fprintf(w, "recsys_stage_errors_total{pipeline=%q,stage=%q} %d\n", pipe, stage, st.Errors)
		fmt.Fprintf(w, "recsys_stage_panics_total{pipeline=%q,stage=%q} %d\n", pipe, stage, st.Panics)
		fmt.Fprintf(w, "recsys_stage_latency_seconds_total{pipeline=%q,stage=%q} %.9f\n", pipe, stage, st.Latency.Seconds())
	}
	// Resilience events (breaker transitions, sheds, retries,
	// fallbacks), keyed pipeline/stage/event.
	ekeys := make([]string, 0, len(m.Resilience))
	for k := range m.Resilience {
		ekeys = append(ekeys, k)
	}
	sort.Strings(ekeys)
	for _, k := range ekeys {
		pipe, rest, _ := strings.Cut(k, "/")
		stage, event, _ := strings.Cut(rest, "/")
		fmt.Fprintf(w, "recsys_resilience_events_total{pipeline=%q,stage=%q,event=%q} %d\n",
			pipe, stage, event, m.Resilience[k])
	}
	s.writeTraceMetrics(w)
}

// writeTraceMetrics renders the tracer's per-operation counters:
// started/retained totals, a cumulative duration histogram, and
// exemplar lines that link a histogram bucket to one retained trace ID
// — the scrape-to-trace bridge ("the 250ms bucket grew; here is a
// whole request that landed in it"). No tracer, no lines.
func (s *Server) writeTraceMetrics(w http.ResponseWriter) {
	tm := s.tracer.Metrics()
	if len(tm) == 0 {
		return
	}
	ops := make([]string, 0, len(tm))
	for op := range tm {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	le := func(i int) string {
		if i >= len(trace.DurationBuckets) {
			return "+Inf"
		}
		return strconv.FormatFloat(trace.DurationBuckets[i].Seconds(), 'g', -1, 64)
	}
	for _, op := range ops {
		om := tm[op]
		fmt.Fprintf(w, "recsys_trace_started_total{op=%q} %d\n", op, om.Started)
		fmt.Fprintf(w, "recsys_trace_retained_total{op=%q} %d\n", op, om.Retained)
		reasons := make([]string, 0, len(om.ByReason))
		for reason := range om.ByReason {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		for _, reason := range reasons {
			fmt.Fprintf(w, "recsys_trace_retained_by_reason_total{op=%q,reason=%q} %d\n",
				op, reason, om.ByReason[reason])
		}
		cum := int64(0)
		for i, n := range om.Buckets {
			cum += n
			fmt.Fprintf(w, "recsys_trace_duration_seconds_bucket{op=%q,le=%q} %d\n", op, le(i), cum)
		}
		for i := range om.Buckets {
			ub := time.Duration(0)
			if i < len(trace.DurationBuckets) {
				ub = trace.DurationBuckets[i]
			}
			if ex := om.Exemplars[ub]; ex != nil {
				fmt.Fprintf(w, "recsys_trace_exemplar_duration_seconds{op=%q,le=%q,trace_id=%q,reason=%q} %.9f\n",
					op, le(i), ex.TraceID.String(), ex.Reason, ex.Duration.Seconds())
			}
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.retryAfter))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining",
			"items":  s.svc.Catalog().Len(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"items":  s.svc.Catalog().Len(),
	})
}
