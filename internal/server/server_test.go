package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/explain"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/recsys"
)

func testServer(t testing.TB) (*dataset.Community, *Server) {
	t.Helper()
	c := dataset.Movies(dataset.Config{Seed: 501, Users: 50, Items: 70, RatingsPerUser: 18})
	eng, err := core.New(c.Catalog, c.Ratings, core.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	return c, New(eng)
}

func doJSON(t *testing.T, s *Server, method, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var out map[string]any
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("invalid JSON response %q: %v", rec.Body.String(), err)
		}
	}
	return rec, out
}

func TestRecommendEndpoint(t *testing.T) {
	_, s := testServer(t)
	rec, out := doJSON(t, s, http.MethodGet, "/recommend?user=1&n=5", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, out)
	}
	recs, ok := out["recommendations"].([]any)
	if !ok || len(recs) != 5 {
		t.Fatalf("recommendations = %v", out["recommendations"])
	}
	first := recs[0].(map[string]any)
	if first["title"] == "" || first["score"] == nil {
		t.Fatalf("entry = %v", first)
	}
	if _, hasExp := first["explanation"]; !hasExp {
		t.Fatalf("top recommendation not explained: %v", first)
	}
}

func TestRecommendValidation(t *testing.T) {
	_, s := testServer(t)
	if rec, _ := doJSON(t, s, http.MethodGet, "/recommend", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing user: %d", rec.Code)
	}
	if rec, _ := doJSON(t, s, http.MethodGet, "/recommend?user=abc", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad user: %d", rec.Code)
	}
	if rec, _ := doJSON(t, s, http.MethodGet, "/recommend?user=9999", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("cold start: %d", rec.Code)
	}
	if rec, _ := doJSON(t, s, http.MethodPost, "/recommend?user=1", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("method: %d", rec.Code)
	}
}

func TestExplainEndpoint(t *testing.T) {
	_, s := testServer(t)
	_, out := doJSON(t, s, http.MethodGet, "/recommend?user=2&n=1", nil)
	recs := out["recommendations"].([]any)
	item := int(recs[0].(map[string]any)["item"].(float64))

	rec, exp := doJSON(t, s, http.MethodGet, fmt.Sprintf("/explain?user=2&item=%d", item), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, exp)
	}
	if exp["text"] == "" || exp["style"] == "" {
		t.Fatalf("explanation = %v", exp)
	}
	if exp["faithful"] != true {
		t.Fatalf("explanation not faithful: %v", exp)
	}
	if rec, _ := doJSON(t, s, http.MethodGet, "/explain?user=2&item=99999", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown item: %d", rec.Code)
	}
}

func TestWhyLowEndpoint(t *testing.T) {
	c, s := testServer(t)
	// Find any item for which whylow answers for user 3.
	found := false
	for _, it := range c.Catalog.Items() {
		rec, out := doJSON(t, s, http.MethodGet, fmt.Sprintf("/whylow?user=3&item=%d", it.ID), nil)
		if rec.Code == http.StatusOK {
			found = true
			if out["text"] == "" {
				t.Fatalf("whylow = %v", out)
			}
			break
		}
		if rec.Code != http.StatusNotFound {
			t.Fatalf("unexpected status %d: %v", rec.Code, out)
		}
	}
	if !found {
		t.Fatal("no item produced a why-low explanation")
	}
}

func TestSimilarEndpoint(t *testing.T) {
	c, s := testServer(t)
	seed := c.Catalog.Items()[0]
	rec, out := doJSON(t, s, http.MethodGet, fmt.Sprintf("/similar?user=1&item=%d&n=3", seed.ID), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, out)
	}
	similar, ok := out["similar"].([]any)
	if !ok || len(similar) == 0 {
		t.Fatalf("similar = %v", out)
	}
}

func TestRateEndpoint(t *testing.T) {
	c, s := testServer(t)
	item := c.Catalog.Items()[0].ID
	origVal, origOK := c.Ratings.Get(1, item)
	rec, _ := doJSON(t, s, http.MethodPost, "/rate", rateRequest{User: 1, Item: item, Value: 4.5})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	// The engine publishes copy-on-write snapshots and never mutates the
	// matrix passed to core.New; read the live state through Ratings().
	if v, ok := s.svc.Ratings().Get(1, item); !ok || v != 4.5 {
		t.Fatalf("rating not stored: %v %v", v, ok)
	}
	if v, ok := c.Ratings.Get(1, item); ok != origOK || v != origVal {
		t.Fatal("engine mutated the caller's matrix")
	}
	// Validation.
	if rec, _ := doJSON(t, s, http.MethodPost, "/rate", rateRequest{User: 1, Item: item, Value: 9}); rec.Code != http.StatusBadRequest {
		t.Fatalf("off-scale rating: %d", rec.Code)
	}
	if rec, _ := doJSON(t, s, http.MethodPost, "/rate", rateRequest{User: 1, Item: 99999, Value: 3}); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown item: %d", rec.Code)
	}
	if rec, _ := doJSON(t, s, http.MethodGet, "/rate", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("method: %d", rec.Code)
	}
}

func TestOpinionEndpoint(t *testing.T) {
	c, s := testServer(t)
	item := c.Catalog.Items()[0].ID
	rec, out := doJSON(t, s, http.MethodPost, "/opinion",
		opinionRequest{User: 1, Kind: "no-more-like-this", Item: item})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, out)
	}
	// Surprise-me reports the slider.
	rec, out = doJSON(t, s, http.MethodPost, "/opinion", opinionRequest{User: 1, Kind: "surprise-me"})
	if rec.Code != http.StatusOK || out["surprise"].(float64) != 0.25 {
		t.Fatalf("surprise response = %d %v", rec.Code, out)
	}
	// Unknown kind.
	if rec, _ := doJSON(t, s, http.MethodPost, "/opinion", opinionRequest{User: 1, Kind: "meh"}); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown kind: %d", rec.Code)
	}
	// Unknown item.
	if rec, _ := doJSON(t, s, http.MethodPost, "/opinion",
		opinionRequest{User: 1, Kind: "more-like-this", Item: 99999}); rec.Code == http.StatusOK {
		t.Fatal("unknown item accepted")
	}
	// Malformed body.
	req := httptest.NewRequest(http.MethodPost, "/opinion", bytes.NewBufferString("{nope"))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", w.Code)
	}
}

func TestOpinionAffectsRecommendations(t *testing.T) {
	// Full loop over HTTP: block the top pick, recommend again, gone.
	_, s := testServer(t)
	_, out := doJSON(t, s, http.MethodGet, "/recommend?user=4&n=5", nil)
	top := int(out["recommendations"].([]any)[0].(map[string]any)["item"].(float64))
	rec, _ := doJSON(t, s, http.MethodPost, "/opinion",
		opinionRequest{User: 4, Kind: "no-more-like-this", Item: model.ItemID(top)})
	if rec.Code != http.StatusOK {
		t.Fatalf("opinion status = %d", rec.Code)
	}
	_, out = doJSON(t, s, http.MethodGet, "/recommend?user=4&n=5", nil)
	for _, e := range out["recommendations"].([]any) {
		if int(e.(map[string]any)["item"].(float64)) == top {
			t.Fatal("blocked item still recommended over HTTP")
		}
	}
}

func TestHealthz(t *testing.T) {
	_, s := testServer(t)
	rec, out := doJSON(t, s, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz = %d %v", rec.Code, out)
	}
	if out["items"].(float64) != 70 {
		t.Fatalf("items = %v", out["items"])
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, s := testServer(t)
	// Generate some traffic first.
	doJSON(t, s, http.MethodGet, "/recommend?user=1&n=3", nil)
	doJSON(t, s, http.MethodPost, "/opinion", opinionRequest{User: 1, Kind: "surprise-me"})

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"recsys_recommendations_total 1",
		"recsys_repair_actions_total 1",
		"recsys_explanations_served_total",
		"recsys_whylow_queries_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestInfluenceEndpoint(t *testing.T) {
	c, s := testServer(t)
	// Pick an item user 1 has rated.
	var rated model.ItemID
	for i := range c.Ratings.UserRatings(1) {
		if rated == 0 || i < rated {
			rated = i
		}
	}
	rec, _ := doJSON(t, s, http.MethodPost, "/influence",
		influenceRequest{User: 1, Item: rated, Weight: 0.25})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec, _ := doJSON(t, s, http.MethodPost, "/influence",
		influenceRequest{User: 1, Item: 99999, Weight: 0.5}); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown item: %d", rec.Code)
	}
	if rec, _ := doJSON(t, s, http.MethodGet, "/influence", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("method: %d", rec.Code)
	}
}

func TestEndpointMethodAndParamValidation(t *testing.T) {
	_, s := testServer(t)
	cases := []struct {
		method, path string
		want         int
	}{
		{http.MethodPost, "/explain?user=1&item=1", http.StatusMethodNotAllowed},
		{http.MethodGet, "/explain?item=1", http.StatusBadRequest},
		{http.MethodGet, "/explain?user=1&item=zz", http.StatusBadRequest},
		{http.MethodPost, "/similar?user=1&item=1", http.StatusMethodNotAllowed},
		{http.MethodGet, "/similar?item=1", http.StatusBadRequest},
		{http.MethodGet, "/similar?user=1", http.StatusBadRequest},
		{http.MethodGet, "/similar?user=1&item=1&n=zz", http.StatusBadRequest},
		{http.MethodGet, "/similar?user=1&item=99999", http.StatusNotFound},
		{http.MethodGet, "/recommend?user=1&n=zz", http.StatusBadRequest},
		{http.MethodPost, "/whylow?user=1&item=1", http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		rec, _ := doJSON(t, s, c.method, c.path, nil)
		if rec.Code != c.want {
			t.Errorf("%s %s = %d, want %d", c.method, c.path, rec.Code, c.want)
		}
	}
	// Malformed rate body.
	req := httptest.NewRequest(http.MethodPost, "/rate", bytes.NewBufferString("{"))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Errorf("malformed rate body: %d", w.Code)
	}
	// Malformed influence body.
	req = httptest.NewRequest(http.MethodPost, "/influence", bytes.NewBufferString("{"))
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Errorf("malformed influence body: %d", w.Code)
	}
}

func TestNegativeQueryParamsRejected(t *testing.T) {
	_, s := testServer(t)
	paths := []string{
		"/recommend?user=-1",
		"/recommend?user=1&n=-5",
		"/explain?user=-1&item=1",
		"/explain?user=1&item=-1",
		"/whylow?user=-3&item=1",
		"/similar?user=1&item=-2",
		"/similar?user=1&item=1&n=-1",
	}
	for _, p := range paths {
		rec, out := doJSON(t, s, http.MethodGet, p, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400 (%v)", p, rec.Code, out)
		}
	}
}

// TestMethodNotAllowedSetsAllow checks every endpoint answers a wrong
// method with 405 plus the Allow header RFC 9110 requires.
func TestMethodNotAllowedSetsAllow(t *testing.T) {
	_, s := testServer(t)
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodPost, "/recommend?user=1", http.MethodGet},
		{http.MethodPost, "/explain?user=1&item=1", http.MethodGet},
		{http.MethodPost, "/whylow?user=1&item=1", http.MethodGet},
		{http.MethodPost, "/similar?user=1&item=1", http.MethodGet},
		{http.MethodGet, "/rate", http.MethodPost},
		{http.MethodGet, "/opinion", http.MethodPost},
		{http.MethodDelete, "/influence", http.MethodPost},
		{http.MethodPost, "/healthz", http.MethodGet},
		{http.MethodPost, "/metrics", http.MethodGet},
	}
	for _, c := range cases {
		rec, _ := doJSON(t, s, c.method, c.path, nil)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", c.method, c.path, rec.Code)
		}
		if got := rec.Header().Get("Allow"); got != c.allow {
			t.Errorf("%s %s Allow = %q, want %q", c.method, c.path, got, c.allow)
		}
	}
}

// TestStatusFor pins the full error→HTTP-status mapping.
func TestStatusFor(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"cold start", recsys.ErrColdStart, http.StatusNotFound},
		{"wrapped cold start", fmt.Errorf("user 7: %w", recsys.ErrColdStart), http.StatusNotFound},
		{"no evidence", explain.ErrNoEvidence, http.StatusNotFound},
		{"unknown item", model.ErrUnknownItem, http.StatusNotFound},
		{"wrapped unknown item", fmt.Errorf("core: %w", model.ErrUnknownItem), http.StatusNotFound},
		{"stage panic", &pipeline.PanicError{Pipeline: "recommend", Stage: "rank", Value: "boom"}, http.StatusInternalServerError},
		{"deadline exceeded", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"client cancelled", context.Canceled, statusClientClosedRequest},
		{"overloaded", core.ErrOverloaded, http.StatusTooManyRequests},
		{"wrapped overloaded", fmt.Errorf("stage recommend/rank: %w", core.ErrOverloaded), http.StatusTooManyRequests},
		{"breaker open", core.ErrBreakerOpen, http.StatusServiceUnavailable},
		{"wrapped breaker open", fmt.Errorf("stage explain/explain: %w", core.ErrBreakerOpen), http.StatusServiceUnavailable},
		{"degraded serving failed", core.ErrDegraded, http.StatusServiceUnavailable},
		{"non-finite value", fmt.Errorf("rating NaN: %w", core.ErrNonFiniteValue), http.StatusBadRequest},
		{"no influence model", core.ErrNoInfluenceModel, http.StatusBadRequest},
		{"generic", errors.New("anything else"), http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := statusFor(c.err); got != c.want {
			t.Errorf("%s: statusFor(%v) = %d, want %d", c.name, c.err, got, c.want)
		}
	}
}

// TestPostRejectsNonJSONContentType checks the 415 contract on every
// POST endpoint.
func TestPostRejectsNonJSONContentType(t *testing.T) {
	_, s := testServer(t)
	for _, path := range []string{"/rate", "/opinion", "/influence"} {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(`{"user":1}`))
		req.Header.Set("Content-Type", "text/plain")
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusUnsupportedMediaType {
			t.Errorf("%s with text/plain = %d, want 415", path, w.Code)
		}
	}
	// A charset parameter on the JSON type is fine.
	c, _ := testServer(t)
	item := c.Catalog.Items()[0].ID
	body := fmt.Sprintf(`{"user":1,"item":%d,"value":4}`, item)
	req := httptest.NewRequest(http.MethodPost, "/rate", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json; charset=utf-8")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Errorf("rate with charset param = %d, want 200: %s", w.Code, w.Body.String())
	}
}

// TestPostBodyTooLarge checks the 64 KiB MaxBytesReader cap.
func TestPostBodyTooLarge(t *testing.T) {
	_, s := testServer(t)
	huge := `{"user":1,"pad":"` + strings.Repeat("x", 80<<10) + `"}`
	for _, path := range []string{"/rate", "/opinion", "/influence"} {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(huge))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s with 80KiB body = %d, want 413", path, w.Code)
		}
	}
}

// TestRateRejectsOutOfRangeNumbers: a JSON number too large for
// float64 must not reach the engine.
func TestRateRejectsOutOfRangeNumbers(t *testing.T) {
	_, s := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/rate",
		strings.NewReader(`{"user":1,"item":1,"value":1e999}`))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("overflowing value = %d, want 400", w.Code)
	}
}

// TestMetricsExposesStageCounters checks /metrics reports per-stage
// pipeline latencies after traffic has flowed.
func TestMetricsExposesStageCounters(t *testing.T) {
	_, s := testServer(t)
	doJSON(t, s, http.MethodGet, "/recommend?user=1&n=3", nil)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		`recsys_stage_invocations_total{pipeline="recommend",stage="rank"} 1`,
		`recsys_stage_invocations_total{pipeline="recommend",stage="rerank"} 1`,
		`recsys_stage_invocations_total{pipeline="recommend",stage="explainTopN"} 1`,
		`recsys_stage_invocations_total{pipeline="recommend",stage="present"} 1`,
		`recsys_stage_errors_total{pipeline="recommend",stage="rank"} 0`,
		`recsys_stage_latency_seconds_total{pipeline="recommend",stage="rank"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
