// The Switchboard lets a binary open its listener before the backend
// finishes write-ahead-log replay: until Ready is called, /healthz
// answers 503 {"status":"recovering"} — so load balancers know the
// instance exists but must not route to it — and every other path
// answers 503 with a Retry-After hint. Once Ready swaps the real
// handler in, the switchboard is a single atomic load per request.

package server

import (
	"net/http"
	"sync/atomic"
	"time"
)

// Switchboard is an http.Handler that serves "recovering" responses
// until Ready hands it the real one.
type Switchboard struct {
	h atomic.Pointer[http.Handler]
}

// NewSwitchboard returns a switchboard in the recovering state.
func NewSwitchboard() *Switchboard { return &Switchboard{} }

// Ready installs the real handler; every subsequent request is
// forwarded to it. Calling Ready again replaces the handler.
func (sb *Switchboard) Ready(h http.Handler) { sb.h.Store(&h) }

// ServeHTTP implements http.Handler.
func (sb *Switchboard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := sb.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	w.Header().Set("Retry-After", retryAfterSeconds(time.Second))
	if r.URL.Path == "/healthz" {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "recovering"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable,
		errorJSON{Error: "recovering: write-ahead log replay in progress"})
}
