// HTTP-level tracing tests: X-Trace-ID stamping, W3C traceparent
// propagation, the /debug/traces endpoints and their filters, the
// recsys_trace_* metrics lines, the issue's chaos acceptance scenario
// end to end, and a drain test proving in-flight *traced* requests
// complete (and retain their traces) while /healthz reports draining.

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// tracedServer builds a server whose engine and HTTP layer share one
// tracer, mirroring cmd/recserver's wiring.
func tracedServer(t testing.TB, tr *trace.Tracer, cfg *core.ResilienceConfig, rules ...fault.Rule) *Server {
	t.Helper()
	c := dataset.Movies(dataset.Config{Seed: 801, Users: 30, Items: 50, RatingsPerUser: 12})
	opts := []core.Option{core.WithSeed(1), core.WithTracer(tr)}
	if cfg != nil {
		opts = append(opts, core.WithResilience(*cfg))
	}
	if len(rules) > 0 {
		inj := fault.NewInjector(801, rules...)
		opts = append(opts, core.WithChaos(inj.Interceptor()))
	}
	eng, err := core.New(c.Catalog, c.Ratings, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return New(eng, WithTracer(tr))
}

// TestXTraceIDOnEveryResponse: served endpoints stamp X-Trace-ID;
// operational endpoints (/healthz, /metrics) are not traced.
func TestXTraceIDOnEveryResponse(t *testing.T) {
	tr := trace.New(trace.Options{SampleRate: 1})
	s := tracedServer(t, tr, nil)

	rec, _ := doJSON(t, s, http.MethodGet, "/recommend?user=1&n=3", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("recommend = %d", rec.Code)
	}
	id := rec.Header().Get("X-Trace-ID")
	if id == "" {
		t.Fatal("no X-Trace-ID on a traced response")
	}
	if _, err := trace.ParseTraceID(id); err != nil {
		t.Fatalf("X-Trace-ID %q unparseable: %v", id, err)
	}
	// Even a 400 is traced — the trace is how you debug it.
	rec, _ = doJSON(t, s, http.MethodGet, "/recommend?user=nope", nil)
	if rec.Code != http.StatusBadRequest || rec.Header().Get("X-Trace-ID") == "" {
		t.Fatalf("bad request = %d, X-Trace-ID %q; want 400 with a trace", rec.Code, rec.Header().Get("X-Trace-ID"))
	}
	for _, path := range []string{"/healthz", "/metrics"} {
		raw := httptest.NewRecorder()
		s.ServeHTTP(raw, httptest.NewRequest(http.MethodGet, path, nil))
		if raw.Header().Get("X-Trace-ID") != "" {
			t.Fatalf("%s is traced; operational endpoints must not be", path)
		}
	}
}

// TestTraceparentPropagation: the server adopts a caller's W3C trace
// context — same trace ID end to end, root span parented to the remote
// span — and the sampled flag forces retention.
func TestTraceparentPropagation(t *testing.T) {
	tr := trace.New(trace.Options{}) // no head sampling: only the flag retains
	s := tracedServer(t, tr, nil)

	const remote = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req := httptest.NewRequest(http.MethodGet, "/recommend?user=1&n=3", nil)
	req.Header.Set("traceparent", remote)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if got := rec.Header().Get("X-Trace-ID"); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("X-Trace-ID = %q, want the propagated trace id", got)
	}

	id, _ := trace.ParseTraceID("4bf92f3577b34da6a3ce929d0e0e4736")
	d := tr.Lookup(id)
	if d == nil {
		t.Fatal("sampled remote trace not retained")
	}
	var root *trace.Span
	for i := range d.Spans {
		if d.Spans[i].Kind == trace.KindRequest {
			root = &d.Spans[i]
		}
	}
	if root == nil || root.Parent.String() != "00f067aa0ba902b7" {
		t.Fatalf("root span = %+v, want parent = the remote span", root)
	}

	// A malformed traceparent falls back to a fresh root trace.
	req = httptest.NewRequest(http.MethodGet, "/recommend?user=1&n=3", nil)
	req.Header.Set("traceparent", "garbage")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Trace-ID") == "" {
		t.Fatal("malformed traceparent broke the request")
	}
}

// TestChaosTraceRetrievableByClient is the issue's acceptance scenario
// over HTTP: a chaos-injected explain (retry → breaker open → degraded
// fallback) answers 200 degraded; the client takes its X-Trace-ID to
// /debug/traces/{id} and reads a span tree showing the retry attempt,
// the breaker flip and the fallback reroute.
func TestChaosTraceRetrievableByClient(t *testing.T) {
	tr := trace.New(trace.Options{})
	s := tracedServer(t, tr,
		&core.ResilienceConfig{BreakerThreshold: 1, RetryAttempts: 2},
		fault.Rule{Pipeline: pipeline.OpExplain, Stage: "explain", Nth: 1, Err: fault.ErrInjected})

	rec, out := doJSON(t, s, http.MethodGet, "/explain?user=1&item=3", nil)
	if rec.Code != http.StatusOK || out["degraded"] != true {
		t.Fatalf("chaos explain = %d %v, want degraded 200", rec.Code, out)
	}
	id := rec.Header().Get("X-Trace-ID")
	if id == "" {
		t.Fatal("no X-Trace-ID on the degraded response")
	}

	rec, _ = doJSON(t, s, http.MethodGet, "/debug/traces/"+id, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/traces/%s = %d, want 200", id, rec.Code)
	}
	var d trace.Data
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.ID.String() != id || !d.Degraded || d.Reason != trace.ReasonDegraded {
		t.Fatalf("trace = id %s degraded %v reason %q", d.ID, d.Degraded, d.Reason)
	}
	kinds := map[string]string{}
	for _, sp := range d.Spans {
		kinds[sp.Name] = sp.Kind
	}
	for _, want := range []string{"retry", "breaker_open", "fallback"} {
		if kinds[want] != trace.KindEvent {
			t.Fatalf("span tree lacks %s event: %v", want, kinds)
		}
	}
	if kinds["explain/explain"] != trace.KindStage || kinds["snapshot"] != trace.KindSnapshot {
		t.Fatalf("span tree lacks stage/snapshot spans: %v", kinds)
	}

	// An unretained or unknown ID is a 404, a malformed one a 400.
	rec, _ = doJSON(t, s, http.MethodGet, "/debug/traces/"+strings.Repeat("ab", 16), nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown trace = %d, want 404", rec.Code)
	}
	rec, _ = doJSON(t, s, http.MethodGet, "/debug/traces/xyz", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed trace id = %d, want 400", rec.Code)
	}
}

// TestDebugTraceListFilters: /debug/traces supports op, status, min_ms
// and limit, and reports latency quantiles over the matched set.
func TestDebugTraceListFilters(t *testing.T) {
	tr := trace.New(trace.Options{SampleRate: 1})
	s := tracedServer(t, tr, nil)

	for i := 0; i < 3; i++ {
		if rec, _ := doJSON(t, s, http.MethodGet, "/recommend?user=1&n=3", nil); rec.Code != 200 {
			t.Fatalf("recommend = %d", rec.Code)
		}
	}
	if rec, _ := doJSON(t, s, http.MethodGet, "/explain?user=1&item=3", nil); rec.Code != 200 {
		t.Fatal("explain failed")
	}
	// One errored request (bad user id never reaches the engine, so
	// error status comes from the 400 marking the root span failed...
	// use an unknown item instead, which errors inside the pipeline).
	doJSON(t, s, http.MethodGet, "/explain?user=1&item=99999", nil)

	get := func(path string) map[string]any {
		rec, out := doJSON(t, s, http.MethodGet, path, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d", path, rec.Code)
		}
		return out
	}
	all := get("/debug/traces")
	if n := int(all["matched"].(float64)); n != 5 {
		t.Fatalf("matched = %d, want 5", n)
	}
	if all["latency_ms"] == nil {
		t.Fatal("no latency summary")
	}
	rows := func(out map[string]any) []any { r, _ := out["traces"].([]any); return r }
	if got := rows(get("/debug/traces?op=recommend")); len(got) != 3 {
		t.Fatalf("op filter matched %d, want 3", len(got))
	}
	if got := rows(get("/debug/traces?status=error")); len(got) != 1 {
		t.Fatalf("status filter matched %d, want 1", len(got))
	}
	if got := rows(get("/debug/traces?limit=2")); len(got) != 2 {
		t.Fatalf("limit ignored: %d rows", len(got))
	}
	if got := rows(get("/debug/traces?min_ms=60000")); len(got) != 0 {
		t.Fatalf("min_ms filter matched %d, want 0", len(got))
	}
	if rec, _ := doJSON(t, s, http.MethodGet, "/debug/traces?limit=abc", nil); rec.Code != http.StatusBadRequest {
		t.Fatal("bad limit accepted")
	}
}

// TestTraceMetricsLines: /metrics exposes the recsys_trace_* family,
// including cumulative histogram buckets and an exemplar linking a
// bucket to a retained trace ID.
func TestTraceMetricsLines(t *testing.T) {
	tr := trace.New(trace.Options{SampleRate: 1})
	s := tracedServer(t, tr, nil)
	rec, _ := doJSON(t, s, http.MethodGet, "/recommend?user=1&n=3", nil)
	id := rec.Header().Get("X-Trace-ID")

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`recsys_trace_started_total{op="recommend"} 1`,
		`recsys_trace_retained_total{op="recommend"} 1`,
		`recsys_trace_retained_by_reason_total{op="recommend",reason="sampled"} 1`,
		`recsys_trace_duration_seconds_bucket{op="recommend",le="+Inf"} 1`,
		fmt.Sprintf(`trace_id="%s"`, id),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

// TestDrainCompletesInFlightTracedRequests is the satellite drain
// test: K traced requests enter a gated stage, SIGTERM-style drain
// starts, /healthz flips to 503 — and when the gate opens every
// in-flight request completes 200 with its X-Trace-ID, and the traces
// (slow by the tracer's fake clock) are retained and retrievable.
func TestDrainCompletesInFlightTracedRequests(t *testing.T) {
	clock := struct {
		sync.Mutex
		now time.Time
	}{now: time.Unix(5000, 0)}
	tick := func() time.Time {
		clock.Lock()
		defer clock.Unlock()
		return clock.now
	}
	advance := func(d time.Duration) {
		clock.Lock()
		defer clock.Unlock()
		clock.now = clock.now.Add(d)
	}

	const inflight = 3
	release := make(chan struct{})
	entered := make(chan struct{}, inflight)
	gate := func(info pipeline.StageInfo, next pipeline.Handler) pipeline.Handler {
		if info.Pipeline != pipeline.OpRecommend || info.Stage != "rank" {
			return next
		}
		return func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
			entered <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return next(ctx, req)
		}
	}

	tr := trace.New(trace.Options{SlowThreshold: 100 * time.Millisecond, Clock: tick})
	c := dataset.Movies(dataset.Config{Seed: 802, Users: 20, Items: 30, RatingsPerUser: 8})
	eng, err := core.New(c.Catalog, c.Ratings, core.WithTracer(tr), core.WithChaos(gate))
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, WithTracer(tr))
	srv := httptest.NewServer(s)
	defer srv.Close()

	var wg sync.WaitGroup
	ids := make(chan string, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/recommend?user=1&n=3")
			if err != nil {
				ids <- ""
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				ids <- ""
				return
			}
			ids <- resp.Header.Get("X-Trace-ID")
		}()
	}
	for i := 0; i < inflight; i++ {
		<-entered
	}

	// Drain begins while all K requests are gated inside the pipeline.
	s.StartDrain()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", resp.StatusCode)
	}

	// The requests were gated long enough to cross the slow threshold.
	advance(200 * time.Millisecond)
	close(release)
	wg.Wait()

	for i := 0; i < inflight; i++ {
		id := <-ids
		if id == "" {
			t.Fatal("an in-flight request failed during drain")
		}
		tid, err := trace.ParseTraceID(id)
		if err != nil {
			t.Fatal(err)
		}
		d := tr.Lookup(tid)
		if d == nil {
			t.Fatalf("trace %s of a drain-surviving request not retained", id)
		}
		if d.Reason != trace.ReasonSlow {
			t.Fatalf("trace %s reason = %q, want slow (gated past the threshold)", id, d.Reason)
		}
	}
}

// TestDebugMux: the standalone debug mux serves traces always and
// pprof only when asked.
func TestDebugMux(t *testing.T) {
	tr := trace.New(trace.Options{SampleRate: 1})
	s := tracedServer(t, tr, nil)
	doJSON(t, s, http.MethodGet, "/recommend?user=1&n=3", nil)

	plain := s.DebugMux(false)
	rec := httptest.NewRecorder()
	plain.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("debug mux traces = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	plain.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("pprof served without the flag: %d", rec.Code)
	}

	withPprof := s.DebugMux(true)
	rec = httptest.NewRecorder()
	withPprof.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof index = %d, want 200", rec.Code)
	}
}
