// The durability debug surface: GET /debug/wal reports write-ahead
// log state when the backing Service keeps one — the engine's log on a
// single-engine server; the topology log plus every shard's engine and
// journal logs on a durable cluster — and /metrics grows recsys_wal_*
// lines. Feature-detected through the WALStater interface exactly like
// the cluster and model surfaces, so an in-memory server serves what
// it served before.

package server

import (
	"fmt"
	"io"
	"net/http"

	"repro/internal/wal"
)

// WALStater is implemented by Service backends with a durable log:
// core.Engine reports its write-ahead log, cluster.Router its topology
// log. ok is false when the backend runs in-memory only.
type WALStater interface {
	WALState() (wal.State, bool)
}

// hasWALSurface reports whether the backend has any durable-log state
// worth registering /debug/wal for.
func hasWALSurface(svc any) bool {
	ws, ok := svc.(WALStater)
	if !ok {
		return false
	}
	_, ok = ws.WALState()
	return ok
}

// handleWAL serves GET /debug/wal: the backend's log state, plus the
// per-shard engine and journal logs on a durable cluster.
func (s *Server) handleWAL(w http.ResponseWriter, r *http.Request) {
	if !allowMethod(w, r, http.MethodGet) {
		return
	}
	ws, ok := s.svc.(WALStater)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("backend has no write-ahead log"))
		return
	}
	st, ok := ws.WALState()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("backend has no write-ahead log"))
		return
	}
	payload := map[string]any{"wal": st}
	if cs, isCluster := s.svc.(ClusterStater); isCluster {
		type shardWAL struct {
			ID         int        `json:"id"`
			WAL        *wal.State `json:"wal,omitempty"`
			JournalWAL *wal.State `json:"journal_wal,omitempty"`
		}
		cst := cs.ClusterState()
		shards := make([]shardWAL, 0, len(cst.Shards))
		for _, sh := range cst.Shards {
			shards = append(shards, shardWAL{ID: sh.ID, WAL: sh.WAL, JournalWAL: sh.JournalWAL})
		}
		payload["shards"] = shards
	}
	writeJSON(w, http.StatusOK, payload)
}

// writeWALMetrics renders the recsys_wal_* lines on /metrics:
// unlabelled for a single engine; on a durable cluster the topology
// log carries log="topology" and each shard's logs carry shard and
// log labels. In-memory backends emit nothing.
func (s *Server) writeWALMetrics(w http.ResponseWriter) {
	ws, ok := s.svc.(WALStater)
	if !ok {
		return
	}
	st, ok := ws.WALState()
	if !ok {
		return
	}
	cs, isCluster := s.svc.(ClusterStater)
	if !isCluster {
		writeWALLines(w, "", st)
		return
	}
	writeWALLines(w, `{log="topology"}`, st)
	for _, sh := range cs.ClusterState().Shards {
		if sh.WAL != nil {
			writeWALLines(w, fmt.Sprintf("{shard=\"%d\",log=\"engine\"}", sh.ID), *sh.WAL)
		}
		if sh.JournalWAL != nil {
			writeWALLines(w, fmt.Sprintf("{shard=\"%d\",log=\"journal\"}", sh.ID), *sh.JournalWAL)
		}
	}
}

func writeWALLines(w io.Writer, labels string, st wal.State) {
	failed := 0
	if st.Failed {
		failed = 1
	}
	fmt.Fprintf(w, "recsys_wal_appends_total%s %d\n", labels, st.Appends)
	fmt.Fprintf(w, "recsys_wal_append_errors_total%s %d\n", labels, st.AppendErrors)
	fmt.Fprintf(w, "recsys_wal_fsyncs_total%s %d\n", labels, st.Fsyncs)
	fmt.Fprintf(w, "recsys_wal_checkpoints_total%s %d\n", labels, st.Checkpoints)
	fmt.Fprintf(w, "recsys_wal_checkpoint_age%s %d\n", labels, st.CheckpointAge)
	fmt.Fprintf(w, "recsys_wal_segments%s %d\n", labels, st.Segments)
	fmt.Fprintf(w, "recsys_wal_replayed_records%s %d\n", labels, st.RecoveredRecords)
	fmt.Fprintf(w, "recsys_wal_truncated_bytes%s %d\n", labels, st.RecoveredTruncated)
	fmt.Fprintf(w, "recsys_wal_failed%s %d\n", labels, failed)
}
