package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/wal"
)

func durableServer(t *testing.T) (*core.Engine, *Server) {
	t.Helper()
	c := dataset.Movies(dataset.Config{Seed: 507, Users: 40, Items: 60, RatingsPerUser: 15})
	eng, err := core.New(c.Catalog, c.Ratings,
		core.WithSeed(1),
		core.WithWAL(core.WALConfig{FS: wal.NewMemFS()}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return eng, New(eng)
}

func TestDebugWALEndpoint(t *testing.T) {
	eng, s := durableServer(t)
	if err := eng.Rate(1, 2, 4); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/debug/wal", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		WAL wal.State `json:"wal"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if out.WAL.Appends == 0 || out.WAL.LastSeq == 0 {
		t.Fatalf("wal state looks empty: %+v", out.WAL)
	}
}

func TestDebugWALAbsentWithoutLog(t *testing.T) {
	_, s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/debug/wal", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("in-memory server served /debug/wal with %d", rec.Code)
	}
}

func TestWALMetricsLines(t *testing.T) {
	eng, s := durableServer(t)
	if err := eng.Rate(1, 2, 4); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		"recsys_wal_appends_total ",
		"recsys_wal_fsyncs_total ",
		"recsys_wal_checkpoints_total ",
		"recsys_wal_checkpoint_age ",
		"recsys_wal_segments ",
		"recsys_wal_replayed_records ",
		"recsys_wal_truncated_bytes ",
		"recsys_wal_failed 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestWALMetricsAbsentWithoutLog(t *testing.T) {
	_, s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if strings.Contains(rec.Body.String(), "recsys_wal_") {
		t.Fatal("in-memory server emitted recsys_wal_ lines")
	}
}

func TestClusterWALSurface(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 509, Users: 40, Items: 60, RatingsPerUser: 15})
	space := wal.NewMemSpace()
	rt, err := cluster.New(c.Catalog, c.Ratings, cluster.Options{
		Shards: 3, Seed: 9,
		Durability: &cluster.Durability{Space: space.FS},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(rt)

	req := httptest.NewRequest(http.MethodGet, "/debug/wal", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		WAL    wal.State `json:"wal"`
		Shards []struct {
			ID         int        `json:"id"`
			WAL        *wal.State `json:"wal"`
			JournalWAL *wal.State `json:"journal_wal"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(out.Shards) != 3 {
		t.Fatalf("got %d shard log entries, want 3", len(out.Shards))
	}
	for _, sh := range out.Shards {
		if sh.WAL == nil || sh.JournalWAL == nil {
			t.Fatalf("shard %d missing log state", sh.ID)
		}
	}

	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		`recsys_wal_appends_total{log="topology"}`,
		`recsys_wal_appends_total{shard="0",log="engine"}`,
		`recsys_wal_appends_total{shard="0",log="journal"}`,
		`recsys_shard_journal_errors_total{shard="0"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

// TestSwitchboardRecoveringHealth: until Ready, /healthz answers 503
// "recovering" (with a Retry-After hint) and API paths refuse; after
// Ready every request reaches the real handler.
func TestSwitchboardRecoveringHealth(t *testing.T) {
	sb := NewSwitchboard()

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	sb.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("recovering /healthz = %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("recovering /healthz missing Retry-After")
	}
	var health map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "recovering" {
		t.Fatalf("status = %q, want recovering", health["status"])
	}

	rec = httptest.NewRecorder()
	sb.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/recommend?user=1", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("recovering API path = %d", rec.Code)
	}

	_, s := testServer(t)
	sb.Ready(s)
	rec = httptest.NewRecorder()
	sb.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("ready /healthz = %d: %s", rec.Code, rec.Body.String())
	}
}
