package stats

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-bin histogram over a closed interval. The paper's
// most persuasive explanation interface (Herlocker et al. 2000) is a
// histogram of neighbours' ratings, so the histogram is also a
// user-facing rendering primitive, not just an analysis tool.
type Histogram struct {
	Lo, Hi float64 // closed interval covered by the bins
	Counts []int   // one counter per bin
}

// NewHistogram creates a histogram of bins equal-width bins on [lo, hi].
// It panics when bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram interval is empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records an observation. Values outside [Lo, Hi] are clamped into
// the nearest bin so that no observation is silently dropped.
func (h *Histogram) Add(x float64) {
	h.Counts[h.binOf(x)]++
}

func (h *Histogram) binOf(x float64) int {
	if x <= h.Lo {
		return 0
	}
	if x >= h.Hi {
		return len(h.Counts) - 1
	}
	b := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	return b
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the recorded
// observations by walking the cumulative bin counts and interpolating
// linearly *inside* the bin that crosses rank q·Total. The boundary
// semantics are deliberate and tested:
//
//   - q = 0 returns the lower edge of the first non-empty bin (the
//     histogram's best lower bound on the minimum);
//   - q = 1 returns the upper edge of the last non-empty bin (the best
//     upper bound on the maximum);
//   - a single observation interpolates across its whole bin: q=0 and
//     q=1 give the bin edges, q=0.5 the bin midpoint — the histogram
//     knows only the bin, not the value;
//   - empty bins between populated ones contribute width but no mass,
//     so no quantile ever lands strictly inside one.
//
// It panics on q outside [0, 1] or an empty histogram, matching
// Quantile on slices.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic("stats: quantile out of range")
	}
	total := h.Total()
	if total == 0 {
		panic("stats: Quantile of empty histogram")
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	target := q * float64(total)
	cum := 0
	last := 0 // last non-empty bin seen, for the q=1 fallback
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		last = i
		next := cum + c
		if float64(next) >= target {
			lo := h.Lo + float64(i)*width
			frac := (target - float64(cum)) / float64(c)
			return lo + frac*width
		}
		cum = next
	}
	// Only reachable through floating-point shortfall at q ≈ 1: the
	// answer is then the upper edge of the last populated bin.
	return h.Lo + float64(last+1)*width
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int {
	var t int
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinLabel returns a short label for bin i, e.g. "[1.0,2.0)".
func (h *Histogram) BinLabel(i int) string {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	lo := h.Lo + float64(i)*w
	if i == len(h.Counts)-1 {
		return fmt.Sprintf("[%.1f,%.1f]", lo, h.Hi)
	}
	return fmt.Sprintf("[%.1f,%.1f)", lo, lo+w)
}

// Render draws the histogram as horizontal ASCII bars, scaled so the
// largest bin uses width characters. This is the rendering used by the
// Herlocker-style neighbour-ratings explanation.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if max > 0 {
			bar = c * width / max
		}
		if c > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%-12s |%-*s %d\n", h.BinLabel(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}
