package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(1, 5, 4) // bins [1,2) [2,3) [3,4) [4,5]
	for _, v := range []float64{1, 1.5, 2, 3.9, 4, 5} {
		h.Add(v)
	}
	want := []int{2, 1, 1, 2}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("bin %d = %d, want %d (counts %v)", i, h.Counts[i], c, h.Counts)
		}
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-100)
	h.Add(+100)
	if h.Counts[0] != 1 || h.Counts[4] != 1 {
		t.Fatalf("outliers not clamped: %v", h.Counts)
	}
}

func TestHistogramTotalPreservedQuick(t *testing.T) {
	r := rng.New(9)
	f := func(n uint16) bool {
		count := int(n%500) + 1
		h := NewHistogram(0, 1, 7)
		for i := 0; i < count; i++ {
			h.Add(r.Norm(0.5, 0.6)) // deliberately spills outside [0,1]
		}
		return h.Total() == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero bins":      func() { NewHistogram(0, 1, 0) },
		"empty interval": func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHistogramBinLabels(t *testing.T) {
	h := NewHistogram(1, 5, 4)
	if got := h.BinLabel(0); got != "[1.0,2.0)" {
		t.Fatalf("label 0 = %q", got)
	}
	if got := h.BinLabel(3); got != "[4.0,5.0]" {
		t.Fatalf("last label = %q", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(1, 5, 4)
	for i := 0; i < 8; i++ {
		h.Add(4.5)
	}
	h.Add(1.5)
	out := h.Render(20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("render produced %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], strings.Repeat("#", 20)) {
		t.Fatalf("dominant bin should hit full width:\n%s", out)
	}
	// A non-empty bin must draw at least one mark even when tiny.
	if !strings.Contains(lines[0], "#") {
		t.Fatalf("small bin lost its mark:\n%s", out)
	}
	// Width <= 0 falls back to a default rather than panicking.
	if NewHistogram(0, 1, 2).Render(0) == "" {
		t.Fatal("zero-width render should still produce output")
	}
}

// TestHistogramQuantileBoundaries codifies the boundary semantics of
// the binned quantile estimator: q=0 and q=1 report the edges of the
// populated range, single observations interpolate across their bin,
// and empty gap bins never capture a quantile.
func TestHistogramQuantileBoundaries(t *testing.T) {
	for _, tc := range []struct {
		name string
		add  []float64
		q    float64
		want float64
	}{
		// 10 observations in [0,10) across 5 two-wide bins: bin 1 holds
		// ranks 1-4, bin 2 ranks 5-10.
		{"interpolates inside bin", []float64{2, 2, 3, 3, 4, 4, 4, 5, 5, 5}, 0.5,
			4 + (5.0-4.0)/6.0*2}, // rank 5 of 10 → 1/6 into bin [4,6)
		{"q0 is first populated lower edge", []float64{5, 7}, 0, 4},
		{"q1 is last populated upper edge", []float64{5, 7}, 1, 8},
		{"single obs q0 is bin lower edge", []float64{5}, 0, 4},
		{"single obs q1 is bin upper edge", []float64{5}, 1, 6},
		{"single obs q0.5 is bin midpoint", []float64{5}, 0.5, 5},
		// Mass in bins 0 and 4 only: the empty middle contributes width
		// but no rank, so q=0.5 sits exactly on the crossing between the
		// two populated bins, never inside the gap.
		{"gap bins hold no quantile", []float64{1, 9}, 0.5, 2},
		{"gap q0.25 inside first bin", []float64{1, 9}, 0.25, 1},
		{"gap q0.75 inside last bin", []float64{1, 9}, 0.75, 9},
		// Clamped outliers land in the edge bins and quantile like any
		// other observation there.
		{"clamped outlier", []float64{-50, -50, -50, -50}, 1, 2},
	} {
		h := NewHistogram(0, 10, 5)
		for _, v := range tc.add {
			h.Add(v)
		}
		if got := h.Quantile(tc.q); !almost(got, tc.want, 1e-12) {
			t.Errorf("%s: Quantile(%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
}

func TestHistogramQuantilePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty histogram": func() { NewHistogram(0, 1, 2).Quantile(0.5) },
		"q below range": func() {
			h := NewHistogram(0, 1, 2)
			h.Add(0.5)
			h.Quantile(-0.01)
		},
		"q above range": func() {
			h := NewHistogram(0, 1, 2)
			h.Add(0.5)
			h.Quantile(1.01)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

// TestHistogramQuantileTracksSliceQuantile: against a real sample, the
// binned estimate can never be further from the exact order-statistic
// quantile than one bin width.
func TestHistogramQuantileTracksSliceQuantile(t *testing.T) {
	r := rng.New(9)
	h := NewHistogram(0, 1, 20)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Float64()
		h.Add(xs[i])
	}
	binWidth := 1.0 / 20
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		exact, binned := Quantile(xs, q), h.Quantile(q)
		if diff := binned - exact; diff < -binWidth || diff > binWidth {
			t.Errorf("q=%v: binned %v vs exact %v differ by more than a bin", q, binned, exact)
		}
	}
}
