package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(1, 5, 4) // bins [1,2) [2,3) [3,4) [4,5]
	for _, v := range []float64{1, 1.5, 2, 3.9, 4, 5} {
		h.Add(v)
	}
	want := []int{2, 1, 1, 2}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("bin %d = %d, want %d (counts %v)", i, h.Counts[i], c, h.Counts)
		}
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-100)
	h.Add(+100)
	if h.Counts[0] != 1 || h.Counts[4] != 1 {
		t.Fatalf("outliers not clamped: %v", h.Counts)
	}
}

func TestHistogramTotalPreservedQuick(t *testing.T) {
	r := rng.New(9)
	f := func(n uint16) bool {
		count := int(n%500) + 1
		h := NewHistogram(0, 1, 7)
		for i := 0; i < count; i++ {
			h.Add(r.Norm(0.5, 0.6)) // deliberately spills outside [0,1]
		}
		return h.Total() == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero bins":      func() { NewHistogram(0, 1, 0) },
		"empty interval": func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHistogramBinLabels(t *testing.T) {
	h := NewHistogram(1, 5, 4)
	if got := h.BinLabel(0); got != "[1.0,2.0)" {
		t.Fatalf("label 0 = %q", got)
	}
	if got := h.BinLabel(3); got != "[4.0,5.0]" {
		t.Fatalf("last label = %q", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(1, 5, 4)
	for i := 0; i < 8; i++ {
		h.Add(4.5)
	}
	h.Add(1.5)
	out := h.Render(20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("render produced %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], strings.Repeat("#", 20)) {
		t.Fatalf("dominant bin should hit full width:\n%s", out)
	}
	// A non-empty bin must draw at least one mark even when tiny.
	if !strings.Contains(lines[0], "#") {
		t.Fatalf("small bin lost its mark:\n%s", out)
	}
	// Width <= 0 falls back to a default rather than panicking.
	if NewHistogram(0, 1, 2).Render(0) == "" {
		t.Fatal("zero-width render should still produce output")
	}
}
