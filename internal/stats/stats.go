// Package stats implements the descriptive and inferential statistics
// used by the experiment harness: sample moments, confidence intervals,
// Welch and paired t-tests, correlations and histogram binning.
//
// All functions operate on plain []float64 samples and are pure; they
// never mutate their inputs except where explicitly documented.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned by tests and estimators that need
// more observations than they were given.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance, or 0 when fewer
// than two observations are available.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Min returns the smallest element; it panics on an empty sample.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty sample")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element; it panics on an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty sample")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the sample median (average of the middle two values
// for even n), or 0 for an empty sample.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear
// interpolation between order statistics. It panics on an empty sample
// or q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of range")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary bundles the descriptive statistics reported for a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	StdErr float64
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		StdErr: StdErr(xs),
		Min:    Min(xs),
		Median: Median(xs),
		Max:    Max(xs),
	}
}

// ConfidenceInterval95 returns the half-width of a 95% confidence
// interval for the mean of xs using the t distribution.
func ConfidenceInterval95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return tCritical95(float64(n-1)) * StdErr(xs)
}

// tCritical95 approximates the two-sided 95% critical value of the t
// distribution with df degrees of freedom. The approximation is exact
// in the normal limit and accurate to ~0.005 for df >= 3, which is
// ample for reporting confidence intervals on simulation output.
func tCritical95(df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	// Small-df table, then a series expansion around the normal
	// quantile 1.959964 for larger df.
	table := map[int]float64{
		1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
		6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
	}
	if df <= 10 {
		if v, ok := table[int(df)]; ok {
			return v
		}
	}
	z := 1.959964
	return z + (z*z*z+z)/(4*df) + (5*z*z*z*z*z+16*z*z*z+3*z)/(96*df*df)
}

// TTestResult reports the outcome of a two-sample or paired t-test.
type TTestResult struct {
	T  float64 // test statistic
	DF float64 // degrees of freedom (Welch-Satterthwaite for two-sample)
	P  float64 // two-sided p-value
}

// Significant reports whether the two-sided p-value is below alpha.
func (r TTestResult) Significant(alpha float64) bool { return r.P < alpha }

// WelchTTest performs a two-sided Welch's t-test for a difference in
// means between independent samples a and b.
func WelchTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	se := math.Sqrt(va/na + vb/nb)
	if se == 0 {
		// Identical constant samples: no evidence of difference if the
		// means agree, otherwise infinitely strong evidence.
		if ma == mb {
			return TTestResult{T: 0, DF: na + nb - 2, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(ma - mb)), DF: na + nb - 2, P: 0}, nil
	}
	t := (ma - mb) / se
	num := (va/na + vb/nb) * (va/na + vb/nb)
	den := (va*va)/(na*na*(na-1)) + (vb*vb)/(nb*nb*(nb-1))
	df := num / den
	return TTestResult{T: t, DF: df, P: tTwoSidedP(t, df)}, nil
}

// PairedTTest performs a two-sided paired t-test on equal-length
// samples a and b (testing mean(a-b) == 0).
func PairedTTest(a, b []float64) (TTestResult, error) {
	if len(a) != len(b) {
		return TTestResult{}, errors.New("stats: paired samples differ in length")
	}
	if len(a) < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	d := make([]float64, len(a))
	for i := range a {
		d[i] = a[i] - b[i]
	}
	se := StdErr(d)
	df := float64(len(d) - 1)
	if se == 0 {
		if Mean(d) == 0 {
			return TTestResult{T: 0, DF: df, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(Mean(d))), DF: df, P: 0}, nil
	}
	t := Mean(d) / se
	return TTestResult{T: t, DF: df, P: tTwoSidedP(t, df)}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// tTwoSidedP returns the two-sided p-value for statistic t with df
// degrees of freedom, via the regularized incomplete beta function.
func tTwoSidedP(t, df float64) float64 {
	if math.IsInf(t, 0) {
		return 0
	}
	x := df / (df + t*t)
	return regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function
// I_x(a, b) using the continued-fraction expansion (Numerical Recipes
// style), which converges quickly for the arguments t-tests produce.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
	if x > (a+1)/(a+b+2) {
		return 1 - regIncBeta(b, a, 1-x)
	}
	// Lentz's algorithm for the continued fraction.
	const eps = 1e-12
	const tiny = 1e-300
	f, c, d := 1.0, 1.0, 0.0
	for i := 0; i <= 300; i++ {
		m := i / 2
		var numerator float64
		switch {
		case i == 0:
			numerator = 1
		case i%2 == 0:
			numerator = (float64(m) * (b - float64(m)) * x) /
				((a + 2*float64(m) - 1) * (a + 2*float64(m)))
		default:
			numerator = -((a + float64(m)) * (a + b + float64(m)) * x) /
				((a + 2*float64(m)) * (a + 2*float64(m) + 1))
		}
		d = 1 + numerator*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + numerator/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		f *= c * d
		if math.Abs(1-c*d) < eps {
			break
		}
	}
	return front * (f - 1)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// PearsonCorrelation returns the Pearson correlation coefficient of the
// paired samples, or an error for mismatched or too-short samples.
func PearsonCorrelation(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: correlation samples differ in length")
	}
	if len(a) < 2 {
		return 0, ErrInsufficientData
	}
	ma, mb := Mean(a), Mean(b)
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0, ErrInsufficientData
	}
	return sab / math.Sqrt(saa*sbb), nil
}

// SpearmanCorrelation returns the Spearman rank correlation of the
// paired samples.
func SpearmanCorrelation(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: correlation samples differ in length")
	}
	return PearsonCorrelation(Ranks(a), Ranks(b))
}

// Ranks returns the fractional ranks of xs (ties receive the average of
// the ranks they span), with ranks starting at 1.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// CohenD returns Cohen's d effect size between independent samples,
// using the pooled standard deviation.
func CohenD(a, b []float64) float64 {
	na, nb := float64(len(a)), float64(len(b))
	if na < 2 || nb < 2 {
		return 0
	}
	pooled := math.Sqrt(((na-1)*Variance(a) + (nb-1)*Variance(b)) / (na + nb - 2))
	if pooled == 0 {
		return 0
	}
	return (Mean(a) - Mean(b)) / pooled
}
