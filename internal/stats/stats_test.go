package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); !almost(v, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", v, 32.0/7.0)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdErr(nil) != 0 {
		t.Fatal("empty-sample statistics should be zero")
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("singleton variance should be zero")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median should be zero")
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated its input: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.5); got != 7 {
		t.Fatalf("singleton quantile = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestWelchTTestDetectsDifference(t *testing.T) {
	r := rng.New(1)
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = r.Norm(0, 1)
		b[i] = r.Norm(1, 1)
	}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.01) {
		t.Fatalf("failed to detect 1-sigma mean shift: %+v", res)
	}
	if res.T >= 0 {
		t.Fatalf("t should be negative for mean(a) < mean(b): %+v", res)
	}
}

func TestWelchTTestNullIsCalibrated(t *testing.T) {
	// Under the null the p-value should be roughly uniform: about 5% of
	// replications significant at alpha = 0.05.
	r := rng.New(2)
	sig := 0
	const reps = 400
	for rep := 0; rep < reps; rep++ {
		a := make([]float64, 50)
		b := make([]float64, 50)
		for i := range a {
			a[i] = r.Norm(0, 1)
			b[i] = r.Norm(0, 1)
		}
		res, err := WelchTTest(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.Significant(0.05) {
			sig++
		}
	}
	rate := float64(sig) / reps
	if rate > 0.10 {
		t.Fatalf("null rejection rate %.3f, want ~0.05", rate)
	}
}

func TestWelchTTestKnownValue(t *testing.T) {
	// Reference values computed independently (Welch formulas plus
	// numeric integration of the t density): t = -2.95132,
	// df = 27.3501, p = 0.006422.
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5, 31.2}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.T, -2.95132, 0.001) {
		t.Fatalf("t = %v, want about -2.95132", res.T)
	}
	if !almost(res.DF, 27.3501, 0.01) {
		t.Fatalf("df = %v, want about 27.3501", res.DF)
	}
	if !almost(res.P, 0.006422, 0.0005) {
		t.Fatalf("p = %v, want about 0.006422", res.P)
	}
}

func TestWelchTTestErrors(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for tiny sample")
	}
}

func TestWelchTTestConstantSamples(t *testing.T) {
	res, err := WelchTTest([]float64{5, 5, 5}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Fatalf("identical constant samples: p = %v, want 1", res.P)
	}
	res, err = WelchTTest([]float64{5, 5, 5}, []float64{6, 6, 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Fatalf("distinct constant samples: p = %v, want 0", res.P)
	}
}

func TestPairedTTest(t *testing.T) {
	a := []float64{5, 6, 7, 8, 9, 10}
	b := []float64{4, 5, 6, 7, 8, 9}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Differences are constant 1 with zero variance: infinitely strong.
	if res.P != 0 {
		t.Fatalf("constant-difference paired test: p = %v", res.P)
	}
	if _, err := PairedTTest([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestPairedTTestNoDifference(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	res, err := PairedTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Fatalf("self-paired test: p = %v, want 1", res.P)
	}
}

func TestPearsonCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	c, err := PearsonCorrelation(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(c, 1, 1e-12) {
		t.Fatalf("perfect positive correlation = %v", c)
	}
	neg := []float64{10, 8, 6, 4, 2}
	c, err = PearsonCorrelation(a, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(c, -1, 1e-12) {
		t.Fatalf("perfect negative correlation = %v", c)
	}
	if _, err := PearsonCorrelation(a, []float64{1, 1, 1, 1, 1}); err == nil {
		t.Fatal("expected error for zero-variance sample")
	}
}

func TestSpearmanHandlesMonotoneNonlinear(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{1, 8, 27, 64, 125} // monotone but nonlinear
	c, err := SpearmanCorrelation(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(c, 1, 1e-12) {
		t.Fatalf("Spearman of monotone map = %v, want 1", c)
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksAreAPermutationQuick(t *testing.T) {
	r := rng.New(3)
	f := func(n uint8) bool {
		size := int(n%20) + 2
		xs := make([]float64, size)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		ranks := Ranks(xs)
		// Sum of ranks must equal n(n+1)/2 even with ties.
		var sum float64
		for _, rk := range ranks {
			sum += rk
		}
		return almost(sum, float64(size*(size+1))/2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCohenD(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{3, 4, 5, 6, 7}
	d := CohenD(a, b)
	if !almost(d, -2/math.Sqrt(2.5), 1e-9) {
		t.Fatalf("CohenD = %v", d)
	}
	if CohenD([]float64{1}, b) != 0 {
		t.Fatal("CohenD with tiny sample should be 0")
	}
}

func TestConfidenceIntervalShrinks(t *testing.T) {
	r := rng.New(4)
	small := make([]float64, 10)
	large := make([]float64, 1000)
	for i := range small {
		small[i] = r.Norm(0, 1)
	}
	for i := range large {
		large[i] = r.Norm(0, 1)
	}
	if ConfidenceInterval95(small) <= ConfidenceInterval95(large) {
		t.Fatal("CI should shrink with sample size")
	}
	if ConfidenceInterval95([]float64{1}) != 0 {
		t.Fatal("CI of singleton should be 0")
	}
}

func TestTCriticalMonotone(t *testing.T) {
	prev := math.Inf(1)
	for _, df := range []float64{1, 2, 3, 5, 10, 30, 100, 1000} {
		v := tCritical95(df)
		if v > prev {
			t.Fatalf("tCritical95 not monotone at df=%v: %v > %v", df, v, prev)
		}
		prev = v
	}
	if !almost(tCritical95(1e6), 1.959964, 1e-3) {
		t.Fatalf("large-df critical value = %v", tCritical95(1e6))
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Fatal("incomplete beta endpoints wrong")
	}
	// I_x(1,1) = x exactly.
	for _, x := range []float64{0.1, 0.37, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); !almost(got, x, 1e-9) {
			t.Fatalf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.2, 0.5, 0.8} {
		lhs := regIncBeta(2.5, 3.5, x)
		rhs := 1 - regIncBeta(3.5, 2.5, 1-x)
		if !almost(lhs, rhs, 1e-9) {
			t.Fatalf("beta symmetry violated at x=%v: %v vs %v", x, lhs, rhs)
		}
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	for name, f := range map[string]func(){
		"Min":      func() { Min(nil) },
		"Max":      func() { Max(nil) },
		"Quantile": func() { Quantile(nil, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s(empty) should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestQuantileMatchesSortedOrder(t *testing.T) {
	r := rng.New(5)
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = r.Float64()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if got := Quantile(xs, 0); got != sorted[0] {
		t.Fatalf("q0 = %v, want %v", got, sorted[0])
	}
	if got := Quantile(xs, 1); got != sorted[100] {
		t.Fatalf("q1 = %v, want %v", got, sorted[100])
	}
	if got := Quantile(xs, 0.5); got != sorted[50] {
		t.Fatalf("q0.5 = %v, want %v", got, sorted[50])
	}
}

// TestQuantileEdgeCases pins the order-statistic interpolation at its
// boundaries: exact endpoints at q=0/q=1, interpolation exactly on and
// between order statistics, duplicate plateaus, and the singleton
// sample where every q returns the only value.
func TestQuantileEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name string
		xs   []float64
		q    float64
		want float64
	}{
		{"q0 is min, unsorted input", []float64{9, -3, 4}, 0, -3},
		{"q1 is max, unsorted input", []float64{9, -3, 4}, 1, 9},
		{"midpoint of two", []float64{10, 20}, 0.5, 15},
		{"quarter between two", []float64{10, 20}, 0.25, 12.5},
		{"exactly on an order statistic", []float64{1, 2, 3, 4}, 1.0 / 3, 2},
		{"between order statistics", []float64{0, 10, 20, 30}, 0.5, 15},
		{"duplicate plateau", []float64{1, 5, 5, 5, 9}, 0.5, 5},
		{"duplicate plateau edge", []float64{1, 5, 5, 5, 9}, 0.75, 5},
		{"singleton any q", []float64{7}, 0, 7},
		{"singleton q1", []float64{7}, 1, 7},
		{"singleton mid", []float64{7}, 0.37, 7},
		{"negative values", []float64{-5, -1}, 0.5, -3},
	} {
		if got := Quantile(tc.xs, tc.q); !almost(got, tc.want, 1e-12) {
			t.Errorf("%s: Quantile(%v, %v) = %v, want %v", tc.name, tc.xs, tc.q, got, tc.want)
		}
	}
	// Interpolation must not mutate the caller's sample.
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated its input: %v", xs)
	}
}
