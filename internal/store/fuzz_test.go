package store

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// Fuzzing the decoders: arbitrary bytes must produce an error or a
// valid object — never a panic, never an off-scale rating.

func FuzzLoadMatrix(f *testing.F) {
	c := dataset.Movies(dataset.Config{Seed: 1, Users: 5, Items: 8, RatingsPerUser: 3})
	var buf bytes.Buffer
	if err := SaveMatrix(&buf, c.Ratings); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"ratings":[]}`)
	f.Add(`{"version":1,"ratings":[{"user":1,"item":2,"value":3.5}]}`)
	f.Add(`{nope`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, data string) {
		m, err := LoadMatrix(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, u := range m.Users() {
			for _, v := range m.UserRatings(u) {
				if v < 1 || v > 5 {
					t.Fatalf("decoder admitted off-scale rating %v", v)
				}
			}
		}
	})
}

func FuzzLoadCatalog(f *testing.F) {
	c := dataset.Cameras(dataset.Config{Seed: 1, Users: 3, Items: 5, RatingsPerUser: 2})
	var buf bytes.Buffer
	if err := SaveCatalog(&buf, c.Catalog); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"domain":"x","items":[{"id":1,"title":"a"}]}`)
	f.Add(`{"version":1,"domain":"x","items":[{"id":1},{"id":1}]}`)
	f.Add(`[1,2,3]`)
	f.Fuzz(func(t *testing.T, data string) {
		cat, err := LoadCatalog(strings.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded catalogue must have unique IDs.
		seen := map[int64]bool{}
		for _, it := range cat.Items() {
			if seen[int64(it.ID)] {
				t.Fatal("duplicate item id survived decoding")
			}
			seen[int64(it.ID)] = true
		}
	})
}

func FuzzLoadProfile(f *testing.F) {
	f.Add(`{"version":1,"entries":[{"key":"a","value":"b","source":"inferred"}]}`)
	f.Add(`{"version":1,"entries":[{"key":"a","value":"b","source":"volunteered","evidence":"x"}]}`)
	f.Add(`{"version":1,"entries":null}`)
	f.Add(`x`)
	f.Fuzz(func(t *testing.T, data string) {
		p, err := LoadProfile(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, e := range p.Entries() {
			if e.Source.String() != "inferred" && e.Source.String() != "volunteered" {
				t.Fatalf("invalid provenance survived decoding: %v", e.Source)
			}
		}
	})
}
