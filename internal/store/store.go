// Package store persists the library's state as versioned JSON:
// catalogues, rating matrices and scrutable profiles. Output is
// deterministic (sorted keys and rows) so saved files diff cleanly and
// fixtures can be committed.
//
// The scrutable profile's serialisation is part of the paper's
// scrutability story: a profile a user can inspect and correct should
// also be a profile they can export and carry — every entry round-
// trips with its provenance and evidence.
package store

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/interact"
	"repro/internal/model"
)

// Version is the current on-disk format version.
const Version = 1

// ErrVersion is wrapped into errors for files written by an
// incompatible format version.
var errVersion = fmt.Errorf("store: unsupported format version (want %d)", Version)

type attrJSON struct {
	Name         string `json:"name"`
	Kind         string `json:"kind"`
	LessIsBetter bool   `json:"lessIsBetter,omitempty"`
	Unit         string `json:"unit,omitempty"`
}

type itemJSON struct {
	ID          model.ItemID       `json:"id"`
	Title       string             `json:"title"`
	Creator     string             `json:"creator,omitempty"`
	Keywords    []string           `json:"keywords,omitempty"`
	Numeric     map[string]float64 `json:"numeric,omitempty"`
	Categorical map[string]string  `json:"categorical,omitempty"`
	Popularity  float64            `json:"popularity"`
	Recency     float64            `json:"recency"`
}

type catalogJSON struct {
	Version int        `json:"version"`
	Domain  string     `json:"domain"`
	Attrs   []attrJSON `json:"attrs,omitempty"`
	Items   []itemJSON `json:"items"`
}

// SaveCatalog writes cat as JSON.
func SaveCatalog(w io.Writer, cat *model.Catalog) error {
	doc := catalogJSON{Version: Version, Domain: cat.Domain}
	for _, a := range cat.Attrs {
		doc.Attrs = append(doc.Attrs, attrJSON{
			Name: a.Name, Kind: a.Kind.String(), LessIsBetter: a.LessIsBetter, Unit: a.Unit,
		})
	}
	for _, it := range cat.Items() {
		doc.Items = append(doc.Items, itemJSON{
			ID: it.ID, Title: it.Title, Creator: it.Creator,
			Keywords: it.Keywords, Numeric: it.Numeric, Categorical: it.Categorical,
			Popularity: it.Popularity, Recency: it.Recency,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("store: encoding catalogue: %w", err)
	}
	return nil
}

// LoadCatalog reads a catalogue written by SaveCatalog.
func LoadCatalog(r io.Reader) (*model.Catalog, error) {
	var doc catalogJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("store: decoding catalogue: %w", err)
	}
	if doc.Version != Version {
		return nil, fmt.Errorf("%w: got %d", errVersion, doc.Version)
	}
	attrs := make([]model.AttrDef, 0, len(doc.Attrs))
	for _, a := range doc.Attrs {
		kind := model.Numeric
		switch a.Kind {
		case model.Numeric.String():
			kind = model.Numeric
		case model.Categorical.String():
			kind = model.Categorical
		default:
			return nil, fmt.Errorf("store: unknown attribute kind %q", a.Kind)
		}
		attrs = append(attrs, model.AttrDef{
			Name: a.Name, Kind: kind, LessIsBetter: a.LessIsBetter, Unit: a.Unit,
		})
	}
	cat := model.NewCatalog(doc.Domain, attrs...)
	for _, it := range doc.Items {
		if err := cat.Add(&model.Item{
			ID: it.ID, Title: it.Title, Creator: it.Creator,
			Keywords: it.Keywords, Numeric: it.Numeric, Categorical: it.Categorical,
			Popularity: it.Popularity, Recency: it.Recency,
		}); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return cat, nil
}

type ratingJSON struct {
	User  model.UserID `json:"user"`
	Item  model.ItemID `json:"item"`
	Value float64      `json:"value"`
}

type matrixJSON struct {
	Version int          `json:"version"`
	Ratings []ratingJSON `json:"ratings"`
}

// SaveMatrix writes the rating matrix with rows sorted by (user, item).
func SaveMatrix(w io.Writer, m *model.Matrix) error {
	doc := matrixJSON{Version: Version}
	for _, u := range m.Users() {
		ratings := m.UserRatings(u)
		ids := make([]model.ItemID, 0, len(ratings))
		for i := range ratings {
			ids = append(ids, i)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, i := range ids {
			doc.Ratings = append(doc.Ratings, ratingJSON{User: u, Item: i, Value: ratings[i]})
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("store: encoding matrix: %w", err)
	}
	return nil
}

// LoadMatrix reads a matrix written by SaveMatrix. Ratings are
// replayed in file order, which SaveMatrix guarantees is sorted, so
// reloaded matrices are bit-identical to their source.
func LoadMatrix(r io.Reader) (*model.Matrix, error) {
	var doc matrixJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("store: decoding matrix: %w", err)
	}
	if doc.Version != Version {
		return nil, fmt.Errorf("%w: got %d", errVersion, doc.Version)
	}
	m := model.NewMatrix()
	for _, rt := range doc.Ratings {
		if rt.Value < model.MinRating || rt.Value > model.MaxRating {
			return nil, fmt.Errorf("store: rating %v for (%d,%d) off scale", rt.Value, rt.User, rt.Item)
		}
		m.Set(rt.User, rt.Item, rt.Value)
	}
	return m, nil
}

type profileEntryJSON struct {
	Key      string `json:"key"`
	Value    string `json:"value"`
	Source   string `json:"source"`
	Evidence string `json:"evidence,omitempty"`
}

type profileJSON struct {
	Version int                `json:"version"`
	Entries []profileEntryJSON `json:"entries"`
}

// SaveProfile writes a scrutable profile. The audit log is session
// state and intentionally not persisted; entries carry their
// provenance, which is what the next session needs.
func SaveProfile(w io.Writer, p *interact.ScrutableProfile) error {
	doc := profileJSON{Version: Version}
	for _, e := range p.Entries() {
		doc.Entries = append(doc.Entries, profileEntryJSON{
			Key: e.Key, Value: e.Value, Source: e.Source.String(), Evidence: e.Evidence,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("store: encoding profile: %w", err)
	}
	return nil
}

// LoadProfile reads a profile written by SaveProfile.
func LoadProfile(r io.Reader) (*interact.ScrutableProfile, error) {
	var doc profileJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("store: decoding profile: %w", err)
	}
	if doc.Version != Version {
		return nil, fmt.Errorf("%w: got %d", errVersion, doc.Version)
	}
	p := interact.NewScrutableProfile()
	for _, e := range doc.Entries {
		var source interact.Provenance
		switch e.Source {
		case interact.Volunteered.String():
			source = interact.Volunteered
		case interact.Inferred.String():
			source = interact.Inferred
		default:
			return nil, fmt.Errorf("store: unknown provenance %q", e.Source)
		}
		p.Set(interact.ProfileEntry{Key: e.Key, Value: e.Value, Source: source, Evidence: e.Evidence})
	}
	return p, nil
}

// LoadDir reads a community saved as catalog.json and ratings.json in
// dir (the layout cmd/datasetgen writes).
func LoadDir(dir string) (*model.Catalog, *model.Matrix, error) {
	cf, err := os.Open(filepath.Join(dir, "catalog.json"))
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	defer cf.Close()
	catalog, err := LoadCatalog(cf)
	if err != nil {
		return nil, nil, err
	}
	rf, err := os.Open(filepath.Join(dir, "ratings.json"))
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	defer rf.Close()
	ratings, err := LoadMatrix(rf)
	if err != nil {
		return nil, nil, err
	}
	return catalog, ratings, nil
}

// SaveDir writes a community as catalog.json and ratings.json in dir,
// creating it if needed.
func SaveDir(dir string, catalog *model.Catalog, ratings *model.Matrix) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	cf, err := os.Create(filepath.Join(dir, "catalog.json"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer cf.Close()
	if err := SaveCatalog(cf, catalog); err != nil {
		return err
	}
	rf, err := os.Create(filepath.Join(dir, "ratings.json"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer rf.Close()
	return SaveMatrix(rf, ratings)
}
