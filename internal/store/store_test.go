package store

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/interact"
	"repro/internal/model"
)

func TestCatalogRoundTrip(t *testing.T) {
	c := dataset.Cameras(dataset.Config{Seed: 3, Users: 3, Items: 25, RatingsPerUser: 2})
	var buf bytes.Buffer
	if err := SaveCatalog(&buf, c.Catalog); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCatalog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Domain != c.Catalog.Domain || got.Len() != c.Catalog.Len() {
		t.Fatalf("domain/len mismatch: %s %d", got.Domain, got.Len())
	}
	if len(got.Attrs) != len(c.Catalog.Attrs) {
		t.Fatalf("attrs = %d, want %d", len(got.Attrs), len(c.Catalog.Attrs))
	}
	def, ok := got.AttrDef(dataset.CamPrice)
	if !ok || !def.LessIsBetter || def.Unit != "$" || def.Kind != model.Numeric {
		t.Fatalf("price attr = %+v", def)
	}
	for _, orig := range c.Catalog.Items() {
		it, err := got.Item(orig.ID)
		if err != nil {
			t.Fatal(err)
		}
		if it.Title != orig.Title || it.Creator != orig.Creator ||
			it.Popularity != orig.Popularity || it.Recency != orig.Recency {
			t.Fatalf("item %d fields differ", orig.ID)
		}
		if len(it.Numeric) != len(orig.Numeric) || it.Numeric[dataset.CamPrice] != orig.Numeric[dataset.CamPrice] {
			t.Fatalf("item %d numeric differ", orig.ID)
		}
		if it.Categorical[dataset.CamBrand] != orig.Categorical[dataset.CamBrand] {
			t.Fatalf("item %d categorical differ", orig.ID)
		}
	}
}

func TestCatalogSaveDeterministic(t *testing.T) {
	c := dataset.Books(dataset.Config{Seed: 5, Users: 3, Items: 15, RatingsPerUser: 2})
	var a, b bytes.Buffer
	if err := SaveCatalog(&a, c.Catalog); err != nil {
		t.Fatal(err)
	}
	if err := SaveCatalog(&b, c.Catalog); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("catalogue serialisation not deterministic")
	}
}

func TestMatrixRoundTripBitIdentical(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 7, Users: 20, Items: 30, RatingsPerUser: 10})
	var buf bytes.Buffer
	if err := SaveMatrix(&buf, c.Ratings); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != c.Ratings.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), c.Ratings.Len())
	}
	for _, u := range c.Ratings.Users() {
		for i, v := range c.Ratings.UserRatings(u) {
			if w, ok := got.Get(u, i); !ok || w != v {
				t.Fatalf("rating (%d,%d) = %v,%v", u, i, w, ok)
			}
		}
		// Incremental sums replay in sorted order, so means are
		// bit-identical too.
		a, _ := c.Ratings.UserMean(u)
		b, _ := got.UserMean(u)
		if a != b {
			t.Fatalf("user %d mean differs after reload: %v vs %v", u, a, b)
		}
	}
	if got.GlobalMean() != c.Ratings.GlobalMean() {
		t.Fatal("global mean differs after reload")
	}
}

func TestMatrixRejectsOffScale(t *testing.T) {
	if _, err := LoadMatrix(strings.NewReader(
		`{"version":1,"ratings":[{"user":1,"item":1,"value":9}]}`)); err == nil {
		t.Fatal("off-scale rating accepted")
	}
}

func TestProfileRoundTrip(t *testing.T) {
	p := interact.NewScrutableProfile()
	p.Set(interact.ProfileEntry{Key: "climate", Value: "tropical", Source: interact.Volunteered})
	p.Set(interact.ProfileEntry{Key: "kidfriendly", Value: "yes", Source: interact.Inferred, Evidence: "searched family rooms"})
	var buf bytes.Buffer
	if err := SaveProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := got.Get("kidfriendly")
	if !ok || e.Source != interact.Inferred || e.Evidence != "searched family rooms" {
		t.Fatalf("entry = %+v, %v", e, ok)
	}
	e2, _ := got.Get("climate")
	if e2.Source != interact.Volunteered {
		t.Fatalf("provenance lost: %+v", e2)
	}
	// Reloaded profiles keep the scrutability guarantee: inferred
	// values still cannot overwrite the reloaded volunteered ones.
	got.Set(interact.ProfileEntry{Key: "climate", Value: "cold", Source: interact.Inferred})
	e3, _ := got.Get("climate")
	if e3.Value != "tropical" {
		t.Fatal("volunteered protection lost after reload")
	}
}

func TestVersionChecks(t *testing.T) {
	if _, err := LoadCatalog(strings.NewReader(`{"version":99,"domain":"x","items":[]}`)); err == nil {
		t.Fatal("future catalogue version accepted")
	}
	if _, err := LoadMatrix(strings.NewReader(`{"version":0,"ratings":[]}`)); err == nil {
		t.Fatal("zero matrix version accepted")
	}
	if _, err := LoadProfile(strings.NewReader(`{"version":2,"entries":[]}`)); err == nil {
		t.Fatal("future profile version accepted")
	}
}

func TestCorruptInput(t *testing.T) {
	for name, f := range map[string]func() error{
		"catalog": func() error { _, err := LoadCatalog(strings.NewReader("{nope")); return err },
		"matrix":  func() error { _, err := LoadMatrix(strings.NewReader("[]")); return err },
		"profile": func() error { _, err := LoadProfile(strings.NewReader("")); return err },
	} {
		if err := f(); err == nil {
			t.Fatalf("%s: corrupt input accepted", name)
		}
	}
}

func TestUnknownEnumValues(t *testing.T) {
	if _, err := LoadCatalog(strings.NewReader(
		`{"version":1,"domain":"x","attrs":[{"name":"a","kind":"weird"}],"items":[]}`)); err == nil {
		t.Fatal("unknown attr kind accepted")
	}
	if _, err := LoadProfile(strings.NewReader(
		`{"version":1,"entries":[{"key":"a","value":"b","source":"psychic"}]}`)); err == nil {
		t.Fatal("unknown provenance accepted")
	}
}

func TestDuplicateItemRejected(t *testing.T) {
	if _, err := LoadCatalog(strings.NewReader(
		`{"version":1,"domain":"x","items":[{"id":1,"title":"a"},{"id":1,"title":"b"}]}`)); err == nil {
		t.Fatal("duplicate item id accepted")
	}
}

func TestSaveLoadDir(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 31, Users: 10, Items: 15, RatingsPerUser: 5})
	dir := t.TempDir()
	if err := SaveDir(dir, c.Catalog, c.Ratings); err != nil {
		t.Fatal(err)
	}
	catalog, ratings, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if catalog.Len() != c.Catalog.Len() || ratings.Len() != c.Ratings.Len() {
		t.Fatalf("round trip lost data: %d items, %d ratings", catalog.Len(), ratings.Len())
	}
	if _, _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("empty directory accepted")
	}
}
