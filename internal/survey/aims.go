// Package survey encodes the paper itself as data: the seven
// explanation aims of Table 1, and the catalogue of commercial and
// academic recommender systems with explanation facilities that
// Tables 2, 3 and 4 classify. Renderers regenerate the paper's tables;
// a query API lets experiments and documentation slice the catalogue;
// and every facility class named in the tables carries a pointer to
// the package in this repository that implements a working instance
// of it.
package survey

import "fmt"

// Aim is one of the seven goals an explanation facility can pursue
// (Table 1).
type Aim int

// The seven aims, in the paper's order.
const (
	Transparency Aim = iota
	Scrutability
	Trust
	Effectiveness
	Persuasiveness
	Efficiency
	Satisfaction
)

// AllAims lists the aims in Table 1 order.
var AllAims = []Aim{
	Transparency, Scrutability, Trust, Effectiveness,
	Persuasiveness, Efficiency, Satisfaction,
}

func (a Aim) String() string {
	switch a {
	case Transparency:
		return "Transparency"
	case Scrutability:
		return "Scrutability"
	case Trust:
		return "Trust"
	case Effectiveness:
		return "Effectiveness"
	case Persuasiveness:
		return "Persuasiveness"
	case Efficiency:
		return "Efficiency"
	case Satisfaction:
		return "Satisfaction"
	default:
		return fmt.Sprintf("Aim(%d)", int(a))
	}
}

// Abbrev returns the column abbreviation used in Tables 1 and 2.
func (a Aim) Abbrev() string {
	switch a {
	case Transparency:
		return "Tra."
	case Scrutability:
		return "Scr."
	case Trust:
		return "Trust"
	case Effectiveness:
		return "Efk."
	case Persuasiveness:
		return "Pers."
	case Efficiency:
		return "Efc."
	case Satisfaction:
		return "Sat."
	default:
		return "?"
	}
}

// Definition returns the Table 1 definition.
func (a Aim) Definition() string {
	switch a {
	case Transparency:
		return "Explain how the system works"
	case Scrutability:
		return "Allow users to tell the system it is wrong"
	case Trust:
		return "Increase users' confidence in the system"
	case Effectiveness:
		return "Help users make good decisions"
	case Persuasiveness:
		return "Convince users to try or buy"
	case Efficiency:
		return "Help users make decisions faster"
	case Satisfaction:
		return "Increase the ease of usability or enjoyment"
	default:
		return ""
	}
}
