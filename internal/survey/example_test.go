package survey_test

import (
	"fmt"

	"repro/internal/survey"
)

// The aims taxonomy is data: iterate it, query it, render it.
func ExampleAllAims() {
	for _, a := range survey.AllAims[:3] {
		fmt.Printf("%s (%s): %s\n", a, a.Abbrev(), a.Definition())
	}
	// Output:
	// Transparency (Tra.): Explain how the system works
	// Scrutability (Scr.): Allow users to tell the system it is wrong
	// Trust (Trust): Increase users' confidence in the system
}

// Query the system catalogue for everything stating an aim.
func ExampleWithAim() {
	for _, s := range survey.WithAim(survey.Scrutability) {
		fmt.Println(s.Name)
	}
	// Output:
	// SASY
	// Dynamic critiquing
}

// The three explanation styles carry their canonical phrases.
func ExampleExplanationStyle_CanonicalPhrase() {
	fmt.Println(survey.StyleCollaborative.CanonicalPhrase())
	fmt.Println(survey.StyleContent.CanonicalPhrase())
	// Output:
	// People who liked X also liked Y
	// We have recommended X because you liked Y
}
