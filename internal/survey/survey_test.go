package survey

import (
	"strings"
	"testing"
)

func TestAimTaxonomyComplete(t *testing.T) {
	if len(AllAims) != 7 {
		t.Fatalf("paper defines seven aims, got %d", len(AllAims))
	}
	seenAbbrev := map[string]bool{}
	for _, a := range AllAims {
		if a.String() == "" || a.Definition() == "" || a.Abbrev() == "?" {
			t.Fatalf("aim %d incompletely defined", a)
		}
		if seenAbbrev[a.Abbrev()] {
			t.Fatalf("duplicate abbreviation %q", a.Abbrev())
		}
		seenAbbrev[a.Abbrev()] = true
	}
	// Spot-check against the paper's Table 1.
	if Effectiveness.Definition() != "Help users make good decisions" {
		t.Fatalf("effectiveness definition = %q", Effectiveness.Definition())
	}
	if Persuasiveness.Abbrev() != "Pers." {
		t.Fatalf("abbrev = %q", Persuasiveness.Abbrev())
	}
}

func TestCatalogueCounts(t *testing.T) {
	if got := len(ByKind(Commercial)); got != 8 {
		t.Fatalf("Table 3 has 8 commercial systems, catalogue has %d", got)
	}
	if got := len(Table2Systems()); got != 14 {
		t.Fatalf("Table 2 has 14 academic rows, catalogue has %d", got)
	}
	// The paper's Table 2 layout carries exactly 25 aim marks.
	var marks int
	for _, s := range Table2Systems() {
		marks += len(s.Aims)
	}
	if marks != 25 {
		t.Fatalf("Table 2 mark count = %d, want 25", marks)
	}
}

func TestTable4RowsPresent(t *testing.T) {
	tbl := Table4()
	out := tbl.String()
	for _, name := range table4Rows {
		if !strings.Contains(out, name) {
			t.Fatalf("Table 4 missing %q:\n%s", name, out)
		}
	}
	if tbl.NumRows() != 10 {
		t.Fatalf("Table 4 rows = %d, want 10", tbl.NumRows())
	}
}

func TestTable3MatchesPaperRows(t *testing.T) {
	out := Table3().String()
	checks := []string{
		"Amazon", "Findory", "LibraryThing", "LoveFilm",
		"OkCupid", "Pandora", "StumbleUpon", "Qwikshop",
		// Spot-check cells transcribed from the paper.
		"People to date", "Digital cameras", "Alteration", "(Implicit) rating",
	}
	for _, c := range checks {
		if !strings.Contains(out, c) {
			t.Fatalf("Table 3 missing %q:\n%s", c, out)
		}
	}
}

func TestTable2Render(t *testing.T) {
	out := Table2().String()
	for _, abbrev := range []string{"Tra.", "Scr.", "Trust", "Efk.", "Pers.", "Efc.", "Sat."} {
		if !strings.Contains(out, abbrev) {
			t.Fatalf("Table 2 missing column %q:\n%s", abbrev, out)
		}
	}
	if strings.Count(out, "X") != 25 {
		t.Fatalf("Table 2 renders %d marks, want 25:\n%s", strings.Count(out, "X"), out)
	}
	// SASY's row must mark scrutability.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "SASY") && !strings.Contains(line, "X") {
			t.Fatalf("SASY row has no marks: %q", line)
		}
	}
}

func TestTable1Render(t *testing.T) {
	out := Table1().String()
	if !strings.Contains(out, "Table 1.") {
		t.Fatalf("title missing:\n%s", out)
	}
	for _, a := range AllAims {
		if !strings.Contains(out, a.Definition()) {
			t.Fatalf("Table 1 missing %q", a.Definition())
		}
	}
}

func TestWithAim(t *testing.T) {
	scrutable := WithAim(Scrutability)
	foundSASY := false
	for _, s := range scrutable {
		if s.Name == "SASY" {
			foundSASY = true
		}
	}
	if !foundSASY {
		t.Fatal("SASY should state scrutability")
	}
	// Every aim is stated by at least one system (the paper discusses
	// examples for all seven).
	for _, a := range AllAims {
		if len(WithAim(a)) == 0 {
			t.Fatalf("no system states %v", a)
		}
	}
}

func TestCanonicalPhrases(t *testing.T) {
	if StyleCollaborative.CanonicalPhrase() != "People who liked X also liked Y" {
		t.Fatalf("collaborative phrase = %q", StyleCollaborative.CanonicalPhrase())
	}
	if StyleContent.CanonicalPhrase() == "" || StylePreference.CanonicalPhrase() == "" {
		t.Fatal("canonical phrases incomplete")
	}
}

func TestImplementationIndexComplete(t *testing.T) {
	out := ImplementationIndex().String()
	for _, want := range []string{
		"internal/present.TopItem", "internal/present.BuildOverview",
		"internal/explain.{HistogramExplainer", "internal/interact.CritiqueSession",
		"internal/interact.Dialog", "internal/interact.FeedbackModel",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("implementation index missing %q:\n%s", want, out)
		}
	}
}

func TestEveryTableFacilityIsImplemented(t *testing.T) {
	// The guarantee behind Tables 3-4: every presentation, explanation
	// and interaction class used by any catalogued system maps to a
	// real package in this repository.
	for _, s := range Systems() {
		for _, p := range s.Presentations {
			if p.ImplementedBy() == "" {
				t.Fatalf("%s: presentation %v unimplemented", s.Name, p)
			}
		}
		for _, e := range s.Explanations {
			if e.ImplementedBy() == "" {
				t.Fatalf("%s: explanation %v unimplemented", s.Name, e)
			}
		}
		for _, m := range s.Interactions {
			switch m {
			case InteractVaried, InteractNone:
				continue // not a concrete facility
			}
			if m.ImplementedBy() == "" {
				t.Fatalf("%s: interaction %v unimplemented", s.Name, m)
			}
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if Commercial.String() != "commercial" || Academic.String() != "academic" {
		t.Fatal("kind strings")
	}
	if PresTopItem.String() != "Top item" || PresStructuredOverview.String() != "Structured overview" {
		t.Fatal("presentation strings")
	}
	if InteractSpecifyReqs.String() != "Specify reqs." {
		t.Fatal("interaction strings")
	}
}
