package survey

import "fmt"

// SystemKind separates the commercial catalogue (Table 3) from the
// academic one (Tables 2 and 4).
type SystemKind int

// System kinds.
const (
	Commercial SystemKind = iota
	Academic
)

func (k SystemKind) String() string {
	switch k {
	case Commercial:
		return "commercial"
	case Academic:
		return "academic"
	default:
		return fmt.Sprintf("SystemKind(%d)", int(k))
	}
}

// PresentationMode enumerates the Section 4 presentation styles as
// they appear in the tables' "Presentation" column.
type PresentationMode int

// Presentation modes.
const (
	PresTopItem PresentationMode = iota
	PresTopN
	PresSimilarToTop
	PresPredictedRatings
	PresStructuredOverview
)

func (p PresentationMode) String() string {
	switch p {
	case PresTopItem:
		return "Top item"
	case PresTopN:
		return "Top-N"
	case PresSimilarToTop:
		return "Similar to top item(s)"
	case PresPredictedRatings:
		return "Predicted ratings"
	case PresStructuredOverview:
		return "Structured overview"
	default:
		return fmt.Sprintf("PresentationMode(%d)", int(p))
	}
}

// ImplementedBy names the package in this repository providing a
// working instance of the presentation mode.
func (p PresentationMode) ImplementedBy() string {
	switch p {
	case PresTopItem:
		return "internal/present.TopItem"
	case PresTopN:
		return "internal/present.TopN"
	case PresSimilarToTop:
		return "internal/present.SimilarToTop"
	case PresPredictedRatings:
		return "internal/present.PredictedRatings"
	case PresStructuredOverview:
		return "internal/present.BuildOverview"
	default:
		return ""
	}
}

// ExplanationStyle mirrors the tables' "Explanation" column: the
// content of the explanation regardless of the underlying algorithm.
type ExplanationStyle int

// Explanation styles.
const (
	StyleContent ExplanationStyle = iota
	StyleCollaborative
	StylePreference
)

func (s ExplanationStyle) String() string {
	switch s {
	case StyleContent:
		return "Content-based"
	case StyleCollaborative:
		return "Collaborative-based"
	case StylePreference:
		return "Preference-based"
	default:
		return fmt.Sprintf("ExplanationStyle(%d)", int(s))
	}
}

// CanonicalPhrase returns the conclusion section's canonical example
// of each style.
func (s ExplanationStyle) CanonicalPhrase() string {
	switch s {
	case StyleContent:
		return "We have recommended X because you liked Y"
	case StyleCollaborative:
		return "People who liked X also liked Y"
	case StylePreference:
		return "Your interests suggest that you would like X"
	default:
		return ""
	}
}

// ImplementedBy names the explain-package generators for the style.
func (s ExplanationStyle) ImplementedBy() string {
	switch s {
	case StyleContent:
		return "internal/explain.{ItemSimilarityExplainer,InfluenceExplainer,KeywordExplainer}"
	case StyleCollaborative:
		return "internal/explain.{HistogramExplainer,NeighborCountExplainer}"
	case StylePreference:
		return "internal/explain.{ProfileExplainer,UtilityExplainer}"
	default:
		return ""
	}
}

// InteractionMode mirrors the tables' "Interaction" column (Section 5).
type InteractionMode int

// Interaction modes.
const (
	InteractRating InteractionMode = iota
	InteractImplicitRating
	InteractOpinion
	InteractSpecifyReqs
	InteractAlteration
	InteractVaried
	InteractNone
)

func (m InteractionMode) String() string {
	switch m {
	case InteractRating:
		return "Rating"
	case InteractImplicitRating:
		return "(Implicit) rating"
	case InteractOpinion:
		return "Opinion"
	case InteractSpecifyReqs:
		return "Specify reqs."
	case InteractAlteration:
		return "Alteration"
	case InteractVaried:
		return "(varied)"
	case InteractNone:
		return "(None)"
	default:
		return fmt.Sprintf("InteractionMode(%d)", int(m))
	}
}

// ImplementedBy names the interact-package component for the mode.
func (m InteractionMode) ImplementedBy() string {
	switch m {
	case InteractRating, InteractImplicitRating:
		return "internal/interact.RatingEditor"
	case InteractOpinion:
		return "internal/interact.FeedbackModel"
	case InteractSpecifyReqs:
		return "internal/interact.Dialog"
	case InteractAlteration:
		return "internal/interact.CritiqueSession"
	default:
		return ""
	}
}

// System is one catalogue row.
type System struct {
	Name string
	// Ref is the paper's citation key, e.g. "[5]"; empty for
	// commercial systems.
	Ref           string
	Kind          SystemKind
	ItemType      string
	Presentations []PresentationMode
	Explanations  []ExplanationStyle
	// ExplanationNote annotates the Explanation column, e.g.
	// "(Implicit)" distinctions are carried in Interactions instead;
	// this is for free-text qualifiers.
	ExplanationNote string
	Interactions    []InteractionMode
	// Aims are the stated aims for Table 2 (academic systems only;
	// systems without clearly stated aims have none, matching the
	// paper's "systems for which no clear aims are stated are
	// omitted").
	Aims []Aim
}

// HasAim reports whether the system states the aim.
func (s System) HasAim(a Aim) bool {
	for _, x := range s.Aims {
		if x == a {
			return true
		}
	}
	return false
}

// Systems returns the full catalogue: the eight commercial systems of
// Table 3 followed by the ten academic systems of Table 4. Rows are
// transcribed from the paper; the Table 2 aim assignments are a
// documented reconstruction (see EXPERIMENTS.md) — the paper's layout
// fixes how many aims each system states (25 marks across 14 rows)
// but not, unambiguously, which columns they fall in.
func Systems() []System {
	return []System{
		// ---- Table 3: commercial ----
		{
			Name: "Amazon", Kind: Commercial, ItemType: "e.g. Books, Movies",
			Presentations: []PresentationMode{PresSimilarToTop},
			Explanations:  []ExplanationStyle{StyleContent},
			Interactions:  []InteractionMode{InteractRating, InteractOpinion},
		},
		{
			Name: "Findory", Kind: Commercial, ItemType: "News",
			Presentations: []PresentationMode{PresSimilarToTop},
			Explanations:  []ExplanationStyle{StylePreference},
			Interactions:  []InteractionMode{InteractImplicitRating},
		},
		{
			Name: "LibraryThing", Kind: Commercial, ItemType: "Books",
			Presentations: []PresentationMode{PresSimilarToTop},
			Explanations:  []ExplanationStyle{StyleCollaborative},
			Interactions:  []InteractionMode{InteractRating},
		},
		{
			Name: "LoveFilm", Kind: Commercial, ItemType: "Movies",
			Presentations: []PresentationMode{PresTopN, PresPredictedRatings},
			Explanations:  []ExplanationStyle{StyleContent},
			Interactions:  []InteractionMode{InteractRating},
		},
		{
			Name: "OkCupid", Kind: Commercial, ItemType: "People to date",
			Presentations: []PresentationMode{PresTopN, PresPredictedRatings},
			Explanations:  []ExplanationStyle{StylePreference},
			Interactions:  []InteractionMode{InteractSpecifyReqs},
		},
		{
			Name: "Pandora", Kind: Commercial, ItemType: "Music",
			Presentations: []PresentationMode{PresTopItem},
			Explanations:  []ExplanationStyle{StylePreference},
			Interactions:  []InteractionMode{InteractOpinion},
		},
		{
			Name: "StumbleUpon", Kind: Commercial, ItemType: "Web pages",
			Presentations: []PresentationMode{PresTopItem},
			Explanations:  []ExplanationStyle{StylePreference},
			Interactions:  []InteractionMode{InteractOpinion},
		},
		{
			Name: "Qwikshop", Ref: "[20]", Kind: Commercial, ItemType: "Digital cameras",
			Presentations: []PresentationMode{PresTopItem, PresSimilarToTop},
			Explanations:  []ExplanationStyle{StylePreference},
			Interactions:  []InteractionMode{InteractAlteration},
		},

		// ---- Table 4: academic (aims reconstruct Table 2) ----
		{
			Name: "INTRIGUE", Ref: "[2]", Kind: Academic, ItemType: "Tourist attractions",
			Presentations: []PresentationMode{PresTopN},
			Explanations:  []ExplanationStyle{StylePreference},
			Interactions:  []InteractionMode{InteractNone},
			Aims:          []Aim{Transparency, Satisfaction},
		},
		{
			Name: "LIBRA", Ref: "[5]", Kind: Academic, ItemType: "Books",
			Presentations: []PresentationMode{PresTopN, PresPredictedRatings},
			Explanations:  []ExplanationStyle{StyleContent, StyleCollaborative},
			Interactions:  []InteractionMode{InteractRating},
			Aims:          []Aim{Effectiveness},
		},
		{
			Name: "News Dude", Ref: "[6]", Kind: Academic, ItemType: "News",
			Presentations: []PresentationMode{PresTopN},
			Explanations:  []ExplanationStyle{StylePreference},
			Interactions:  []InteractionMode{InteractOpinion},
			Aims:          []Aim{Transparency, Trust},
		},
		{
			Name: "MYCIN", Ref: "[7]", Kind: Academic, ItemType: "Prescriptions",
			Presentations: []PresentationMode{PresTopItem},
			Explanations:  []ExplanationStyle{StylePreference},
			Interactions:  []InteractionMode{InteractSpecifyReqs},
			Aims:          []Aim{Transparency, Trust},
		},
		{
			Name: "MovieLens", Ref: "[10, 18]", Kind: Academic, ItemType: "Movies",
			Presentations: []PresentationMode{PresTopN, PresPredictedRatings},
			Explanations:  []ExplanationStyle{StyleCollaborative},
			Interactions:  []InteractionMode{InteractRating},
			Aims:          []Aim{Effectiveness, Persuasiveness},
		},
		{
			Name: "Herlocker interfaces", Ref: "[18]", Kind: Academic, ItemType: "Movies",
			Presentations: []PresentationMode{PresTopN, PresPredictedRatings},
			Explanations:  []ExplanationStyle{StyleCollaborative},
			Interactions:  []InteractionMode{InteractRating},
			Aims:          []Aim{Transparency, Persuasiveness, Satisfaction},
		},
		{
			Name: "SASY", Ref: "[11]", Kind: Academic, ItemType: "E.g. holiday",
			Presentations: []PresentationMode{PresTopItem},
			Explanations:  []ExplanationStyle{StylePreference},
			Interactions:  []InteractionMode{InteractAlteration},
			Aims:          []Aim{Transparency, Scrutability},
		},
		{
			Name: "Sim", Ref: "[21]", Kind: Academic, ItemType: "PCs",
			Presentations: []PresentationMode{PresTopN},
			Explanations:  []ExplanationStyle{StylePreference},
			Interactions:  []InteractionMode{InteractVaried},
			Aims:          []Aim{Efficiency},
		},
		{
			Name: "Top Case", Ref: "[24]", Kind: Academic, ItemType: "Holiday",
			Presentations: []PresentationMode{PresTopItem, PresSimilarToTop},
			Explanations:  []ExplanationStyle{StylePreference},
			Interactions:  []InteractionMode{InteractSpecifyReqs},
			Aims:          []Aim{Transparency, Trust},
		},
		{
			Name: "Organizational Structure", Ref: "[28]", Kind: Academic,
			ItemType:      "Digital camera, notebook computer",
			Presentations: []PresentationMode{PresStructuredOverview},
			Explanations:  []ExplanationStyle{StylePreference},
			Interactions:  []InteractionMode{InteractNone},
			Aims:          []Aim{Trust},
		},
		{
			Name: "Dynamic critiquing", Ref: "[20]", Kind: Academic, ItemType: "Digital cameras",
			Presentations: []PresentationMode{PresTopItem, PresSimilarToTop},
			Explanations:  []ExplanationStyle{StylePreference},
			Interactions:  []InteractionMode{InteractAlteration},
			Aims:          []Aim{Scrutability, Efficiency},
		},
		{
			Name: "ADAPTIVE PLACE ADVISOR", Ref: "[35]", Kind: Academic, ItemType: "Restaurants",
			Presentations: []PresentationMode{PresTopItem},
			Explanations:  []ExplanationStyle{StylePreference},
			Interactions:  []InteractionMode{InteractSpecifyReqs},
			Aims:          []Aim{Efficiency, Satisfaction},
		},
		{
			Name: "ACORN", Ref: "[37]", Kind: Academic, ItemType: "Movies",
			Presentations: []PresentationMode{PresStructuredOverview, PresTopN},
			Explanations:  []ExplanationStyle{StylePreference},
			Interactions:  []InteractionMode{InteractSpecifyReqs},
			Aims:          []Aim{Transparency, Satisfaction},
		},
		{
			Name: "Sinha & Swearingen study", Ref: "[31]", Kind: Academic, ItemType: "Movies, books",
			Presentations: []PresentationMode{PresTopN},
			Explanations:  []ExplanationStyle{StyleCollaborative},
			Interactions:  []InteractionMode{InteractRating},
			Aims:          []Aim{Transparency},
		},
	}
}

// ByKind filters the catalogue.
func ByKind(kind SystemKind) []System {
	var out []System
	for _, s := range Systems() {
		if s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

// WithAim returns the academic systems stating the aim.
func WithAim(a Aim) []System {
	var out []System
	for _, s := range Systems() {
		if s.HasAim(a) {
			out = append(out, s)
		}
	}
	return out
}

// Table2Systems returns the academic systems that state at least one
// aim, in citation order — the rows of Table 2.
func Table2Systems() []System {
	var out []System
	for _, s := range ByKind(Academic) {
		if len(s.Aims) > 0 {
			out = append(out, s)
		}
	}
	return out
}
