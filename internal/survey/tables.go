package survey

import (
	"strings"

	"repro/internal/tablewriter"
)

// Table1 regenerates "Table 1. Aims": abbreviation, name, definition.
func Table1() *tablewriter.Table {
	t := tablewriter.New("Aim", "Definition").
		SetTitle("Table 1. Aims of explanation facilities")
	for _, a := range AllAims {
		t.AddRow(a.String()+" ("+a.Abbrev()+")", a.Definition())
	}
	return t
}

// Table2 regenerates "Table 2. Aims of academic systems": one row per
// academic system with stated aims, an X under each stated aim.
func Table2() *tablewriter.Table {
	header := []string{"System"}
	for _, a := range AllAims {
		header = append(header, a.Abbrev())
	}
	t := tablewriter.New(header...).
		SetTitle("Table 2. Aims of academic systems")
	aligns := []tablewriter.Align{tablewriter.AlignLeft}
	for range AllAims {
		aligns = append(aligns, tablewriter.AlignCenter)
	}
	t.SetAligns(aligns...)
	for _, s := range Table2Systems() {
		row := []any{s.Ref + " " + s.Name}
		for _, a := range AllAims {
			if s.HasAim(a) {
				row = append(row, "X")
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// facilityRow renders one system's presentation/explanation/interaction
// columns.
func facilityRow(t *tablewriter.Table, s System) {
	var pres, expl, inter []string
	for _, p := range s.Presentations {
		pres = append(pres, p.String())
	}
	for _, e := range s.Explanations {
		expl = append(expl, e.String())
	}
	for _, i := range s.Interactions {
		inter = append(inter, i.String())
	}
	name := s.Name
	if s.Ref != "" && s.Kind == Academic {
		name += " " + s.Ref
	}
	t.AddRow(name, s.ItemType,
		strings.Join(pres, ", "),
		strings.Join(expl, ", "),
		strings.Join(inter, ", "))
}

// Table3 regenerates "Table 3. A selection of commercial recommender
// systems with explanation facilities."
func Table3() *tablewriter.Table {
	t := tablewriter.New("System", "Item type", "Presentation", "Explanation", "Interaction").
		SetTitle("Table 3. Commercial recommender systems with explanation facilities")
	for _, s := range ByKind(Commercial) {
		facilityRow(t, s)
	}
	return t
}

// table4Rows names the ten systems of Table 4 in the paper's order.
var table4Rows = []string{
	"LIBRA", "News Dude", "MYCIN", "MovieLens", "SASY", "Sim",
	"Top Case", "Organizational Structure", "ADAPTIVE PLACE ADVISOR", "ACORN",
}

// Table4 regenerates "Table 4. A selection of academic recommender
// systems with explanation facilities."
func Table4() *tablewriter.Table {
	t := tablewriter.New("System", "Item type", "Presentation", "Explanation", "Interaction").
		SetTitle("Table 4. Academic recommender systems with explanation facilities")
	byName := map[string]System{}
	for _, s := range ByKind(Academic) {
		byName[s.Name] = s
	}
	for _, name := range table4Rows {
		if s, ok := byName[name]; ok {
			facilityRow(t, s)
		}
	}
	return t
}

// ImplementationIndex renders the mapping from every facility class
// named in the tables to the package in this repository implementing
// it — the "catalogue rows are backed by runnable code" guarantee.
func ImplementationIndex() *tablewriter.Table {
	t := tablewriter.New("Facility", "Class", "Implemented by").
		SetTitle("Facility classes and their implementations in this repository")
	for _, p := range []PresentationMode{
		PresTopItem, PresTopN, PresSimilarToTop, PresPredictedRatings, PresStructuredOverview,
	} {
		t.AddRow(p.String(), "presentation", p.ImplementedBy())
	}
	for _, e := range []ExplanationStyle{StyleContent, StyleCollaborative, StylePreference} {
		t.AddRow(e.String(), "explanation", e.ImplementedBy())
	}
	for _, m := range []InteractionMode{
		InteractRating, InteractOpinion, InteractSpecifyReqs, InteractAlteration,
	} {
		t.AddRow(m.String(), "interaction", m.ImplementedBy())
	}
	return t
}
