// Package tablewriter renders aligned plain-text tables. Every table
// and figure reproduced from the paper is ultimately printed through
// this package, so the experiment binaries and benchmarks share one
// consistent look.
package tablewriter

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Align controls horizontal alignment of a column.
type Align int

// Column alignments.
const (
	AlignLeft Align = iota
	AlignRight
	AlignCenter
)

// Table accumulates rows and renders them with aligned columns.
// The zero value is ready to use.
type Table struct {
	title  string
	header []string
	rows   [][]string
	aligns []Align
}

// New returns a table with the given column headers.
func New(header ...string) *Table {
	return &Table{header: header}
}

// SetTitle sets a caption rendered above the table.
func (t *Table) SetTitle(title string) *Table {
	t.title = title
	return t
}

// SetAligns sets per-column alignment. Columns without an entry default
// to left alignment.
func (t *Table) SetAligns(aligns ...Align) *Table {
	t.aligns = aligns
	return t
}

// AddRow appends a row. Cells are formatted with fmt.Sprint, except
// float64 values which are rendered with 3 decimal places for stable,
// readable experiment output.
func (t *Table) AddRow(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

func (t *Table) columnCount() int {
	n := len(t.header)
	for _, r := range t.rows {
		if len(r) > n {
			n = len(r)
		}
	}
	return n
}

// cellWidth measures a cell in runes, not bytes, so multi-byte
// characters (em-dashes, accented names, CJK titles) do not inflate
// their column. Double-width terminal rendering of CJK glyphs is out
// of scope — that needs Unicode width tables the stdlib doesn't ship.
func cellWidth(s string) int { return utf8.RuneCountInString(s) }

func (t *Table) widths() []int {
	n := t.columnCount()
	w := make([]int, n)
	for i, h := range t.header {
		if cellWidth(h) > w[i] {
			w[i] = cellWidth(h)
		}
	}
	for _, r := range t.rows {
		for i, c := range r {
			if cellWidth(c) > w[i] {
				w[i] = cellWidth(c)
			}
		}
	}
	return w
}

func (t *Table) alignOf(i int) Align {
	if i < len(t.aligns) {
		return t.aligns[i]
	}
	return AlignLeft
}

func pad(s string, width int, a Align) string {
	gap := width - cellWidth(s)
	if gap <= 0 {
		return s
	}
	switch a {
	case AlignRight:
		return strings.Repeat(" ", gap) + s
	case AlignCenter:
		left := gap / 2
		return strings.Repeat(" ", left) + s + strings.Repeat(" ", gap-left)
	default:
		return s + strings.Repeat(" ", gap)
	}
}

// String renders the table as plain text with a rule under the header.
func (t *Table) String() string {
	w := t.widths()
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < len(w); i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, w[i], t.alignOf(i)))
		}
		// Trim trailing padding so output diffs cleanly.
		s := b.String()
		trimmed := strings.TrimRight(s, " ")
		b.Reset()
		b.WriteString(trimmed)
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		rule := make([]string, len(w))
		for i := range rule {
			rule[i] = strings.Repeat("-", w[i])
		}
		writeRow(rule)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.title)
	}
	cols := t.columnCount()
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			b.WriteString(" " + cell + " |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	rule := make([]string, cols)
	for i := range rule {
		switch t.alignOf(i) {
		case AlignRight:
			rule[i] = "---:"
		case AlignCenter:
			rule[i] = ":---:"
		default:
			rule[i] = "---"
		}
	}
	writeRow(rule)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
