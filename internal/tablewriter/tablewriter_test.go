package tablewriter

import (
	"strings"
	"testing"
)

func TestBasicRendering(t *testing.T) {
	tb := New("System", "Aim").
		AddRow("LIBRA", "Effectiveness").
		AddRow("MYCIN", "Transparency")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected header+rule+2 rows, got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "System") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("rule missing: %q", lines[1])
	}
	// Columns align: "Aim" starts at the same offset in every row.
	off := strings.Index(lines[0], "Aim")
	if !strings.HasPrefix(lines[2][off:], "Effectiveness") {
		t.Fatalf("column misaligned:\n%s", out)
	}
}

func TestTitle(t *testing.T) {
	out := New("A").SetTitle("Table 1. Aims").AddRow("x").String()
	if !strings.HasPrefix(out, "Table 1. Aims\n") {
		t.Fatalf("title missing:\n%s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	out := New("v").AddRow(3.14159).String()
	if !strings.Contains(out, "3.142") {
		t.Fatalf("float not formatted to 3 decimals:\n%s", out)
	}
}

func TestAlignment(t *testing.T) {
	tb := New("num", "name").SetAligns(AlignRight, AlignLeft)
	tb.AddRow(5, "a").AddRow(1234, "b")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.HasPrefix(lines[2], "   5") {
		t.Fatalf("right alignment failed: %q", lines[2])
	}
}

func TestCenterAlignment(t *testing.T) {
	out := New("wide-header").SetAligns(AlignCenter).AddRow("x").String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	row := lines[2]
	if !strings.Contains(row, "  x") {
		t.Fatalf("center alignment failed: %q", row)
	}
}

func TestRaggedRows(t *testing.T) {
	tb := New("a", "b", "c").AddRow("only-one")
	out := tb.String()
	if !strings.Contains(out, "only-one") {
		t.Fatalf("ragged row dropped:\n%s", out)
	}
}

func TestRowWiderThanHeader(t *testing.T) {
	tb := New("a").AddRow("x", "extra-col")
	out := tb.String()
	if !strings.Contains(out, "extra-col") {
		t.Fatalf("extra column dropped:\n%s", out)
	}
}

func TestNoTrailingSpaces(t *testing.T) {
	out := New("col", "x").AddRow("a", "b").AddRow("longer-cell", "c").String()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasSuffix(line, " ") {
			t.Fatalf("trailing whitespace in %q", line)
		}
	}
}

func TestMarkdown(t *testing.T) {
	md := New("Sys", "N").SetAligns(AlignLeft, AlignRight).
		SetTitle("T").AddRow("LIBRA", 3).Markdown()
	if !strings.Contains(md, "| Sys | N |") {
		t.Fatalf("markdown header wrong:\n%s", md)
	}
	if !strings.Contains(md, "| --- | ---: |") {
		t.Fatalf("markdown rule wrong:\n%s", md)
	}
	if !strings.Contains(md, "| LIBRA | 3 |") {
		t.Fatalf("markdown row wrong:\n%s", md)
	}
	if !strings.HasPrefix(md, "**T**") {
		t.Fatalf("markdown title wrong:\n%s", md)
	}
}

func TestEmptyTable(t *testing.T) {
	if got := (&Table{}).String(); got != "" {
		t.Errorf("zero-value table renders %q, want empty", got)
	}
	if got := (&Table{}).Markdown(); got != "|\n|\n" {
		// No headers, no rows: a degenerate two-line markdown skeleton.
		t.Errorf("zero-value markdown renders %q", got)
	}
	// Header but no rows: header and rule, nothing else.
	got := New("a", "bb").String()
	want := "a  bb\n-  --\n"
	if got != want {
		t.Errorf("header-only table:\n%q\nwant\n%q", got, want)
	}
}

func TestSingleColumn(t *testing.T) {
	got := New("name").AddRow("x").AddRow("longer").String()
	// The widest cell ("longer", 6 runes) sets the column width, so the
	// header rule is 6 dashes.
	want := "name\n------\nx\nlonger\n"
	if got != want {
		t.Errorf("single column:\n%q\nwant\n%q", got, want)
	}
}

// TestUnicodeCellWidths pins the rune-based width contract: multi-byte
// cells (accented words, em-dashes, CJK titles) must not inflate their
// column, so the next column starts at the same rune offset on every
// row. Double-width glyph rendering is explicitly out of scope.
func TestUnicodeCellWidths(t *testing.T) {
	tb := New("title", "n").
		AddRow("plain", 1).
		AddRow("réalisé", 2). // 7 runes, 9 bytes
		AddRow("推荐系统", 3)     // 4 runes, 12 bytes
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), tb.String())
	}
	// The widest first column is "réalisé" (7 runes), so every row's
	// single-rune second cell sits at rune offset 7+2.
	const wantOffset = 9
	for _, line := range lines[2:] {
		runes := []rune(line)
		if off := len(runes) - 1; off != wantOffset {
			t.Errorf("row %q: last cell at rune offset %d, want %d", line, off, wantOffset)
		}
	}
}

func TestMarkdownUnicode(t *testing.T) {
	md := New("title", "n").AddRow("推荐", 1).Markdown()
	want := "| title | n |\n| --- | --- |\n| 推荐 | 1 |\n"
	if md != want {
		t.Errorf("markdown:\n%q\nwant\n%q", md, want)
	}
}

func TestNumRows(t *testing.T) {
	tb := New("a")
	if tb.NumRows() != 0 {
		t.Fatal("fresh table should have zero rows")
	}
	tb.AddRow(1).AddRow(2)
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}
