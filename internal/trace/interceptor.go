// The pipeline bridge: a trace.Interceptor records one stage-kind span
// per pipeline stage execution. The engine composes it directly inside
// Metrics and outside the resilience chain —
//
//	Metrics ⟶ Trace ⟶ Shed ⟶ Fallback ⟶ Breaker ⟶ Retry ⟶ ...
//
// — so a stage span covers shed queueing, every retry attempt and the
// degraded fallback, and the resilience events recorded inside become
// the stage span's children.

package trace

import (
	"context"
	"strconv"

	"repro/internal/pipeline"
)

// ErrorClassifier maps a stage error to a short class label recorded
// on the span ("breaker_open", "cold_start", ...). Nil classifies
// every error as "error".
type ErrorClassifier func(error) string

// Interceptor wraps every stage with span recording. Requests whose
// context carries no active trace (tracing disabled, or the frontend
// chose not to trace) pass through with a single context lookup.
func Interceptor(t *Tracer, classify ErrorClassifier) pipeline.Interceptor {
	return func(info pipeline.StageInfo, next pipeline.Handler) pipeline.Handler {
		name := info.Pipeline + "/" + info.Stage
		return func(ctx context.Context, req *pipeline.Request) (*pipeline.Response, error) {
			sctx, sp := StartSpan(ctx, name, KindStage)
			if sp == nil {
				return next(ctx, req)
			}
			sp.SetAttr("stage", info.Stage)
			sp.SetAttr("user", strconv.FormatInt(int64(req.User), 10))
			if req.Item != 0 {
				sp.SetAttr("item", strconv.FormatInt(int64(req.Item), 10))
			}
			if req.N != 0 {
				sp.SetAttr("n", strconv.Itoa(req.N))
			}
			resp, err := next(sctx, req)
			if req.Degraded {
				sp.SetAttr("degraded", "true")
				SetDegraded(sctx)
			}
			if err != nil {
				class := "error"
				if classify != nil {
					class = classify(err)
				}
				sp.SetAttr("error_class", class)
			}
			sp.End(err)
			return resp, err
		}
	}
}
