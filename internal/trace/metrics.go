// Per-operation tracing metrics: started/retained counters, a fixed
// latency histogram, and one exemplar per histogram bucket linking the
// bucket to a retained trace ID — the /metrics bridge from "p99 looks
// bad" to "here is a whole slow request to read".

package trace

import (
	"sync/atomic"
	"time"
)

// DurationBuckets are the upper bounds of the trace-duration histogram
// (an implicit +Inf bucket follows the last entry). An array, not a
// slice, so opStats can size its atomics from it at compile time.
var DurationBuckets = [...]time.Duration{
	time.Millisecond,
	5 * time.Millisecond,
	25 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	time.Second,
	5 * time.Second,
}

// Exemplar links one histogram bucket to a retained trace.
type Exemplar struct {
	TraceID  TraceID
	Duration time.Duration
	Reason   string
}

// opStats is the atomic backing store of one operation's metrics.
type opStats struct {
	started  atomic.Int64
	retained atomic.Int64
	reasons  [4]atomic.Int64                        // indexed by reasonIndex
	buckets  [len(DurationBuckets) + 1]atomic.Int64 // +Inf last
	// exemplars holds the most recent retained trace per bucket.
	exemplars [len(DurationBuckets) + 1]atomic.Pointer[Exemplar]
}

func newOpStats() *opStats { return &opStats{} }

func reasonIndex(reason string) int {
	switch reason {
	case ReasonSlow:
		return 0
	case ReasonError:
		return 1
	case ReasonDegraded:
		return 2
	default: // ReasonSampled
		return 3
	}
}

// reasonNames mirrors reasonIndex for snapshot rendering.
var reasonNames = [4]string{ReasonSlow, ReasonError, ReasonDegraded, ReasonSampled}

func bucketIndex(d time.Duration) int {
	for i, ub := range DurationBuckets {
		if d <= ub {
			return i
		}
	}
	return len(DurationBuckets)
}

// observe records one finished trace's duration (retained or not).
func (s *opStats) observe(d time.Duration) {
	s.buckets[bucketIndex(d)].Add(1)
}

// retain records a retention and refreshes the bucket's exemplar.
func (s *opStats) retain(reason string, d *Data) {
	s.retained.Add(1)
	s.reasons[reasonIndex(reason)].Add(1)
	s.exemplars[bucketIndex(d.Duration)].Store(&Exemplar{
		TraceID:  d.ID,
		Duration: d.Duration,
		Reason:   reason,
	})
}

// OpMetrics is the exported snapshot of one operation's tracing
// counters.
type OpMetrics struct {
	Started   int64
	Retained  int64
	ByReason  map[string]int64            // retention reason → count
	Buckets   []int64                     // per-DurationBuckets counts, +Inf last
	Exemplars map[time.Duration]*Exemplar // bucket upper bound → exemplar (0 key = +Inf)
}

// Metrics snapshots per-operation tracing counters, keyed by op name.
func (t *Tracer) Metrics() map[string]OpMetrics {
	if t == nil {
		return nil
	}
	out := make(map[string]OpMetrics)
	t.ops.Range(func(k, v any) bool {
		s := v.(*opStats)
		m := OpMetrics{
			Started:   s.started.Load(),
			Retained:  s.retained.Load(),
			ByReason:  make(map[string]int64),
			Buckets:   make([]int64, len(s.buckets)),
			Exemplars: make(map[time.Duration]*Exemplar),
		}
		for i := range s.reasons {
			if n := s.reasons[i].Load(); n > 0 {
				m.ByReason[reasonNames[i]] = n
			}
		}
		for i := range s.buckets {
			m.Buckets[i] = s.buckets[i].Load()
			if ex := s.exemplars[i].Load(); ex != nil {
				ub := time.Duration(0) // 0 marks the +Inf bucket
				if i < len(DurationBuckets) {
					ub = DurationBuckets[i]
				}
				m.Exemplars[ub] = ex
			}
		}
		out[k.(string)] = m
		return true
	})
	return out
}
