// W3C Trace Context propagation (https://www.w3.org/TR/trace-context/):
// trace and span identifiers plus the traceparent header codec. The
// server honours an incoming traceparent — the trace adopts the remote
// trace ID and a set sampled flag forces retention — and every
// response carries X-Trace-ID so a client can fetch its own trace from
// /debug/traces/{id}.

package trace

import (
	"encoding/hex"
	"fmt"
	"strings"
)

// TraceID is the 16-byte W3C trace identifier.
type TraceID [16]byte

// SpanID is the 8-byte W3C parent/span identifier.
type SpanID [8]byte

// IsZero reports whether the ID is all zeroes (invalid per the spec).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the ID is all zeroes (invalid per the spec).
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// MarshalText implements encoding.TextMarshaler for JSON output.
func (id TraceID) MarshalText() ([]byte, error) { return []byte(id.String()), nil }

// MarshalText implements encoding.TextMarshaler for JSON output.
func (id SpanID) MarshalText() ([]byte, error) { return []byte(id.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler so clients (and
// tests) can decode /debug/traces JSON back into typed IDs. Unlike
// ParseTraceID it accepts the all-zero ID, which legitimately appears
// as the root span's parent.
func (id *TraceID) UnmarshalText(b []byte) error {
	if len(b) != 32 {
		return fmt.Errorf("trace: trace id %q: want 32 hex digits", b)
	}
	raw, err := hex.DecodeString(strings.ToLower(string(b)))
	if err != nil {
		return fmt.Errorf("trace: trace id %q: %w", b, err)
	}
	copy(id[:], raw)
	return nil
}

// UnmarshalText implements encoding.TextUnmarshaler; see
// TraceID.UnmarshalText.
func (id *SpanID) UnmarshalText(b []byte) error {
	if len(b) != 16 {
		return fmt.Errorf("trace: span id %q: want 16 hex digits", b)
	}
	raw, err := hex.DecodeString(strings.ToLower(string(b)))
	if err != nil {
		return fmt.Errorf("trace: span id %q: %w", b, err)
	}
	copy(id[:], raw)
	return nil
}

// ParseTraceID parses 32 hex digits into a TraceID.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, fmt.Errorf("trace: trace id %q: want 32 hex digits", s)
	}
	b, err := hex.DecodeString(strings.ToLower(s))
	if err != nil {
		return id, fmt.Errorf("trace: trace id %q: %w", s, err)
	}
	copy(id[:], b)
	if id.IsZero() {
		return id, fmt.Errorf("trace: trace id %q is all zeroes", s)
	}
	return id, nil
}

// newTraceID derives a trace ID from the seeded counter stream.
func newTraceID(seed, seq uint64) TraceID {
	var id TraceID
	a := splitmix64(seed + seq*0x9e3779b97f4a7c15)
	b := splitmix64(a ^ seq)
	for i := 0; i < 8; i++ {
		id[i] = byte(a >> (8 * i))
		id[8+i] = byte(b >> (8 * i))
	}
	if id.IsZero() {
		id[0] = 1 // an all-zero ID is invalid; astronomically unlikely, still handled
	}
	return id
}

// newSpanID derives span ordinal seq's ID within trace id.
func newSpanID(id TraceID, seq uint64) SpanID {
	var a uint64
	for i := 0; i < 8; i++ {
		a |= uint64(id[i]) << (8 * i)
	}
	v := splitmix64(a + seq*0xbf58476d1ce4e5b9)
	var sid SpanID
	for i := 0; i < 8; i++ {
		sid[i] = byte(v >> (8 * i))
	}
	if sid.IsZero() {
		sid[0] = 1
	}
	return sid
}

// Traceparent renders a version-00 traceparent header value.
func Traceparent(id TraceID, span SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + id.String() + "-" + span.String() + "-" + flags
}

// ParseTraceparent decodes a traceparent header value. It accepts any
// version (per spec, future versions must stay prefix-compatible) and
// reports the remote trace ID, parent span ID and sampled flag. ok is
// false for malformed or all-zero identifiers — the caller should then
// start a fresh root trace.
func ParseTraceparent(h string) (id TraceID, parent SpanID, sampled, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 || len(parts[0]) != 2 || parts[0] == "ff" {
		return id, parent, false, false
	}
	tid, err := ParseTraceID(parts[1])
	if err != nil {
		return id, parent, false, false
	}
	if len(parts[2]) != 16 {
		return id, parent, false, false
	}
	sb, err := hex.DecodeString(strings.ToLower(parts[2]))
	if err != nil {
		return id, parent, false, false
	}
	copy(parent[:], sb)
	if parent.IsZero() {
		return id, parent, false, false
	}
	if len(parts[3]) != 2 {
		return id, parent, false, false
	}
	fb, err := hex.DecodeString(strings.ToLower(parts[3]))
	if err != nil {
		return id, parent, false, false
	}
	return tid, parent, fb[0]&0x01 != 0, true
}
