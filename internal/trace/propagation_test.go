// Tests for the W3C traceparent codec and the seeded ID streams.

package trace

import (
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	id := newTraceID(1, 42)
	sp := newSpanID(id, 3)
	for _, sampled := range []bool{true, false} {
		h := Traceparent(id, sp, sampled)
		if !strings.HasPrefix(h, "00-") || len(h) != 55 {
			t.Fatalf("traceparent %q malformed", h)
		}
		gid, gparent, gsampled, ok := ParseTraceparent(h)
		if !ok || gid != id || gparent != sp || gsampled != sampled {
			t.Fatalf("round trip of %q → (%v %v %v %v)", h, gid, gparent, gsampled, ok)
		}
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// Future versions must parse by prefix compatibility — including
	// trailing fields this version does not understand.
	id := newTraceID(1, 7)
	sp := newSpanID(id, 1)
	h := "42-" + id.String() + "-" + sp.String() + "-01-extrafield"
	gid, gparent, sampled, ok := ParseTraceparent(h)
	if !ok || gid != id || gparent != sp || !sampled {
		t.Fatalf("future-version traceparent rejected: %q", h)
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	valid := newTraceID(1, 9)
	validSpan := newSpanID(valid, 1)
	for _, tc := range []struct {
		name, header string
	}{
		{"empty", ""},
		{"too few fields", "00-" + valid.String()},
		{"bad version length", "0-" + valid.String() + "-" + validSpan.String() + "-01"},
		{"version ff forbidden", "ff-" + valid.String() + "-" + validSpan.String() + "-01"},
		{"short trace id", "00-abcd-" + validSpan.String() + "-01"},
		{"non-hex trace id", "00-" + strings.Repeat("zz", 16) + "-" + validSpan.String() + "-01"},
		{"zero trace id", "00-" + strings.Repeat("0", 32) + "-" + validSpan.String() + "-01"},
		{"short span id", "00-" + valid.String() + "-abcd-01"},
		{"zero span id", "00-" + valid.String() + "-" + strings.Repeat("0", 16) + "-01"},
		{"bad flags length", "00-" + valid.String() + "-" + validSpan.String() + "-1"},
		{"non-hex flags", "00-" + valid.String() + "-" + validSpan.String() + "-zz"},
	} {
		if _, _, _, ok := ParseTraceparent(tc.header); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted", tc.name, tc.header)
		}
	}
}

func TestParseTraceID(t *testing.T) {
	id := newTraceID(5, 5)
	got, err := ParseTraceID(id.String())
	if err != nil || got != id {
		t.Fatalf("ParseTraceID round trip failed: %v %v", got, err)
	}
	// Uppercase hex is tolerated (callers paste IDs from logs).
	if got, err = ParseTraceID(strings.ToUpper(id.String())); err != nil || got != id {
		t.Fatalf("uppercase trace id rejected: %v", err)
	}
	for _, bad := range []string{"", "abcd", strings.Repeat("g", 32), strings.Repeat("0", 32)} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestIDStreamsDistinctAndNonZero(t *testing.T) {
	seen := map[TraceID]bool{}
	for seq := uint64(1); seq <= 1000; seq++ {
		id := newTraceID(1, seq)
		if id.IsZero() {
			t.Fatalf("zero trace id at seq %d", seq)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id at seq %d", seq)
		}
		seen[id] = true
	}
	base := newTraceID(1, 1)
	spans := map[SpanID]bool{}
	for seq := uint64(1); seq <= 1000; seq++ {
		sp := newSpanID(base, seq)
		if sp.IsZero() || spans[sp] {
			t.Fatalf("bad span id at seq %d", seq)
		}
		spans[sp] = true
	}
	// Different seeds diverge immediately.
	if newTraceID(1, 1) == newTraceID(2, 1) {
		t.Fatal("trace ids identical across seeds")
	}
}
