// The retained-trace ring buffer: bounded, lock-free, newest-wins.
// Writers claim a monotonically increasing sequence number and store
// into slot seq % size with an atomic pointer; readers snapshot by
// walking backwards from the current sequence. A reader racing a
// writer can observe a slot's previous or next occupant — either is a
// genuine retained trace, so the snapshot is always well-formed even
// when it straddles a wrap.

package trace

import "sync/atomic"

type ring struct {
	slots []atomic.Pointer[Data]
	seq   atomic.Uint64
}

func newRing(size int) *ring {
	return &ring{slots: make([]atomic.Pointer[Data], size)}
}

// put publishes d, overwriting the oldest entry once the ring is full.
func (r *ring) put(d *Data) {
	i := r.seq.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(d)
}

// snapshot returns the current occupants, newest first.
func (r *ring) snapshot() []*Data {
	n := r.seq.Load()
	size := uint64(len(r.slots))
	if n > size {
		n = size
	}
	out := make([]*Data, 0, n)
	head := r.seq.Load()
	for k := uint64(1); k <= n; k++ {
		if d := r.slots[(head-k)%size].Load(); d != nil {
			out = append(out, d)
		}
	}
	return out
}
