// Spans: the recorded unit of a trace, the in-flight ActiveSpan
// handle, and the context plumbing that parents child spans. Spans
// flow exclusively through context.Context — a stage or event recorder
// never holds a span across requests — which is what lets recsyslint's
// ctx-propagation rule police the subsystem.

package trace

import (
	"context"
	"sync/atomic"
	"time"
)

// Span kinds, reported in debug output so a reader can tell pipeline
// work from point events.
const (
	KindRequest  = "request"  // root span of a trace
	KindStage    = "stage"    // one pipeline stage execution
	KindSnapshot = "snapshot" // engine snapshot acquisition
	KindEvent    = "event"    // zero-duration point event (resilience)
	KindShard    = "shard"    // one shard call of a routed/scatter-gather op
)

// Attr is one structured span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one completed, immutable span of a retained trace.
type Span struct {
	ID       SpanID        `json:"id"`
	Parent   SpanID        `json:"parent,omitempty"`
	Name     string        `json:"name"`
	Kind     string        `json:"kind"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Err      string        `json:"err,omitempty"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// activeTrace is a trace being recorded. Span slots are claimed with
// an atomic counter and published with atomic pointer stores, so span
// recording never takes a lock and a reader (collect, after the root
// span ends) only observes fully written spans.
type activeTrace struct {
	tracer      *Tracer
	id          TraceID
	op          string
	start       time.Time
	headSampled bool

	slots    []atomic.Pointer[Span]
	next     atomic.Int64 // claimed slot count (may exceed len(slots))
	spanSeq  atomic.Uint64
	errored  atomic.Bool
	degraded atomic.Bool
	finished atomic.Bool
}

// newSpan claims a span identity on the trace and returns the live
// handle. The span is invisible until End commits it.
func (at *activeTrace) newSpan(parent SpanID, name, kind string) *ActiveSpan {
	return &ActiveSpan{
		trace:  at,
		id:     newSpanID(at.id, at.spanSeq.Add(1)),
		parent: parent,
		name:   name,
		kind:   kind,
		start:  at.tracer.now(),
	}
}

// commit publishes a completed span into the next free slot; spans
// beyond MaxSpans are counted as dropped.
func (at *activeTrace) commit(sp *Span) {
	if at.finished.Load() {
		return // late event after the root span ended; drop
	}
	i := at.next.Add(1) - 1
	if i >= int64(len(at.slots)) {
		return // over MaxSpans; collect reports the drop count
	}
	at.slots[i].Store(sp)
}

// collect freezes the trace into immutable Data. Called once, by
// Tracer.finish, after the root span ended.
func (at *activeTrace) collect(dur time.Duration, reason string) *Data {
	at.finished.Store(true)
	claimed := at.next.Load()
	dropped := 0
	if claimed > int64(len(at.slots)) {
		dropped = int(claimed) - len(at.slots)
		claimed = int64(len(at.slots))
	}
	spans := make([]Span, 0, claimed)
	for i := int64(0); i < claimed; i++ {
		if sp := at.slots[i].Load(); sp != nil {
			spans = append(spans, *sp)
		}
	}
	status := "ok"
	if at.errored.Load() {
		status = "error"
	}
	return &Data{
		ID:       at.id,
		Op:       at.op,
		Start:    at.start,
		Duration: dur,
		Status:   status,
		Degraded: at.degraded.Load(),
		Reason:   reason,
		Dropped:  dropped,
		Spans:    spans,
	}
}

// Data is one retained trace: the immutable product of the tail-based
// sampling decision, served by /debug/traces.
type Data struct {
	ID       TraceID       `json:"id"`
	Op       string        `json:"op"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Status   string        `json:"status"`             // "ok" or "error"
	Degraded bool          `json:"degraded,omitempty"` // a fallback route served it
	Reason   string        `json:"reason"`             // retention reason (Reason*)
	Dropped  int           `json:"dropped,omitempty"`  // spans over MaxSpans
	Spans    []Span        `json:"spans"`
}

// ActiveSpan is a live span handle. It is owned by the goroutine that
// started it: SetAttr and End must not race. All methods are safe on a
// nil receiver, so untraced paths pay a nil check and nothing else.
type ActiveSpan struct {
	trace  *activeTrace
	id     SpanID
	parent SpanID
	name   string
	kind   string
	start  time.Time
	attrs  []Attr
	ended  bool
}

// SetAttr attaches a structured attribute (user/item IDs, stage name,
// degraded flag, error class, ...).
func (s *ActiveSpan) SetAttr(key, value string) {
	if s == nil || s.ended {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End completes the span; a non-nil err marks both the span and the
// whole trace errored (errored traces are always retained). Ending the
// root span finishes the trace. End is idempotent.
func (s *ActiveSpan) End(err error) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	at := s.trace
	end := at.tracer.now()
	sp := &Span{
		ID:       s.id,
		Parent:   s.parent,
		Name:     s.name,
		Kind:     s.kind,
		Start:    s.start,
		Duration: end.Sub(s.start),
		Attrs:    s.attrs,
	}
	if err != nil {
		sp.Err = err.Error()
		at.errored.Store(true)
	}
	root := s.kind == KindRequest
	if root {
		// The root commits before finish so collect sees it.
		at.commit(sp)
		at.tracer.finish(at, end)
		return
	}
	at.commit(sp)
}

// Fail marks the trace errored without attaching the error to this
// span — the frontend uses it when the HTTP status reports a failure
// the span graph did not already capture.
func (s *ActiveSpan) Fail() {
	if s == nil {
		return
	}
	s.trace.errored.Store(true)
}

// TraceID reports the owning trace's ID (zero on a nil span).
func (s *ActiveSpan) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace.id
}

// SpanID reports the span's own ID, for traceparent propagation.
func (s *ActiveSpan) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// ---- context plumbing ----

// spanCtxKey carries the (trace, current span) pair.
type spanCtxKey struct{}

type spanCtx struct {
	trace *activeTrace
	span  SpanID
}

func withSpan(ctx context.Context, at *activeTrace, id SpanID) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, spanCtx{trace: at, span: id})
}

// StartSpan begins a child span under the context's current span. With
// no active trace it returns ctx unchanged and a nil span whose
// methods no-op — untraced requests pay one context lookup.
func StartSpan(ctx context.Context, name, kind string) (context.Context, *ActiveSpan) {
	sc, ok := ctx.Value(spanCtxKey{}).(spanCtx)
	if !ok || sc.trace.finished.Load() {
		return ctx, nil
	}
	sp := sc.trace.newSpan(sc.span, name, kind)
	return withSpan(ctx, sc.trace, sp.id), sp
}

// Event records a zero-duration point span (a resilience event: a
// retry attempt, a breaker flip, a shed rejection) under the context's
// current span. No active trace, no work.
func Event(ctx context.Context, name string, attrs ...Attr) {
	sc, ok := ctx.Value(spanCtxKey{}).(spanCtx)
	if !ok || sc.trace.finished.Load() {
		return
	}
	at := sc.trace
	now := at.tracer.now()
	at.commit(&Span{
		ID:     newSpanID(at.id, at.spanSeq.Add(1)),
		Parent: sc.span,
		Name:   name,
		Kind:   KindEvent,
		Start:  now,
		Attrs:  attrs,
	})
}

// SetDegraded marks the context's trace as served degraded; degraded
// traces are always retained.
func SetDegraded(ctx context.Context) {
	if sc, ok := ctx.Value(spanCtxKey{}).(spanCtx); ok {
		sc.trace.degraded.Store(true)
	}
}

// IDFromContext reports the active trace's ID, when one is recording.
func IDFromContext(ctx context.Context) (TraceID, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(spanCtx)
	if !ok {
		return TraceID{}, false
	}
	return sc.trace.id, true
}
