// Package trace reconstructs single requests end to end: a Tracer
// records one span per pipeline stage (plus child spans for snapshot
// acquisition and resilience events — retries, breaker flips, shed
// rejections, fallback reroutes, recovered panics) and retains whole
// traces with tail-based sampling. The survey's effectiveness and
// trust aims (Sections 3.3, 3.6) need to answer *why a specific user
// got a specific explanation*; per-stage counters aggregate that
// answer away, a retained trace keeps it.
//
// # Sampling policy
//
// Every request records spans; whether the finished trace is retained
// is decided at the *tail*, when the outcome is known:
//
//   - slow traces (duration ≥ Options.SlowThreshold) are always kept;
//   - errored traces (any span ended with an error, or the frontend
//     marked the trace failed) are always kept;
//   - degraded traces (served by a fallback route) are always kept;
//   - healthy traces are kept when head-sampled at Options.SampleRate,
//     or when the caller propagated a W3C traceparent with the sampled
//     flag set.
//
// Retained traces land in a lock-free bounded ring buffer; the newest
// Options.BufferSize survive. Unretained traces cost a handful of
// slot writes and are garbage the moment the root span ends.
//
// # Determinism
//
// The package is covered by recsyslint's determinism rule: it never
// reads the wall clock or math/rand. Time comes through the injectable
// Options.Clock seam (production wires time.Now, tests wire fakes, and
// the nil default is a synthetic logical clock), and trace IDs and
// sampling draws come from a splitmix64 counter stream seeded by
// Options.Seed, so a test run's IDs and sampling decisions replay
// bit-for-bit.
package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Retention reasons reported on retained traces and in Metrics.
const (
	ReasonSlow     = "slow"     // duration ≥ SlowThreshold
	ReasonError    = "error"    // a span errored or the trace was failed
	ReasonDegraded = "degraded" // served by a degraded fallback
	ReasonSampled  = "sampled"  // healthy, head-sampled
)

// Options configures a Tracer. The zero value is usable: a 256-trace
// ring, 250ms slow threshold, no head sampling, 64 spans per trace,
// the synthetic logical clock, seed 1.
type Options struct {
	// BufferSize is the retained-trace ring capacity. Default 256.
	BufferSize int
	// SlowThreshold is the duration at and above which a trace is
	// always retained. Default 250ms; negative disables slow retention.
	SlowThreshold time.Duration
	// SampleRate head-samples healthy traces: a fraction in [0, 1] of
	// traces that are retained even when fast, clean and undegraded.
	// Default 0 (only slow/errored/degraded traces are kept).
	SampleRate float64
	// MaxSpans bounds spans recorded per trace; excess spans are
	// counted as dropped, never buffered. Default 64.
	MaxSpans int
	// Clock supplies timestamps. The package never reads the wall
	// clock itself (recsyslint's determinism rule bans it here): the
	// binary wires time.Now, tests wire fakes. Nil selects a synthetic
	// logical clock that advances one microsecond per reading — spans
	// stay ordered and durations are deterministic.
	Clock func() time.Time
	// Seed seeds the trace-ID and sampling stream. Default 1.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.BufferSize <= 0 {
		o.BufferSize = 256
	}
	if o.SlowThreshold == 0 {
		o.SlowThreshold = 250 * time.Millisecond
	}
	if o.MaxSpans <= 0 {
		o.MaxSpans = 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Tracer records per-request traces and retains them by the tail-based
// policy above. Safe for concurrent use; the hot paths (span record,
// ring publish) are lock-free.
type Tracer struct {
	opts  Options
	clock func() time.Time
	ring  *ring

	// idSeq drives the splitmix64 ID/sampling stream; logical is the
	// fallback clock's tick counter.
	idSeq   atomic.Uint64
	logical atomic.Int64

	// ops aggregates per-operation retention metrics:
	// op name → *opStats.
	ops sync.Map
}

// New builds a Tracer.
func New(opts Options) *Tracer {
	opts = opts.withDefaults()
	t := &Tracer{opts: opts, ring: newRing(opts.BufferSize)}
	t.clock = opts.Clock
	if t.clock == nil {
		// Synthetic logical clock: deterministic, strictly increasing.
		t.clock = func() time.Time {
			return time.Unix(0, t.logical.Add(int64(time.Microsecond)))
		}
	}
	return t
}

// Start begins a new trace rooted at an operation span and returns the
// derived context (carrying the trace for StartSpan/Event) plus the
// root span. Ending the root span finishes the trace and applies the
// retention policy. A nil Tracer returns ctx unchanged and a nil span
// whose methods no-op, so call sites need no tracing-enabled branch.
func (t *Tracer) Start(ctx context.Context, op string) (context.Context, *ActiveSpan) {
	return t.start(ctx, op, TraceID{}, SpanID{}, false)
}

// StartWithParent begins a trace that continues a caller-propagated
// W3C trace context: the trace adopts the remote trace ID, the root
// span's parent is the remote span, and a set sampled flag forces
// retention (the caller asked to see this trace).
func (t *Tracer) StartWithParent(ctx context.Context, op string, id TraceID, parent SpanID, sampled bool) (context.Context, *ActiveSpan) {
	return t.start(ctx, op, id, parent, sampled)
}

func (t *Tracer) start(ctx context.Context, op string, id TraceID, parent SpanID, sampled bool) (context.Context, *ActiveSpan) {
	if t == nil {
		return ctx, nil
	}
	seq := t.idSeq.Add(1)
	if id.IsZero() {
		id = newTraceID(t.opts.Seed, seq)
	}
	at := &activeTrace{
		tracer:      t,
		id:          id,
		op:          op,
		start:       t.clock(),
		headSampled: sampled || t.headSample(seq),
		slots:       make([]atomic.Pointer[Span], t.opts.MaxSpans),
	}
	t.opStatsFor(op).started.Add(1)
	sp := at.newSpan(parent, op, KindRequest)
	return withSpan(ctx, at, sp.id), sp
}

// headSample draws the healthy-trace sampling decision from the seeded
// stream — deterministic given the seed and the trace ordinal.
func (t *Tracer) headSample(seq uint64) bool {
	rate := t.opts.SampleRate
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	draw := float64(splitmix64(t.opts.Seed^0xa5a5a5a5a5a5a5a5+seq*0x9e3779b97f4a7c15)>>11) / (1 << 53)
	return draw < rate
}

// finish applies the tail-based retention decision to a completed
// trace. Called exactly once, by the root span's End.
func (t *Tracer) finish(at *activeTrace, end time.Time) {
	dur := end.Sub(at.start)
	reason := ""
	switch {
	case at.errored.Load():
		reason = ReasonError
	case t.opts.SlowThreshold >= 0 && dur >= t.opts.SlowThreshold:
		reason = ReasonSlow
	case at.degraded.Load():
		reason = ReasonDegraded
	case at.headSampled:
		reason = ReasonSampled
	}
	st := t.opStatsFor(at.op)
	st.observe(dur)
	if reason == "" {
		return
	}
	data := at.collect(dur, reason)
	st.retain(reason, data)
	t.ring.put(data)
}

// Recent returns up to n retained traces, newest first. n <= 0 means
// the whole buffer.
func (t *Tracer) Recent(n int) []*Data {
	if t == nil {
		return nil
	}
	out := t.ring.snapshot()
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Lookup returns the retained trace with the given ID, or nil.
func (t *Tracer) Lookup(id TraceID) *Data {
	if t == nil {
		return nil
	}
	for _, d := range t.ring.snapshot() {
		if d.ID == id {
			return d
		}
	}
	return nil
}

// SlowThreshold reports the configured always-retain latency bound.
func (t *Tracer) SlowThreshold() time.Duration { return t.opts.SlowThreshold }

// now exposes the tracer's clock to spans.
func (t *Tracer) now() time.Time { return t.clock() }

func (t *Tracer) opStatsFor(op string) *opStats {
	v, ok := t.ops.Load(op)
	if !ok {
		v, _ = t.ops.LoadOrStore(op, newOpStats())
	}
	return v.(*opStats)
}

// splitmix64 is the ID/sampling mixing function (same construction the
// internal/rng seeder uses); a counter keyed through it yields a
// deterministic, well-distributed 64-bit stream with no locking.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
