// Tests for the tracer core: tail-based retention (slow, errored,
// degraded, head-sampled, force-sampled, or dropped), span parenting
// through context, the MaxSpans drop counter, ring eviction order,
// nil-tracer safety, the deterministic logical clock, and the metrics
// snapshot. A fakeClock stands in for Options.Clock everywhere a
// duration matters.

package trace

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced Options.Clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func TestRetainSlow(t *testing.T) {
	clk := newFakeClock()
	tr := New(Options{SlowThreshold: 100 * time.Millisecond, Clock: clk.Now})
	_, root := tr.Start(context.Background(), "recommend")
	clk.Advance(150 * time.Millisecond)
	root.End(nil)

	d := tr.Lookup(root.TraceID())
	if d == nil {
		t.Fatal("slow trace not retained")
	}
	if d.Reason != ReasonSlow || d.Status != "ok" || d.Duration != 150*time.Millisecond {
		t.Fatalf("retained trace = %+v, want reason=slow status=ok dur=150ms", d)
	}
}

func TestSlowRetentionDisabled(t *testing.T) {
	clk := newFakeClock()
	tr := New(Options{SlowThreshold: -1, Clock: clk.Now})
	_, root := tr.Start(context.Background(), "recommend")
	clk.Advance(time.Hour)
	root.End(nil)
	if got := tr.Recent(0); len(got) != 0 {
		t.Fatalf("negative SlowThreshold still retained %d traces", len(got))
	}
}

func TestRetainError(t *testing.T) {
	tr := New(Options{})
	ctx, root := tr.Start(context.Background(), "explain")
	_, sp := StartSpan(ctx, "explain/resolve", KindStage)
	sp.End(errors.New("boom"))
	root.End(nil)

	d := tr.Lookup(root.TraceID())
	if d == nil {
		t.Fatal("errored trace not retained")
	}
	if d.Reason != ReasonError || d.Status != "error" {
		t.Fatalf("reason=%q status=%q, want error/error", d.Reason, d.Status)
	}
	var found bool
	for _, s := range d.Spans {
		if s.Name == "explain/resolve" && s.Err == "boom" {
			found = true
		}
	}
	if !found {
		t.Fatalf("errored child span missing from %+v", d.Spans)
	}
}

func TestFailMarksTraceErrored(t *testing.T) {
	tr := New(Options{})
	_, root := tr.Start(context.Background(), "recommend")
	root.Fail() // e.g. the HTTP layer observed a 5xx the spans did not
	root.End(nil)
	d := tr.Lookup(root.TraceID())
	if d == nil || d.Status != "error" || d.Reason != ReasonError {
		t.Fatalf("Fail() did not retain as errored: %+v", d)
	}
}

func TestRetainDegraded(t *testing.T) {
	tr := New(Options{})
	ctx, root := tr.Start(context.Background(), "recommend")
	SetDegraded(ctx)
	root.End(nil)
	d := tr.Lookup(root.TraceID())
	if d == nil || d.Reason != ReasonDegraded || !d.Degraded || d.Status != "ok" {
		t.Fatalf("degraded trace = %+v, want reason=degraded degraded=true status=ok", d)
	}
}

func TestHealthyTraceNotRetained(t *testing.T) {
	tr := New(Options{})
	ctx, root := tr.Start(context.Background(), "recommend")
	_, sp := StartSpan(ctx, "recommend/rank", KindStage)
	sp.End(nil)
	root.End(nil)
	if d := tr.Lookup(root.TraceID()); d != nil {
		t.Fatalf("fast clean unsampled trace retained: %+v", d)
	}
	// ... but it is still observed in the metrics histogram.
	m := tr.Metrics()["recommend"]
	if m.Started != 1 || m.Retained != 0 {
		t.Fatalf("metrics = started %d retained %d, want 1/0", m.Started, m.Retained)
	}
}

func TestHeadSamplingAlways(t *testing.T) {
	tr := New(Options{SampleRate: 1})
	_, root := tr.Start(context.Background(), "recommend")
	root.End(nil)
	d := tr.Lookup(root.TraceID())
	if d == nil || d.Reason != ReasonSampled {
		t.Fatalf("SampleRate 1 trace = %+v, want retained with reason=sampled", d)
	}
}

// TestHeadSamplingDeterministic: the sampling draw comes from the
// seeded counter stream, so two tracers with the same seed make
// identical decisions — and a rate of 0.5 lands in a plausible band.
func TestHeadSamplingDeterministic(t *testing.T) {
	const n = 1000
	run := func() []bool {
		tr := New(Options{SampleRate: 0.5, BufferSize: n, Seed: 42})
		out := make([]bool, n)
		for i := 0; i < n; i++ {
			_, root := tr.Start(context.Background(), "op")
			root.End(nil)
			out[i] = tr.Lookup(root.TraceID()) != nil
		}
		return out
	}
	a, b := run(), run()
	kept := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampling decision %d differs across identically seeded tracers", i)
		}
		if a[i] {
			kept++
		}
	}
	if kept < n*4/10 || kept > n*6/10 {
		t.Fatalf("rate-0.5 sampling kept %d/%d, want roughly half", kept, n)
	}
}

func TestSampledTraceparentForcesRetention(t *testing.T) {
	tr := New(Options{})
	remote, parent := newTraceID(7, 1), newSpanID(newTraceID(7, 1), 9)
	_, root := tr.StartWithParent(context.Background(), "explain", remote, parent, true)
	root.End(nil)

	d := tr.Lookup(remote)
	if d == nil {
		t.Fatal("sampled remote trace not retained")
	}
	if d.ID != remote || d.Reason != ReasonSampled {
		t.Fatalf("retained = id %s reason %q, want remote id %s reason sampled", d.ID, d.Reason, remote)
	}
	if len(d.Spans) == 0 || d.Spans[0].Parent != parent {
		t.Fatalf("root span parent = %v, want remote parent %v", d.Spans, parent)
	}
}

func TestSpanParenting(t *testing.T) {
	tr := New(Options{})
	ctx, root := tr.Start(context.Background(), "recommend")
	stageCtx, stage := StartSpan(ctx, "recommend/rank", KindStage)
	Event(stageCtx, "retry", Attr{Key: "attempt", Value: "2"})
	_, snap := StartSpan(stageCtx, "snapshot", KindSnapshot)
	snap.End(nil)
	stage.End(nil)
	root.End(errors.New("keep me"))

	d := tr.Lookup(root.TraceID())
	if d == nil {
		t.Fatal("trace not retained")
	}
	byName := map[string]Span{}
	for _, s := range d.Spans {
		byName[s.Name] = s
	}
	if byName["recommend/rank"].Parent != root.SpanID() {
		t.Fatal("stage span not parented to root")
	}
	if byName["retry"].Parent != stage.SpanID() || byName["retry"].Kind != KindEvent {
		t.Fatalf("event span = %+v, want child of stage with kind event", byName["retry"])
	}
	if byName["snapshot"].Parent != stage.SpanID() || byName["snapshot"].Kind != KindSnapshot {
		t.Fatalf("snapshot span = %+v, want child of stage with kind snapshot", byName["snapshot"])
	}
	if got := byName["retry"].Attrs; len(got) != 1 || got[0] != (Attr{Key: "attempt", Value: "2"}) {
		t.Fatalf("event attrs = %v", got)
	}
}

func TestStartSpanWithoutTrace(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "orphan", KindStage)
	if sp != nil {
		t.Fatal("StartSpan without an active trace returned a live span")
	}
	if ctx != context.Background() {
		t.Fatal("context was rewrapped for a no-op span")
	}
	// All of these must be safe no-ops.
	sp.SetAttr("k", "v")
	sp.End(nil)
	sp.Fail()
	Event(ctx, "nobody-home")
	SetDegraded(ctx)
	if _, ok := IDFromContext(ctx); ok {
		t.Fatal("IDFromContext reported a trace on a bare context")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	ctx, root := tr.Start(context.Background(), "recommend")
	if root != nil || ctx != context.Background() {
		t.Fatal("nil tracer must return the context unchanged and a nil span")
	}
	root.SetAttr("k", "v")
	root.End(nil)
	if tr.Recent(0) != nil || tr.Metrics() != nil {
		t.Fatal("nil tracer leaked data")
	}
	if d := tr.Lookup(TraceID{1}); d != nil {
		t.Fatal("nil tracer Lookup returned a trace")
	}
}

func TestMaxSpansDropped(t *testing.T) {
	tr := New(Options{MaxSpans: 4})
	ctx, root := tr.Start(context.Background(), "recommend")
	for i := 0; i < 10; i++ {
		Event(ctx, fmt.Sprintf("event-%d", i))
	}
	root.End(errors.New("retain"))
	d := tr.Lookup(root.TraceID())
	if d == nil {
		t.Fatal("trace not retained")
	}
	// 1 root + 10 events claimed 11 slots of 4.
	if len(d.Spans) != 4 || d.Dropped != 7 {
		t.Fatalf("spans=%d dropped=%d, want 4/7", len(d.Spans), d.Dropped)
	}
}

func TestRingEvictsOldest(t *testing.T) {
	tr := New(Options{BufferSize: 4})
	var ids []TraceID
	for i := 0; i < 10; i++ {
		_, root := tr.Start(context.Background(), "op")
		root.End(errors.New("retain"))
		ids = append(ids, root.TraceID())
	}
	got := tr.Recent(0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(got))
	}
	// Newest first: traces 9, 8, 7, 6.
	for i, d := range got {
		if want := ids[9-i]; d.ID != want {
			t.Fatalf("Recent[%d] = %s, want %s", i, d.ID, want)
		}
	}
	if tr.Lookup(ids[0]) != nil {
		t.Fatal("evicted trace still resolvable")
	}
	if got := tr.Recent(2); len(got) != 2 || got[0].ID != ids[9] {
		t.Fatalf("Recent(2) = %v", got)
	}
}

// TestLogicalClockDeterminism: with no Clock wired, the synthetic
// logical clock makes identical call sequences produce bit-identical
// traces (IDs, timestamps, durations) across tracers.
func TestLogicalClockDeterminism(t *testing.T) {
	run := func() *Data {
		tr := New(Options{Seed: 3})
		ctx, root := tr.Start(context.Background(), "recommend")
		_, sp := StartSpan(ctx, "recommend/rank", KindStage)
		sp.End(nil)
		root.End(errors.New("retain"))
		return tr.Lookup(root.TraceID())
	}
	a, b := run(), run()
	if a == nil || b == nil {
		t.Fatal("trace not retained")
	}
	if a.ID != b.ID || a.Duration != b.Duration || len(a.Spans) != len(b.Spans) {
		t.Fatalf("logical-clock runs diverged: %+v vs %+v", a, b)
	}
	for i := range a.Spans {
		as, bs := a.Spans[i], b.Spans[i]
		if as.ID != bs.ID || !as.Start.Equal(bs.Start) || as.Duration != bs.Duration {
			t.Fatalf("span %d diverged: %+v vs %+v", i, as, bs)
		}
	}
}

func TestMetricsSnapshot(t *testing.T) {
	clk := newFakeClock()
	tr := New(Options{SlowThreshold: 100 * time.Millisecond, Clock: clk.Now})

	// One slow trace (retained), one fast clean trace (observed only).
	_, slow := tr.Start(context.Background(), "recommend")
	clk.Advance(200 * time.Millisecond)
	slow.End(nil)
	_, fast := tr.Start(context.Background(), "recommend")
	clk.Advance(2 * time.Millisecond)
	fast.End(nil)

	m, ok := tr.Metrics()["recommend"]
	if !ok {
		t.Fatal("no metrics for op")
	}
	if m.Started != 2 || m.Retained != 1 || m.ByReason[ReasonSlow] != 1 {
		t.Fatalf("metrics = %+v, want started 2 retained 1 slow 1", m)
	}
	// 200ms lands in the 250ms bucket (index 4), 2ms in the 5ms bucket.
	if m.Buckets[4] != 1 || m.Buckets[1] != 1 {
		t.Fatalf("buckets = %v, want one observation each in 5ms and 250ms", m.Buckets)
	}
	ex := m.Exemplars[250*time.Millisecond]
	if ex == nil || ex.TraceID != slow.TraceID() || ex.Reason != ReasonSlow {
		t.Fatalf("exemplar = %+v, want the slow trace", ex)
	}
}

// TestConcurrentSpans exercises the lock-free span slots and ring under
// the race detector: many goroutines record spans and events into one
// trace while others finish their own traces into the shared ring.
func TestConcurrentSpans(t *testing.T) {
	tr := New(Options{MaxSpans: 512, BufferSize: 8})
	ctx, root := tr.Start(context.Background(), "recommend")

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				c, sp := StartSpan(ctx, fmt.Sprintf("g%d-s%d", g, i), KindStage)
				Event(c, "tick")
				sp.End(nil)
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_, r := tr.Start(context.Background(), "other")
				r.End(errors.New("retain"))
			}
		}()
	}
	wg.Wait()
	root.End(errors.New("retain"))

	d := tr.Lookup(root.TraceID())
	if d == nil {
		t.Fatal("trace not retained")
	}
	// 1 root + 8*20 stages + 8*20 events = 321 spans, all within MaxSpans.
	if len(d.Spans) != 321 || d.Dropped != 0 {
		t.Fatalf("spans=%d dropped=%d, want 321/0", len(d.Spans), d.Dropped)
	}
	if got := len(tr.Recent(0)); got != 8 {
		t.Fatalf("ring holds %d, want its capacity 8", got)
	}
}

// TestLateEventAfterFinish: spans and events recorded after the root
// span ended are dropped, not raced into a frozen trace.
func TestLateEventAfterFinish(t *testing.T) {
	tr := New(Options{})
	ctx, root := tr.Start(context.Background(), "recommend")
	root.End(errors.New("retain"))
	Event(ctx, "too-late")
	_, sp := StartSpan(ctx, "too-late-span", KindStage)
	sp.End(nil)
	d := tr.Lookup(root.TraceID())
	if d == nil || len(d.Spans) != 1 {
		t.Fatalf("late spans leaked into finished trace: %+v", d)
	}
}
