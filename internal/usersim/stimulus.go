package usersim

import (
	"repro/internal/explain"
)

// StimulusFrom maps a real explanation to the stimulus channels of the
// user model. This is the bridge between the explanation engine and
// the simulated participants: experiments generate genuine
// explanations and convert them here, so persuasion and effectiveness
// results reflect what the displays actually contain.
func StimulusFrom(e *explain.Explanation, clarity float64) Stimulus {
	s := Stimulus{
		Clarity: clarity,
		TextLen: len(e.Text) + len(e.Detail),
	}
	ev := e.Evidence
	switch {
	case len(ev.Influences) > 0 || len(ev.Keywords) > 0:
		// Content-grounded displays cite things the user knows (their
		// own ratings, familiar genres): highly informative, no hype.
		s.Informativeness = 0.7
		s.Hype = 0.05
		s.Support = supportFromConfidence(e.Confidence)
	case ev.Histogram != nil || len(ev.Neighbors) > 0:
		// Social-proof displays: strong signed support, persuasive,
		// but they tell the user little about their own taste. The
		// display's scalar claim is the neighbourhood consensus, and a
		// wall of clustered positive ratings reads as an endorsement —
		// conformity pressure is the hype channel at its strongest.
		s.Informativeness = 0.2
		s.Hype = 0.5
		good, bad := goodBad(e)
		if good+bad > 0 {
			s.Support = (good - bad) / (good + bad)
		}
		var sum float64
		for _, nb := range e.Evidence.Neighbors {
			sum += nb.Rating
		}
		if n := len(e.Evidence.Neighbors); n > 0 {
			s.Shown = sum / float64(n)
		}
	case len(ev.Breakdown) > 0 || len(ev.Tradeoffs) > 0:
		// Requirement-grounded displays: informative about fit.
		s.Informativeness = 0.6
		s.Hype = 0.05
		s.Support = supportFromConfidence(e.Confidence)
	default:
		// Vague or boilerplate text: pure hype.
		s.Informativeness = 0.05
		s.Hype = 0.4
		s.Support = 0.2
	}
	if !e.Faithful {
		// Unfaithful displays cannot inform, whatever they show.
		s.Informativeness = 0
		s.Hype += 0.2
	}
	return s
}

func supportFromConfidence(conf float64) float64 {
	return clampTo(conf*2-1, -1, 1) * 0.5
}

func goodBad(e *explain.Explanation) (good, bad float64) {
	for _, nb := range e.Evidence.Neighbors {
		switch {
		case nb.Rating >= 4:
			good++
		case nb.Rating <= 2:
			bad++
		}
	}
	return good, bad
}
