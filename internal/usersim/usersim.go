// Package usersim simulates the human participants of the user studies
// the survey reports. Every evaluation recipe in the paper's Section 3
// ultimately measures people — how much an explanation persuades them
// (3.4), whether it helps them judge items correctly (3.5), how fast
// they finish tasks (3.1, 3.2, 3.6), whether they come back (3.3,
// 3.7). We substitute a stochastic user model with explicit,
// documented mechanisms:
//
//   - every user has a ground-truth utility (from dataset.Truth) they
//     only discover by consuming an item;
//   - before consumption they hold a weak prior (midpoint plus
//     popularity cue);
//   - explanations act on them through three channels: the *shown*
//     signal (what the display claims), *informativeness* (how much the
//     display lets them access their own true preference), and *hype*
//     (persuasive pressure) — attenuated by display clarity and the
//     user's susceptibility and scepticism;
//   - trust is a state variable that rises with good, explained
//     outcomes and falls with bad ones, falling less when the failure
//     was explained (Section 2.3: "a user may be more forgiving ... if
//     they understand why a bad recommendation has been made").
//
// The parameters are not fitted to any dataset; they are chosen so the
// *directional* findings the survey cites can be reproduced and, more
// importantly, so the trade-offs (persuasion vs effectiveness) emerge
// from the mechanism rather than being hard-coded per experiment.
package usersim

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/rng"
)

// User is one simulated participant.
type User struct {
	ID    model.UserID
	Truth *dataset.Truth
	R     *rng.RNG

	// Susceptibility in [0,1]: how strongly shown signals and hype move
	// the user's stated intent and ratings.
	Susceptibility float64
	// Skepticism in [0,1]: how harshly the user punishes confusing
	// displays.
	Skepticism float64
	// Trust in [0,1]: evolving confidence in the system.
	Trust float64
	// Patience: how many interactions the user tolerates before
	// abandoning a task.
	Patience int
	// Skill in [0,1]: general interface competence; drives task
	// correctness and time in the transparency/scrutability studies.
	Skill float64
	// ReadSecondsPer100 is reading speed for explanation text.
	ReadSecondsPer100 float64
	// NoiseSD is the user's rating noise.
	NoiseSD float64
}

// TrueUtility is the user's latent utility for an item — known to the
// simulation, discovered by the user only via Consume.
func (u *User) TrueUtility(it *model.Item) float64 {
	return u.Truth.Utility(u.ID, it)
}

// Consume "consumes" the item and returns the experienced quality: the
// true utility plus a small experiential wobble. The post-consumption
// rating of Section 3.5's methodology.
func (u *User) Consume(it *model.Item) float64 {
	return model.ClampRating(u.TrueUtility(it) + u.R.Norm(0, u.NoiseSD))
}

// Prior is the user's pre-consumption estimate with no explanation: a
// weak pull from the scale midpoint toward popularity ("I've heard of
// this").
func (u *User) Prior(it *model.Item) float64 {
	mid := (model.MinRating + model.MaxRating) / 2
	return model.ClampRating(mid + 0.8*(it.Popularity-0.4) + u.R.Norm(0, 0.3))
}

// Stimulus is how an explanation display reaches a user. Experiments
// construct it from real explain.Explanation values; the fields are
// the three channels of the model plus presentation costs.
type Stimulus struct {
	// Shown is the claim the display makes on the rating scale (a
	// predicted score, a neighbourhood consensus...). Zero means the
	// display makes no scalar claim.
	Shown float64
	// Support in [-1,1] is the signed strength of the evidence the
	// display conveys.
	Support float64
	// Informativeness in [0,1]: how much the display lets the user
	// evaluate the item against their *own* taste (an influence table
	// citing books they know scores high; "won awards" scores zero).
	Informativeness float64
	// Hype in [0,1]: persuasive pressure not grounded in the user's
	// taste.
	Hype float64
	// Clarity in [0,1]: how decodable the display is.
	Clarity float64
	// TextLen in characters drives reading time.
	TextLen int
}

// Intent returns the user's likelihood of consuming the item on
// Herlocker's 1-7 scale, given a stimulus. With no stimulus
// (zero-value) the expected response is the neutral base of ~4.5.
func (u *User) Intent(it *model.Item, s Stimulus) float64 {
	const base = 4.5
	v := base
	// Evidence moves intent proportionally to clarity and
	// susceptibility: two scale points at full strength.
	v += 2.0 * u.Susceptibility * s.Support * s.Clarity
	// Informative displays let the user's own taste speak.
	v += 1.2 * s.Informativeness * (u.TrueUtility(it) - 3) / 2
	// Hype pushes up, but only as far as susceptibility allows.
	v += 1.0 * s.Hype * u.Susceptibility
	// Confusing displays annoy in proportion to scepticism — this is
	// what drags bad interfaces below the no-explanation base.
	if s.Clarity < 0.5 {
		v -= 2.5 * u.Skepticism * (0.5 - s.Clarity)
	}
	v += u.R.Norm(0, 0.4)
	return clampTo(v, 1, 7)
}

// PreRating is the rating the user would state *before* consumption,
// after seeing the stimulus (the first rating of the Bilgic & Mooney
// protocol and of the Cosley re-rating study).
func (u *User) PreRating(it *model.Item, s Stimulus) float64 {
	est := u.Prior(it)
	// An informative display reveals the user's own eventual judgement.
	est += s.Informativeness * (u.TrueUtility(it) - est)
	// A shown scalar claim anchors the estimate in proportion to
	// susceptibility and clarity — but only to the extent the user has
	// nothing better: the more the display informs, the less its claim
	// anchors.
	if s.Shown > 0 {
		est += (1 - s.Informativeness) * u.Susceptibility * s.Clarity * (s.Shown - est)
	}
	// Hype inflates.
	est += s.Hype * u.Susceptibility * 1.2
	est += u.R.Norm(0, u.NoiseSD/2)
	return quantizeHalf(model.ClampRating(est))
}

// PostRating is the rating stated after consumption.
func (u *User) PostRating(it *model.Item) float64 {
	return quantizeHalf(u.Consume(it))
}

// ReadTime returns the seconds spent reading a display of n
// characters.
func (u *User) ReadTime(n int) float64 {
	return float64(n) / 100 * u.ReadSecondsPer100
}

// UpdateTrust folds one recommendation outcome into the user's trust
// state. predicted is what the system claimed, experienced what
// consumption delivered; explained reports whether the recommendation
// carried an explanation. Good outcomes build trust (slightly more
// when explained — the user sees *why* it worked); bad outcomes erode
// it, less when explained.
func (u *User) UpdateTrust(predicted, experienced float64, explained bool) {
	err := math.Abs(predicted - experienced)
	if err <= 1 {
		gain := 0.05
		if explained {
			gain = 0.07
		}
		u.Trust = clampTo(u.Trust+gain, 0, 1)
		return
	}
	loss := 0.10 * (err - 1)
	if explained {
		loss *= 0.5
	}
	u.Trust = clampTo(u.Trust-loss, 0, 1)
}

// WillReturn samples whether the user comes back for another session —
// the loyalty proxy of Section 3.3 (logins and interactions).
func (u *User) WillReturn() bool {
	return u.R.Bernoulli(0.15 + 0.8*u.Trust)
}

// Satisfied reports whether consuming the item would satisfy the user
// (true utility at or above four stars) — the stop condition for
// conversational search tasks.
func (u *User) Satisfied(it *model.Item) bool {
	return u.TrueUtility(it) >= 4
}

func clampTo(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func quantizeHalf(v float64) float64 {
	return model.ClampRating(math.Round(v*2) / 2)
}

// Population is a sampled set of simulated users over one community.
type Population struct {
	Users []*User
}

// NewPopulation samples n users (community members 1..n) with
// behavioural parameters drawn from documented distributions. The
// draw is deterministic in seed.
func NewPopulation(c *dataset.Community, n int, seed uint64) *Population {
	r := rng.New(seed)
	if n > c.Truth.Users() {
		n = c.Truth.Users()
	}
	p := &Population{}
	for i := 1; i <= n; i++ {
		ur := r.Split()
		p.Users = append(p.Users, &User{
			ID:                model.UserID(i),
			Truth:             c.Truth,
			R:                 ur,
			Susceptibility:    clampTo(ur.Norm(0.5, 0.15), 0.05, 0.95),
			Skepticism:        clampTo(ur.Norm(0.5, 0.2), 0.05, 0.95),
			Trust:             clampTo(ur.Norm(0.5, 0.1), 0.1, 0.9),
			Patience:          8 + ur.Intn(10),
			Skill:             clampTo(ur.Norm(0.6, 0.2), 0.05, 0.95),
			ReadSecondsPer100: clampTo(ur.Norm(4, 1), 1.5, 8),
			NoiseSD:           clampTo(ur.Norm(c.Noise, 0.1), 0.2, 1.2),
		})
	}
	return p
}
