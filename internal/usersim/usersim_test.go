package usersim

import (
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/explain"
	"repro/internal/recsys/cf"
	"repro/internal/recsys/knowledge"
	"repro/internal/rng"
	"repro/internal/stats"
)

func moviePop(t testing.TB, n int) (*dataset.Community, *Population) {
	t.Helper()
	c := dataset.Movies(dataset.Config{Seed: 301, Users: 100, Items: 120, RatingsPerUser: 20})
	return c, NewPopulation(c, n, 77)
}

func TestPopulationDeterministic(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 301, Users: 20, Items: 30, RatingsPerUser: 5})
	a := NewPopulation(c, 10, 5)
	b := NewPopulation(c, 10, 5)
	for i := range a.Users {
		if a.Users[i].Susceptibility != b.Users[i].Susceptibility ||
			a.Users[i].Patience != b.Users[i].Patience {
			t.Fatal("population not deterministic")
		}
	}
	if len(NewPopulation(c, 999, 5).Users) != 20 {
		t.Fatal("population should clamp to community size")
	}
}

func TestPopulationParameterRanges(t *testing.T) {
	_, p := moviePop(t, 100)
	for _, u := range p.Users {
		if u.Susceptibility < 0.05 || u.Susceptibility > 0.95 ||
			u.Skepticism < 0.05 || u.Skepticism > 0.95 ||
			u.Trust < 0.1 || u.Trust > 0.9 ||
			u.Skill < 0.05 || u.Skill > 0.95 {
			t.Fatalf("parameters out of range: %+v", u)
		}
		if u.Patience < 8 || u.Patience > 17 {
			t.Fatalf("patience %d out of range", u.Patience)
		}
	}
}

func TestConsumeTracksTruth(t *testing.T) {
	c, p := moviePop(t, 20)
	u := p.Users[0]
	it := c.Catalog.Items()[0]
	var sum float64
	const n = 500
	for i := 0; i < n; i++ {
		sum += u.Consume(it)
	}
	mean := sum / n
	truth := u.TrueUtility(it)
	if diff := mean - truth; diff > 0.25 || diff < -0.25 {
		t.Fatalf("consumption mean %.2f far from truth %.2f", mean, truth)
	}
}

func TestIntentNeutralBase(t *testing.T) {
	c, p := moviePop(t, 50)
	it := c.Catalog.Items()[10]
	var sum float64
	var n int
	for _, u := range p.Users {
		for i := 0; i < 20; i++ {
			sum += u.Intent(it, Stimulus{Clarity: 1})
			n++
		}
	}
	mean := sum / float64(n)
	if mean < 4.2 || mean > 4.8 {
		t.Fatalf("neutral intent mean %.2f, want ~4.5", mean)
	}
}

func TestIntentRespondsToSupport(t *testing.T) {
	c, p := moviePop(t, 50)
	it := c.Catalog.Items()[10]
	var up, down float64
	for _, u := range p.Users {
		up += u.Intent(it, Stimulus{Support: 0.9, Clarity: 0.95})
		down += u.Intent(it, Stimulus{Support: -0.9, Clarity: 0.95})
	}
	if up <= down {
		t.Fatalf("positive support should raise intent: %v vs %v", up, down)
	}
}

func TestConfusingDisplayDepressesIntent(t *testing.T) {
	c, p := moviePop(t, 80)
	it := c.Catalog.Items()[10]
	var confusing, base float64
	for _, u := range p.Users {
		// Same evidence, terrible clarity vs no display at all.
		confusing += u.Intent(it, Stimulus{Support: 0.5, Clarity: 0.05})
		base += u.Intent(it, Stimulus{Clarity: 1})
	}
	if confusing >= base {
		t.Fatalf("confusing display should fall below base: %.1f vs %.1f", confusing, base)
	}
}

func TestIntentBoundsQuick(t *testing.T) {
	c, p := moviePop(t, 10)
	it := c.Catalog.Items()[0]
	f := func(sup, inf, hype, clar float64) bool {
		s := Stimulus{
			Support:         clampTo(sup, -1, 1),
			Informativeness: clampTo(inf, 0, 1),
			Hype:            clampTo(hype, 0, 1),
			Clarity:         clampTo(clar, 0, 1),
		}
		v := p.Users[0].Intent(it, s)
		return v >= 1 && v <= 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPreRatingInformativeCloserToTruth(t *testing.T) {
	// The effectiveness mechanism: informative stimuli shrink the
	// pre/post gap, hype inflates it.
	c, p := moviePop(t, 100)
	items := c.Catalog.Items()
	var gapInformative, gapHyped []float64
	for ui, u := range p.Users {
		it := items[(ui*7)%len(items)]
		pre := u.PreRating(it, Stimulus{Informativeness: 0.8, Clarity: 0.9})
		post := u.PostRating(it)
		gapInformative = append(gapInformative, pre-post)
		pre2 := u.PreRating(it, Stimulus{Hype: 0.8, Shown: 4.5, Clarity: 0.9})
		post2 := u.PostRating(it)
		gapHyped = append(gapHyped, pre2-post2)
	}
	mi := stats.Mean(gapInformative)
	mh := stats.Mean(gapHyped)
	if mh <= mi {
		t.Fatalf("hype should inflate the gap: informative %.2f vs hyped %.2f", mi, mh)
	}
	if mi > 0.3 || mi < -0.3 {
		t.Fatalf("informative gap should be near zero, got %.2f", mi)
	}
}

func TestTrustDynamics(t *testing.T) {
	u := &User{Trust: 0.5, R: newR(1)}
	u.UpdateTrust(4, 4.2, false)
	if u.Trust <= 0.5 {
		t.Fatal("good outcome should raise trust")
	}
	before := u.Trust
	u.UpdateTrust(5, 1, false)
	dropUnexplained := before - u.Trust
	u2 := &User{Trust: before, R: newR(2)}
	u2.UpdateTrust(5, 1, true)
	dropExplained := before - u2.Trust
	if dropExplained >= dropUnexplained {
		t.Fatalf("explained failure should cost less trust: %.3f vs %.3f", dropExplained, dropUnexplained)
	}
	// Trust clamps.
	u3 := &User{Trust: 0.02, R: newR(3)}
	for i := 0; i < 20; i++ {
		u3.UpdateTrust(5, 1, false)
	}
	if u3.Trust < 0 {
		t.Fatal("trust below zero")
	}
}

func TestWillReturnMonotoneInTrust(t *testing.T) {
	low := &User{Trust: 0.05, R: newR(4)}
	high := &User{Trust: 0.95, R: newR(5)}
	var lowN, highN int
	for i := 0; i < 2000; i++ {
		if low.WillReturn() {
			lowN++
		}
		if high.WillReturn() {
			highN++
		}
	}
	if highN <= lowN {
		t.Fatalf("loyalty should rise with trust: %d vs %d", lowN, highN)
	}
}

func TestReadTime(t *testing.T) {
	u := &User{ReadSecondsPer100: 4}
	if got := u.ReadTime(200); got != 8 {
		t.Fatalf("ReadTime = %v", got)
	}
	if got := u.ReadTime(0); got != 0 {
		t.Fatalf("ReadTime(0) = %v", got)
	}
}

func TestStimulusMapping(t *testing.T) {
	c := dataset.Movies(dataset.Config{Seed: 301, Users: 40, Items: 60, RatingsPerUser: 15})
	knn := cf.NewUserKNN(c.Ratings, c.Catalog, cf.Options{K: 10})
	he := explain.NewHistogramExplainer(knn)
	var exp *explain.Explanation
	for _, it := range c.Catalog.Items() {
		if _, rated := c.Ratings.Get(1, it.ID); rated {
			continue
		}
		if e, err := he.Explain(1, it); err == nil {
			exp = e
			break
		}
	}
	if exp == nil {
		t.Fatal("no histogram explanation available")
	}
	s := StimulusFrom(exp, 0.95)
	if s.Informativeness > 0.3 {
		t.Fatalf("social proof should be weakly informative: %+v", s)
	}
	if s.Hype <= 0.1 {
		t.Fatalf("social proof should carry hype: %+v", s)
	}
	if s.Support < -1 || s.Support > 1 {
		t.Fatalf("support out of range: %+v", s)
	}
	if s.TextLen == 0 {
		t.Fatal("text length missing")
	}

	// Preference breakdown maps to the informative channel.
	pref := &explain.Explanation{
		Text:       "Matches your requirements.",
		Confidence: 0.9,
		Faithful:   true,
		Evidence:   explain.Evidence{Breakdown: []knowledge.AttrScore{{Attr: "price", Score: 1, Weight: 1}}},
	}
	sp := StimulusFrom(pref, 0.9)
	if sp.Informativeness < 0.5 {
		t.Fatalf("breakdown should be informative: %+v", sp)
	}

	// Unfaithful boilerplate cannot inform.
	fake := &explain.Explanation{Text: "Award-winning!", Faithful: false}
	sf := StimulusFrom(fake, 0.9)
	if sf.Informativeness != 0 {
		t.Fatalf("unfaithful display informativeness = %v", sf.Informativeness)
	}
	if sf.Hype <= 0.4 {
		t.Fatalf("unfaithful display should be hype-heavy: %+v", sf)
	}
}

func TestSatisfied(t *testing.T) {
	c, p := moviePop(t, 10)
	u := p.Users[0]
	var sat, unsat bool
	for _, it := range c.Catalog.Items() {
		if u.Satisfied(it) {
			sat = true
		} else {
			unsat = true
		}
	}
	if !sat || !unsat {
		t.Fatal("expected both satisfying and unsatisfying items")
	}
}

func newR(seed uint64) *rng.RNG { return rng.New(seed) }
