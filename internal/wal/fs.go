// The filesystem seam: the log talks to storage through the FS
// interface so tests (and the fault package's crash-point injector)
// can substitute an in-memory or failure-injecting implementation for
// the real directory. DirFS is the production implementation; MemFS is
// the deterministic test double whose byte contents can be inspected,
// truncated and cloned to simulate a machine that lost power
// mid-write.
//
// Every implementation must honour the log's single contract with its
// storage: a record is handed to File.Write in ONE call, so a
// crash-injecting FS can tear a record at any byte boundary and know
// it tore exactly one frame.

package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS is the slice of filesystem behaviour the log needs. Paths are
// names relative to the log's root directory; implementations own the
// rooting.
type FS interface {
	// List returns the names in the root, in any order.
	List() ([]string, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// OpenAppend opens name for appending, first truncating it to size
	// bytes (discarding a torn tail). The file is created when absent
	// (size must then be 0).
	OpenAppend(name string, size int64) (File, error)
	// Create opens a fresh file for writing, truncating any previous
	// contents.
	Create(name string) (File, error)
	// Remove deletes name.
	Remove(name string) error
	// Rename atomically replaces newname with oldname's contents.
	Rename(oldname, newname string) error
	// SyncDir forces directory metadata — the entries created, renamed
	// or removed above — to stable storage. On a real filesystem a
	// freshly created file's directory entry is NOT durable until its
	// parent directory is fsynced, even when the file's own contents
	// are; implementations without that failure mode (memory, object
	// stores) may no-op.
	SyncDir() error
}

// File is an append handle. Writers must hand one record per Write
// call (see the package contract above).
type File interface {
	io.Writer
	// Sync forces written bytes to stable storage.
	Sync() error
	Close() error
}

// ---- production implementation ----

// dirFS is the os-backed FS rooted at one directory.
type dirFS struct{ root string }

// DirFS returns an FS rooted at dir, creating the directory when
// absent.
func DirFS(dir string) (FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	return dirFS{root: dir}, nil
}

func (fs dirFS) List() ([]string, error) {
	ents, err := os.ReadDir(fs.root)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", fs.root, err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (fs dirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(fs.root, name))
}

func (fs dirFS) OpenAppend(name string, size int64) (File, error) {
	path := filepath.Join(fs.root, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func (fs dirFS) Create(name string) (File, error) {
	return os.Create(filepath.Join(fs.root, name))
}

func (fs dirFS) Remove(name string) error {
	return os.Remove(filepath.Join(fs.root, name))
}

func (fs dirFS) Rename(oldname, newname string) error {
	return os.Rename(filepath.Join(fs.root, oldname), filepath.Join(fs.root, newname))
}

func (fs dirFS) SyncDir() error {
	d, err := os.Open(fs.root)
	if err != nil {
		return fmt.Errorf("wal: opening %s for sync: %w", fs.root, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: syncing directory %s: %w", fs.root, err)
	}
	return nil
}

// ---- in-memory implementation ----

// MemFS is an in-memory FS for tests: deterministic, inspectable, and
// cheap to snapshot. The zero value is not usable; call NewMemFS.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: map[string][]byte{}} }

// Snapshot returns a deep copy of the current contents — "what would
// be on disk if the machine died now".
func (m *MemFS) Snapshot() map[string][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string][]byte, len(m.files))
	for name, b := range m.files {
		out[name] = append([]byte(nil), b...)
	}
	return out
}

// Restore replaces the contents with a snapshot taken earlier.
func (m *MemFS) Restore(snap map[string][]byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files = make(map[string][]byte, len(snap))
	for name, b := range snap {
		m.files[name] = append([]byte(nil), b...)
	}
}

func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), b...), nil
}

func (m *MemFS) OpenAppend(name string, size int64) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b := m.files[name]
	if int64(len(b)) < size {
		return nil, fmt.Errorf("wal: truncate %s to %d: only %d bytes", name, size, len(b))
	}
	m.files[name] = b[:size:size]
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = nil
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	m.files[newname] = b
	delete(m.files, oldname)
	return nil
}

// SyncDir is a no-op: memory has no directory-entry durability gap.
func (m *MemFS) SyncDir() error { return nil }

// errClosedFile guards against use-after-close bugs in tests.
var errClosedFile = errors.New("wal: file already closed")

type memFile struct {
	fs     *MemFS
	name   string
	closed bool
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, errClosedFile
	}
	f.fs.files[f.name] = append(f.fs.files[f.name], p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return errClosedFile
	}
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}
