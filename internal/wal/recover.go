// Recovery: scan the directory, pick the newest checkpoint that
// verifies, replay every intact record after it, and truncate the log
// at the first bad frame. The invariant recovery restores is
// prefix-consistency — the recovered state is exactly the state after
// some prefix of the acknowledged operations, never a state with holes
// in the middle. That is why a sequence gap is treated the same as a
// CRC failure: replaying records 7 and 9 without 8 would fabricate a
// history that never existed.

package wal

import (
	"fmt"
	"sort"
	"strings"
)

// recover scans the FS, restores the log's bookkeeping (segments, last
// sequence, checkpoint sequence), physically truncates any torn tail,
// and opens the tail segment for appending. Called once from Open with
// no lock held (the log is not yet shared).
func (l *Log) recover() (*Recovery, error) {
	names, err := l.opts.FS.List()
	if err != nil {
		return nil, fmt.Errorf("wal: listing log dir: %w", err)
	}

	var ckptSeqs []uint64
	for _, name := range names {
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			// A crash mid-checkpoint leaves a temp file; it was never
			// published, so it is garbage.
			//lint:ignore dropped-error temp-file cleanup is advisory
			_ = l.opts.FS.Remove(name)
		default:
			if seq, ok := parseSeq(name, ckptPrefix, ckptSuffix); ok {
				ckptSeqs = append(ckptSeqs, seq)
			} else if seq, ok := parseSeq(name, segPrefix, segSuffix); ok {
				l.segs = append(l.segs, segMeta{name: name, firstSeq: seq})
			}
		}
	}
	sort.Slice(l.segs, func(a, b int) bool { return l.segs[a].firstSeq < l.segs[b].firstSeq })
	sort.Slice(ckptSeqs, func(a, b int) bool { return ckptSeqs[a] > ckptSeqs[b] })

	rec := &Recovery{}

	// Newest checkpoint that verifies wins; corrupt ones are skipped
	// (that is what retaining two buys us) and deleted.
	var ckptPayload []byte
	var haveCkpt bool
	for _, seq := range ckptSeqs {
		payload, ok := l.readCheckpoint(seq)
		if !ok {
			rec.Report.CorruptCheckpoints++
			//lint:ignore dropped-error corrupt-checkpoint cleanup is advisory
			_ = l.opts.FS.Remove(ckptName(seq))
			continue
		}
		ckptPayload, haveCkpt = payload, true
		l.ckptSeq = seq
		break
	}
	if haveCkpt {
		rec.Checkpoint = ckptPayload
		rec.Report.CheckpointSeq = l.ckptSeq
	}

	if err := l.replaySegments(rec); err != nil {
		return nil, err
	}
	l.report = rec.Report
	return rec, nil
}

// readCheckpoint loads and verifies one checkpoint file: exactly one
// intact frame whose sequence matches the file name.
func (l *Log) readCheckpoint(seq uint64) ([]byte, bool) {
	data, err := l.opts.FS.ReadFile(ckptName(seq))
	if err != nil {
		return nil, false
	}
	// Checkpoints may exceed MaxRecordBytes (they hold the whole
	// materialised state), so the length bound is the file itself.
	frameSeq, body, next, ok := parseFrame(data, 0, len(data))
	if !ok || frameSeq != seq || next != len(data) {
		return nil, false
	}
	return body, true
}

// replaySegments scans segments in order, collects intact records
// newer than the checkpoint, truncates at the first bad frame, and
// opens the surviving tail segment for appending.
func (l *Log) replaySegments(rec *Recovery) error {
	l.lastSeq = l.ckptSeq
	if len(l.segs) == 0 {
		return nil
	}

	// The scan starts at the last segment that can contain the first
	// record we need (ckptSeq+1): the last one with firstSeq ≤
	// ckptSeq+1. Earlier segments are fully materialised in the
	// checkpoint; they stay on disk for the older retained checkpoint
	// and are pruned at the next Checkpoint call.
	start := 0
	for i, sm := range l.segs {
		if sm.firstSeq <= l.ckptSeq+1 {
			start = i
		}
	}
	if l.segs[start].firstSeq > l.ckptSeq+1 {
		// Every segment starts beyond the next needed record: a gap
		// right after the checkpoint. Nothing on disk connects.
		l.dropSegments(start, rec)
		return l.openTail()
	}

	expected := l.segs[start].firstSeq
	for i := start; i < len(l.segs); i++ {
		sm := l.segs[i]
		if sm.firstSeq != expected {
			// Gap between segments: trust nothing from here on.
			l.dropSegments(i, rec)
			return l.openTail()
		}
		data, err := l.opts.FS.ReadFile(sm.name)
		if err != nil {
			return fmt.Errorf("wal: reading segment %s: %w", sm.name, err)
		}
		off := 0
		for off < len(data) {
			seq, body, next, ok := parseFrame(data, off, l.opts.MaxRecordBytes)
			if !ok || seq != expected {
				// First bad frame: the torn tail. Drop everything
				// after this segment, cut this one at the last intact
				// frame, and the log continues from there.
				rec.Report.Truncated += len(data) - off
				l.dropSegments(i+1, rec)
				if err := l.truncateTail(int64(off)); err != nil {
					return err
				}
				return l.openTail()
			}
			if seq > l.ckptSeq {
				rec.Records = append(rec.Records, Record{Seq: seq, Payload: append([]byte(nil), body...)})
				rec.Report.Records++
			}
			l.lastSeq = seq
			expected = seq + 1
			off = next
		}
	}
	return l.openTail()
}

// dropSegments discards segments l.segs[i:] — they sit after a gap or
// corruption, so replaying them would fabricate history. Their bytes
// count as truncated.
func (l *Log) dropSegments(i int, rec *Recovery) {
	for _, sm := range l.segs[i:] {
		if data, err := l.opts.FS.ReadFile(sm.name); err == nil {
			rec.Report.Truncated += len(data)
		}
		//lint:ignore dropped-error post-corruption segment removal is advisory
		_ = l.opts.FS.Remove(sm.name)
	}
	l.segs = l.segs[:i]
}

// truncateTail physically cuts the current tail segment to goodSize so
// a later Open never re-reads the torn bytes. A segment left empty
// (tear before its first record) is removed when an earlier segment
// can serve as the tail instead.
func (l *Log) truncateTail(goodSize int64) error {
	i := len(l.segs) - 1
	sm := l.segs[i]
	if goodSize == 0 && i > 0 {
		//lint:ignore dropped-error empty-segment removal is advisory
		_ = l.opts.FS.Remove(sm.name)
		l.segs = l.segs[:i]
		return nil
	}
	f, err := l.opts.FS.OpenAppend(sm.name, goodSize)
	if err != nil {
		return fmt.Errorf("wal: truncating %s to %d: %w", sm.name, goodSize, err)
	}
	return f.Close()
}

// openTail opens the last surviving segment for appending at its
// current length. With no segments left the log stays without an
// active file — the first append creates one.
func (l *Log) openTail() error {
	if len(l.segs) == 0 {
		l.active = nil
		l.activeBytes = 0
		return nil
	}
	tail := l.segs[len(l.segs)-1]
	data, err := l.opts.FS.ReadFile(tail.name)
	if err != nil {
		return fmt.Errorf("wal: reading tail %s: %w", tail.name, err)
	}
	f, err := l.opts.FS.OpenAppend(tail.name, int64(len(data)))
	if err != nil {
		return fmt.Errorf("wal: opening tail %s: %w", tail.name, err)
	}
	l.active = f
	l.activeBytes = int64(len(data))
	return nil
}
