// A Space hands out independent FS roots by relative directory name —
// the seam a multi-log owner (the cluster router keeps one WAL per
// shard engine, one per shard journal, and one topology log) uses to
// root them all under a single data directory without knowing whether
// storage is a real disk or test memory.

package wal

import (
	"path/filepath"
	"sync"
)

// Space maps a cluster-relative directory name ("topology",
// "shard-3/wal") to an FS rooted there. Calling it twice with the same
// name must yield views of the same underlying storage.
type Space func(dir string) (FS, error)

// DirSpace returns a Space rooted at dir on the real filesystem;
// subdirectories are created on first use.
func DirSpace(dir string) Space {
	return func(sub string) (FS, error) {
		return DirFS(filepath.Join(dir, sub))
	}
}

// MemSpace is an in-memory Space for tests: each name resolves to a
// stable MemFS, so a "restart" that builds a second consumer over the
// same MemSpace sees everything the first one wrote.
type MemSpace struct {
	mu   sync.Mutex
	dirs map[string]*MemFS
}

// NewMemSpace returns an empty in-memory space.
func NewMemSpace() *MemSpace { return &MemSpace{dirs: map[string]*MemFS{}} }

// FS implements Space (pass s.FS where a Space is wanted).
func (s *MemSpace) FS(dir string) (FS, error) { return s.Dir(dir), nil }

// Dir returns the MemFS behind dir for direct inspection in tests,
// creating it when absent.
func (s *MemSpace) Dir(dir string) *MemFS {
	s.mu.Lock()
	defer s.mu.Unlock()
	fs, ok := s.dirs[dir]
	if !ok {
		fs = NewMemFS()
		s.dirs[dir] = fs
	}
	return fs
}
