// Package wal is a durable, segmented, checksummed write-ahead log.
// Callers append opaque payloads (one record per mutating operation),
// periodically checkpoint a materialised snapshot of their state to
// bound replay length, and on restart recover the newest valid
// checkpoint plus every intact record after it. The log survives torn
// tails and corrupt records by truncating at the first bad frame and
// reporting exactly what was replayed and what was lost.
//
// # Frame format
//
// Every record is one frame, written with a single Write call so a
// crash (or the fault package's crash injector) tears at most one
// frame:
//
//	u32  length of body, little-endian
//	u32  CRC-32 (IEEE) over seq bytes ++ body
//	u64  seq, little-endian
//	body (the caller's payload)
//
// Sequence numbers are assigned by the log, start at 1 and advance by
// exactly 1 per append; a gap or repeat on replay is treated as
// corruption. Checkpoint files wrap their payload in the same frame
// (seq = the checkpoint's covering sequence), so checkpoints are CRC-
// verified too and a half-written checkpoint is detected and skipped.
//
// # Durability policies
//
// FsyncAlways syncs after every append — nothing acknowledged is ever
// lost, at the cost of one fsync per write. FsyncEveryN syncs when N
// unsynced appends have accumulated (and on rotation, checkpoint and
// Close) — bounded loss window, amortised cost. FsyncOS never syncs —
// the OS page cache decides; a power cut may lose the tail but never
// corrupts the prefix (recovery truncates the torn frame).
//
// The durability boundary is at-least-once, not exactly-once: recovery
// never loses an acknowledged record, but a REJECTED append may still
// surface after a restart. When the frame is written and the following
// fsync fails, the caller gets an error (and the log goes sticky-failed,
// refusing all further appends), yet the kernel may have flushed the
// bytes before dying — in which case recovery replays the NACKed
// record. Recovered state is therefore a prefix of the SUBMITTED
// history that always includes the acknowledged prefix, and may extend
// at most to the first rejected append. Callers that must not re-apply
// a rejected mutation need idempotent records (this repo's are: rate,
// import and evict are absolute assignments, not deltas).
//
// The log is deterministic: it never reads the wall clock and never
// draws randomness. Checkpoint age is measured in records (LastSeq -
// CheckpointSeq), not seconds, so two logs fed the same operations are
// byte-identical.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// FsyncPolicy selects when appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append.
	FsyncAlways FsyncPolicy = iota
	// FsyncEveryN syncs after every N unsynced appends.
	FsyncEveryN
	// FsyncOS never syncs explicitly; the OS page cache decides.
	FsyncOS
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncEveryN:
		return "every-n"
	case FsyncOS:
		return "os"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy resolves the operator-facing policy names.
func ParseFsyncPolicy(name string) (FsyncPolicy, error) {
	switch name {
	case "always":
		return FsyncAlways, nil
	case "every-n":
		return FsyncEveryN, nil
	case "os":
		return FsyncOS, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, every-n or os)", name)
	}
}

const (
	headerLen = 16

	// DefaultSegmentBytes rotates segments at 4 MiB.
	DefaultSegmentBytes = 4 << 20
	// DefaultMaxRecordBytes bounds a single record's body; a length
	// field beyond it is treated as corruption on replay.
	DefaultMaxRecordBytes = 1 << 20
	// DefaultRetainCheckpoints keeps the newest two checkpoints: the
	// segments between them stay on disk, so a checkpoint that turns
	// out corrupt on the next boot still has a full replay path from
	// its predecessor.
	DefaultRetainCheckpoints = 2

	segPrefix  = "wal-"
	segSuffix  = ".log"
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
	tmpSuffix  = ".tmp"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// ErrRecordTooLarge is returned by Append when the payload exceeds the
// configured bound.
var ErrRecordTooLarge = errors.New("wal: record exceeds MaxRecordBytes")

// Options configures a log. The zero value of every field except FS
// selects a default; FS is required.
type Options struct {
	// FS is the storage seam. Use DirFS for a real directory, NewMemFS
	// in tests, or the fault package's crash injector.
	FS FS
	// Fsync is the durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncEvery is the unsynced-append bound under FsyncEveryN;
	// values below 1 mean 1 (equivalent to FsyncAlways).
	FsyncEvery int
	// SegmentBytes rotates the active segment when it would exceed
	// this size; 0 selects DefaultSegmentBytes.
	SegmentBytes int64
	// MaxRecordBytes bounds one record body; 0 selects
	// DefaultMaxRecordBytes.
	MaxRecordBytes int
	// RetainCheckpoints keeps the newest N checkpoints (and the
	// segments needed to replay from the oldest retained one); values
	// below 1 select DefaultRetainCheckpoints.
	RetainCheckpoints int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = DefaultMaxRecordBytes
	}
	if o.RetainCheckpoints < 1 {
		o.RetainCheckpoints = DefaultRetainCheckpoints
	}
	if o.FsyncEvery < 1 {
		o.FsyncEvery = 1
	}
	return o
}

// Record is one recovered log entry.
type Record struct {
	Seq     uint64
	Payload []byte
}

// Recovered is the recovery report: what Open found, replayed and
// discarded.
type Recovered struct {
	// CheckpointSeq is the sequence the recovered checkpoint covers (0
	// when no checkpoint was found).
	CheckpointSeq uint64
	// Records counts intact records recovered past the checkpoint.
	Records int
	// Truncated counts bytes discarded at the first bad frame — a torn
	// tail after a crash, or corruption.
	Truncated int
	// CorruptCheckpoints counts checkpoint files that failed
	// verification and were skipped (recovery fell back to an older
	// checkpoint, or to a full replay).
	CorruptCheckpoints int
}

// Recovery is Open's full result: the checkpoint payload to restore,
// the records to replay on top, and the report.
type Recovery struct {
	// Checkpoint is the newest valid checkpoint's payload (nil when
	// none was found); CheckpointSeq is in the Report.
	Checkpoint []byte
	// Records are the intact records after the checkpoint, in order.
	Records []Record
	Report  Recovered
}

// segMeta is one segment's identity: its file name and the sequence of
// its first record.
type segMeta struct {
	name     string
	firstSeq uint64
}

// Log is an open write-ahead log. Safe for concurrent use; appends
// serialise on an internal mutex.
type Log struct {
	opts Options

	mu      sync.Mutex
	closed  bool
	failed  error // sticky write/sync failure; set once, rejects all later appends
	lastSeq uint64
	ckptSeq uint64

	segs        []segMeta // on-disk segments, oldest first (active last)
	active      File      // nil until the first append needs it
	activeBytes int64
	unsynced    int

	report Recovered

	// Counters for State / metrics.
	appends      uint64
	appendErrors uint64
	fsyncs       uint64
	checkpoints  uint64
}

// Open recovers the log in opts.FS and returns it ready for appends,
// together with everything the caller must restore and replay. The
// torn tail, if any, is physically truncated so new appends continue
// from the last intact frame.
func Open(opts Options) (*Log, *Recovery, error) {
	if opts.FS == nil {
		return nil, nil, errors.New("wal: Options.FS is required")
	}
	l := &Log{opts: opts.withDefaults()}
	rec, err := l.recover()
	if err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

// segName renders the segment file name for its first sequence.
func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix)
}

// ckptName renders the checkpoint file name for its covering sequence.
func ckptName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", ckptPrefix, seq, ckptSuffix)
}

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	raw := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	seq, err := strconv.ParseUint(raw, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// frame renders one record frame. The returned slice is written in a
// single Write call — the crash-atomicity contract with the FS.
func frame(seq uint64, body []byte) []byte {
	buf := make([]byte, headerLen+len(body))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	copy(buf[headerLen:], body)
	crc := crc32.ChecksumIEEE(buf[8 : headerLen+len(body)])
	binary.LittleEndian.PutUint32(buf[4:8], crc)
	return buf
}

// parseFrame decodes the frame at buf[off:]. ok is false when the
// bytes do not contain one intact frame (short header, short body,
// insane length, CRC mismatch).
func parseFrame(buf []byte, off int, maxBody int) (seq uint64, body []byte, next int, ok bool) {
	if off+headerLen > len(buf) {
		return 0, nil, 0, false
	}
	bodyLen := int(binary.LittleEndian.Uint32(buf[off : off+4]))
	if bodyLen > maxBody || off+headerLen+bodyLen > len(buf) {
		return 0, nil, 0, false
	}
	wantCRC := binary.LittleEndian.Uint32(buf[off+4 : off+8])
	end := off + headerLen + bodyLen
	if crc32.ChecksumIEEE(buf[off+8:end]) != wantCRC {
		return 0, nil, 0, false
	}
	seq = binary.LittleEndian.Uint64(buf[off+8 : off+16])
	return seq, buf[off+headerLen : end], end, true
}

// Append logs one record and returns its sequence number, honouring
// the fsync policy before returning — a nil error under FsyncAlways
// means the record is on stable storage. A storage failure is sticky:
// the log refuses all further appends, so callers can reject writes
// instead of acknowledging them into a black hole.
//
// A non-nil error after the frame was written (a failed post-write
// fsync) is a REJECTION, not proof of absence: the bytes may have
// reached disk anyway, and recovery will replay the record if they
// did. See the package documentation's at-least-once boundary — the
// sticky failure bounds the ambiguity to the final pre-failure append.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.failed != nil {
		l.appendErrors++
		return 0, fmt.Errorf("wal: log failed earlier: %w", l.failed)
	}
	if len(payload) > l.opts.MaxRecordBytes {
		l.appendErrors++
		return 0, fmt.Errorf("%w: %d > %d bytes", ErrRecordTooLarge, len(payload), l.opts.MaxRecordBytes)
	}
	seq := l.lastSeq + 1
	buf := frame(seq, payload)
	if err := l.ensureActive(seq, int64(len(buf))); err != nil {
		l.appendErrors++
		l.failed = err
		return 0, err
	}
	if _, err := l.active.Write(buf); err != nil {
		// The frame may be torn on disk; recovery will truncate it.
		l.appendErrors++
		l.failed = fmt.Errorf("wal: appending record %d: %w", seq, err)
		return 0, l.failed
	}
	l.lastSeq = seq
	l.activeBytes += int64(len(buf))
	l.appends++
	l.unsynced++
	if l.opts.Fsync == FsyncAlways || (l.opts.Fsync == FsyncEveryN && l.unsynced >= l.opts.FsyncEvery) {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// ensureActive makes sure an active segment with room for frameLen
// bytes is open, rotating when the current one would overflow. Caller
// holds mu.
func (l *Log) ensureActive(nextSeq uint64, frameLen int64) error {
	if l.active != nil && l.activeBytes > 0 && l.activeBytes+frameLen > l.opts.SegmentBytes {
		// Rotation seals the old segment: sync it regardless of policy
		// so sealed segments are always stable, then start a new one.
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.active.Close(); err != nil {
			return fmt.Errorf("wal: sealing segment: %w", err)
		}
		l.active = nil
		l.activeBytes = 0
	}
	if l.active == nil {
		name := segName(nextSeq)
		f, err := l.opts.FS.Create(name)
		if err != nil {
			return fmt.Errorf("wal: creating segment %s: %w", name, err)
		}
		// The segment's directory entry must reach stable storage before
		// any record in it is acknowledged: on a power cut an unsynced
		// entry can vanish with the whole file, fsynced contents and all.
		if err := l.opts.FS.SyncDir(); err != nil {
			f.Close()
			return fmt.Errorf("wal: publishing segment %s: %w", name, err)
		}
		l.active = f
		l.activeBytes = 0
		l.segs = append(l.segs, segMeta{name: name, firstSeq: nextSeq})
	}
	return nil
}

// Sync forces unsynced appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.active == nil || l.unsynced == 0 {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		// A failed fsync means the kernel may have dropped dirty pages;
		// the only safe reaction is to stop acknowledging writes.
		l.failed = fmt.Errorf("wal: fsync: %w", err)
		return l.failed
	}
	l.unsynced = 0
	l.fsyncs++
	return nil
}

// Checkpoint records payload as the materialised state covering every
// record appended so far, then prunes checkpoints and segments no
// retained checkpoint needs. The write is atomic (temp file, sync,
// rename), so a crash mid-checkpoint leaves the previous one intact.
func (l *Log) Checkpoint(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	// Everything the checkpoint covers must be stable before the
	// checkpoint claims to cover it.
	if err := l.syncLocked(); err != nil {
		return err
	}
	seq := l.lastSeq
	tmp := ckptName(seq) + tmpSuffix
	f, err := l.opts.FS.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: creating checkpoint: %w", err)
	}
	if _, err := f.Write(frame(seq, payload)); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing checkpoint %d: %w", seq, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing checkpoint %d: %w", seq, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: closing checkpoint %d: %w", seq, err)
	}
	if err := l.opts.FS.Rename(tmp, ckptName(seq)); err != nil {
		return fmt.Errorf("wal: publishing checkpoint %d: %w", seq, err)
	}
	// The rename itself is directory metadata: until the directory is
	// synced, a power cut can roll the entry back to the old checkpoint
	// (harmless) or to the bare .tmp (which recovery skips) — but the
	// caller is about to rely on this checkpoint, so make it stick.
	if err := l.opts.FS.SyncDir(); err != nil {
		return fmt.Errorf("wal: syncing checkpoint %d rename: %w", seq, err)
	}
	l.ckptSeq = seq
	l.checkpoints++
	l.pruneLocked()
	return nil
}

// pruneLocked deletes checkpoints beyond the retention bound and
// segments every retained checkpoint already covers. Deletion failures
// are ignored: a leftover file costs disk, not correctness, and the
// next checkpoint retries. Caller holds mu.
func (l *Log) pruneLocked() {
	names, err := l.opts.FS.List()
	if err != nil {
		return
	}
	var ckpts []uint64
	for _, name := range names {
		if seq, ok := parseSeq(name, ckptPrefix, ckptSuffix); ok {
			ckpts = append(ckpts, seq)
		}
	}
	sort.Slice(ckpts, func(a, b int) bool { return ckpts[a] > ckpts[b] })
	removed := false
	if len(ckpts) > l.opts.RetainCheckpoints {
		for _, seq := range ckpts[l.opts.RetainCheckpoints:] {
			//lint:ignore dropped-error pruning is advisory: a leftover checkpoint file is retried next time
			_ = l.opts.FS.Remove(ckptName(seq))
			removed = true
		}
		ckpts = ckpts[:l.opts.RetainCheckpoints]
	}
	if len(ckpts) == 0 {
		return
	}
	oldest := ckpts[len(ckpts)-1]
	// A non-active segment is removable when the next segment starts
	// at or below oldest+1 — every record in it is ≤ oldest, hence
	// materialised in all retained checkpoints.
	keep := l.segs[:0]
	for i, sm := range l.segs {
		last := i == len(l.segs)-1
		if !last && l.segs[i+1].firstSeq <= oldest+1 {
			//lint:ignore dropped-error pruning is advisory: a leftover segment is retried next time
			_ = l.opts.FS.Remove(sm.name)
			removed = true
			continue
		}
		keep = append(keep, sm)
	}
	l.segs = keep
	if removed {
		// Make the removals stick; advisory like the removals themselves
		// (a resurrected pruned file is re-pruned on the next checkpoint).
		//lint:ignore dropped-error pruning is advisory: a leftover directory entry is retried next time
		_ = l.opts.FS.SyncDir()
	}
}

// Close flushes and closes the log. Further operations return
// ErrClosed. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.active == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.active.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: closing active segment: %w", cerr)
	}
	l.active = nil
	return err
}

// LastSeq returns the sequence of the newest appended record (0 when
// the log is empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// State is the log's observable shape for /debug/wal and the
// recsys_wal_* metrics.
type State struct {
	Fsync         string `json:"fsync"`
	LastSeq       uint64 `json:"last_seq"`
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	// CheckpointAge is the replay length a crash right now would pay:
	// records appended since the last checkpoint.
	CheckpointAge uint64 `json:"checkpoint_age"`
	Segments      int    `json:"segments"`
	ActiveBytes   int64  `json:"active_segment_bytes"`
	Appends       uint64 `json:"appends"`
	AppendErrors  uint64 `json:"append_errors,omitempty"`
	Fsyncs        uint64 `json:"fsyncs"`
	Checkpoints   uint64 `json:"checkpoints"`
	Failed        bool   `json:"failed,omitempty"`
	// Recovery report from this process's Open.
	RecoveredRecords   int    `json:"recovered_records"`
	RecoveredTruncated int    `json:"recovered_truncated_bytes,omitempty"`
	RecoveredFromSeq   uint64 `json:"recovered_from_seq,omitempty"`
	CorruptCheckpoints int    `json:"corrupt_checkpoints,omitempty"`
}

// State snapshots the log's counters.
func (l *Log) State() State {
	l.mu.Lock()
	defer l.mu.Unlock()
	return State{
		Fsync:              l.opts.Fsync.String(),
		LastSeq:            l.lastSeq,
		CheckpointSeq:      l.ckptSeq,
		CheckpointAge:      l.lastSeq - l.ckptSeq,
		Segments:           len(l.segs),
		ActiveBytes:        l.activeBytes,
		Appends:            l.appends,
		AppendErrors:       l.appendErrors,
		Fsyncs:             l.fsyncs,
		Checkpoints:        l.checkpoints,
		Failed:             l.failed != nil,
		RecoveredRecords:   l.report.Records,
		RecoveredTruncated: l.report.Truncated,
		RecoveredFromSeq:   l.report.CheckpointSeq,
		CorruptCheckpoints: l.report.CorruptCheckpoints,
	}
}
