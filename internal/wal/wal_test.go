package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, opts Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		seq, err := l.Append([]byte(fmt.Sprintf("record-%04d", i)))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if want := uint64(i + 1); seq != want {
			t.Fatalf("Append %d: seq = %d, want %d", i, seq, want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	fs := NewMemFS()
	l, rec := mustOpen(t, Options{FS: fs})
	if rec.Checkpoint != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh log recovered %d records, checkpoint %v", len(rec.Records), rec.Checkpoint)
	}
	appendN(t, l, 0, 25)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := mustOpen(t, Options{FS: fs})
	defer l2.Close()
	if len(rec2.Records) != 25 {
		t.Fatalf("recovered %d records, want 25", len(rec2.Records))
	}
	for i, r := range rec2.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d, want %d", i, r.Seq, i+1)
		}
		if want := fmt.Sprintf("record-%04d", i); string(r.Payload) != want {
			t.Fatalf("record %d: payload %q, want %q", i, r.Payload, want)
		}
	}
	if l2.LastSeq() != 25 {
		t.Fatalf("LastSeq = %d, want 25", l2.LastSeq())
	}
	// Appends continue from the recovered sequence.
	seq, err := l2.Append([]byte("after"))
	if err != nil || seq != 26 {
		t.Fatalf("Append after recovery: seq %d err %v, want 26 nil", seq, err)
	}
}

func TestCheckpointBoundsReplay(t *testing.T) {
	fs := NewMemFS()
	l, _ := mustOpen(t, Options{FS: fs})
	appendN(t, l, 0, 10)
	if err := l.Checkpoint([]byte("state@10")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	appendN(t, l, 10, 5)
	l.Close()

	l2, rec := mustOpen(t, Options{FS: fs})
	defer l2.Close()
	if string(rec.Checkpoint) != "state@10" {
		t.Fatalf("checkpoint payload = %q", rec.Checkpoint)
	}
	if rec.Report.CheckpointSeq != 10 {
		t.Fatalf("CheckpointSeq = %d, want 10", rec.Report.CheckpointSeq)
	}
	if len(rec.Records) != 5 || rec.Records[0].Seq != 11 || rec.Records[4].Seq != 15 {
		t.Fatalf("replayed records %+v, want seqs 11..15", rec.Records)
	}
}

func TestCheckpointAtZeroOnEmptyLog(t *testing.T) {
	fs := NewMemFS()
	l, _ := mustOpen(t, Options{FS: fs})
	if err := l.Checkpoint([]byte("baseline")); err != nil {
		t.Fatalf("baseline checkpoint: %v", err)
	}
	l.Close()
	l2, rec := mustOpen(t, Options{FS: fs})
	defer l2.Close()
	if string(rec.Checkpoint) != "baseline" || rec.Report.CheckpointSeq != 0 {
		t.Fatalf("recovered %q at seq %d, want baseline at 0", rec.Checkpoint, rec.Report.CheckpointSeq)
	}
}

// TestTornTailEveryByte is the heart of the crash model: a crash can
// cut the log at any byte. For every possible cut point inside the
// final frame, recovery must yield exactly the records before it.
func TestTornTailEveryByte(t *testing.T) {
	fs := NewMemFS()
	l, _ := mustOpen(t, Options{FS: fs})
	appendN(t, l, 0, 3)
	l.Close()
	full := fs.Snapshot()

	segname := segName(1)
	data := full[segname]
	frameLen := len(data) / 3
	if len(data)%3 != 0 {
		t.Fatalf("segment %d bytes not divisible by 3 frames", len(data))
	}

	// Cut everywhere inside the last frame (and exactly at its start).
	for cut := 2 * frameLen; cut < len(data); cut++ {
		fs.Restore(full)
		fs.Restore(map[string][]byte{segname: data[:cut]})

		l2, rec, err := Open(Options{FS: fs})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if len(rec.Records) != 2 {
			t.Fatalf("cut %d: recovered %d records, want 2", cut, len(rec.Records))
		}
		if want := cut - 2*frameLen; rec.Report.Truncated != want {
			t.Fatalf("cut %d: Truncated = %d, want %d", cut, rec.Report.Truncated, want)
		}
		// The torn bytes must be physically gone: appending then
		// reopening yields 3 records again, with the new one as seq 3.
		if _, err := l2.Append([]byte("replacement")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		l2.Close()
		l3, rec3, err := Open(Options{FS: fs})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if len(rec3.Records) != 3 || string(rec3.Records[2].Payload) != "replacement" {
			t.Fatalf("cut %d: after re-append recovered %d records (last %q)", cut, len(rec3.Records), rec3.Records[len(rec3.Records)-1].Payload)
		}
		l3.Close()
	}
}

func TestCorruptMiddleRecordTruncatesRest(t *testing.T) {
	fs := NewMemFS()
	l, _ := mustOpen(t, Options{FS: fs})
	appendN(t, l, 0, 5)
	l.Close()

	segname := segName(1)
	data := fs.Snapshot()[segname]
	frameLen := len(data) / 5
	// Flip one payload byte in frame 3 (index 2).
	data[2*frameLen+headerLen] ^= 0xff
	fs.Restore(map[string][]byte{segname: data})

	l2, rec := mustOpen(t, Options{FS: fs})
	defer l2.Close()
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records, want 2 (corruption kills the suffix)", len(rec.Records))
	}
	if rec.Report.Truncated != 3*frameLen {
		t.Fatalf("Truncated = %d, want %d", rec.Report.Truncated, 3*frameLen)
	}
	if l2.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2", l2.LastSeq())
	}
}

func TestCorruptCheckpointFallsBackToOlder(t *testing.T) {
	fs := NewMemFS()
	l, _ := mustOpen(t, Options{FS: fs})
	appendN(t, l, 0, 4)
	if err := l.Checkpoint([]byte("old")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4, 4)
	if err := l.Checkpoint([]byte("new")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 8, 2)
	l.Close()

	// Corrupt the newest checkpoint.
	snap := fs.Snapshot()
	newest := snap[ckptName(8)]
	newest[len(newest)-1] ^= 0xff
	fs.Restore(snap)

	l2, rec := mustOpen(t, Options{FS: fs})
	defer l2.Close()
	if string(rec.Checkpoint) != "old" || rec.Report.CheckpointSeq != 4 {
		t.Fatalf("fell back to %q@%d, want old@4", rec.Checkpoint, rec.Report.CheckpointSeq)
	}
	if rec.Report.CorruptCheckpoints != 1 {
		t.Fatalf("CorruptCheckpoints = %d, want 1", rec.Report.CorruptCheckpoints)
	}
	// Replay covers everything after the older checkpoint: 5..10.
	if len(rec.Records) != 6 || rec.Records[0].Seq != 5 {
		t.Fatalf("replayed %d records from %d, want 6 from 5", len(rec.Records), rec.Records[0].Seq)
	}
	// The corrupt file is gone.
	if _, err := fs.ReadFile(ckptName(8)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt checkpoint still present: %v", err)
	}
}

func TestSegmentRotationAndPruning(t *testing.T) {
	fs := NewMemFS()
	// Tiny segments: ~3 records each (frame = 16 + 11 payload = 27B).
	opts := Options{FS: fs, SegmentBytes: 85}
	l, _ := mustOpen(t, opts)
	appendN(t, l, 0, 12)
	if st := l.State(); st.Segments < 3 {
		t.Fatalf("Segments = %d, want rotation to have produced ≥3", st.Segments)
	}
	// Two checkpoints at the tail: segments fully below the OLDER
	// retained checkpoint get pruned.
	if err := l.Checkpoint([]byte("a")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 12, 3)
	if err := l.Checkpoint([]byte("b")); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List()
	var segCount, ckptCount int
	for _, n := range names {
		if _, ok := parseSeq(n, segPrefix, segSuffix); ok {
			segCount++
		}
		if _, ok := parseSeq(n, ckptPrefix, ckptSuffix); ok {
			ckptCount++
		}
	}
	if ckptCount != 2 {
		t.Fatalf("%d checkpoints on disk, want 2 retained", ckptCount)
	}
	if segCount > 2 {
		t.Fatalf("%d segments on disk after pruning, want ≤2 (have: %v)", segCount, names)
	}
	l.Close()

	// Recovery across segment boundaries still replays 15..15? no:
	// checkpoint b covers seq 15, so replay is empty.
	l2, rec := mustOpen(t, Options{FS: fs})
	defer l2.Close()
	if string(rec.Checkpoint) != "b" || len(rec.Records) != 0 {
		t.Fatalf("recovered %q + %d records, want b + 0", rec.Checkpoint, len(rec.Records))
	}
	if l2.LastSeq() != 15 {
		t.Fatalf("LastSeq = %d, want 15", l2.LastSeq())
	}
}

func TestRecoveryAcrossSegmentBoundary(t *testing.T) {
	fs := NewMemFS()
	l, _ := mustOpen(t, Options{FS: fs, SegmentBytes: 85})
	appendN(t, l, 0, 10)
	l.Close()

	l2, rec := mustOpen(t, Options{FS: fs, SegmentBytes: 85})
	defer l2.Close()
	if len(rec.Records) != 10 {
		t.Fatalf("recovered %d records across segments, want 10", len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
}

func TestFsyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		l, _ := mustOpen(t, Options{FS: NewMemFS(), Fsync: FsyncAlways})
		defer l.Close()
		appendN(t, l, 0, 5)
		if st := l.State(); st.Fsyncs != 5 {
			t.Fatalf("Fsyncs = %d, want 5", st.Fsyncs)
		}
	})
	t.Run("every-n", func(t *testing.T) {
		l, _ := mustOpen(t, Options{FS: NewMemFS(), Fsync: FsyncEveryN, FsyncEvery: 3})
		defer l.Close()
		appendN(t, l, 0, 7)
		if st := l.State(); st.Fsyncs != 2 {
			t.Fatalf("Fsyncs = %d, want 2 (after records 3 and 6)", st.Fsyncs)
		}
	})
	t.Run("os", func(t *testing.T) {
		l, _ := mustOpen(t, Options{FS: NewMemFS(), Fsync: FsyncOS})
		appendN(t, l, 0, 5)
		if st := l.State(); st.Fsyncs != 0 {
			t.Fatalf("Fsyncs = %d, want 0 before close", st.Fsyncs)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"every-n", FsyncEveryN, true},
		{"os", FsyncOS, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseFsyncPolicy(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncEveryN, FsyncOS} {
		back, err := ParseFsyncPolicy(p.String())
		if err != nil || back != p {
			t.Errorf("round-trip %v: %v, %v", p, back, err)
		}
	}
}

func TestRecordTooLarge(t *testing.T) {
	l, _ := mustOpen(t, Options{FS: NewMemFS(), MaxRecordBytes: 8})
	defer l.Close()
	if _, err := l.Append(make([]byte, 9)); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
	if _, err := l.Append(make([]byte, 8)); err != nil {
		t.Fatalf("boundary append failed: %v", err)
	}
	if st := l.State(); st.AppendErrors != 1 {
		t.Fatalf("AppendErrors = %d, want 1", st.AppendErrors)
	}
}

func TestClosedLog(t *testing.T) {
	l, _ := mustOpen(t, Options{FS: NewMemFS()})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close: %v", err)
	}
	if err := l.Checkpoint(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after close: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after close: %v", err)
	}
}

func TestCrashMidCheckpointKeepsPrevious(t *testing.T) {
	fs := NewMemFS()
	l, _ := mustOpen(t, Options{FS: fs})
	appendN(t, l, 0, 3)
	if err := l.Checkpoint([]byte("good")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Simulate a crash mid-checkpoint: a half-written temp file.
	snap := fs.Snapshot()
	snap[ckptName(5)+tmpSuffix] = []byte("partial garbage")
	fs.Restore(snap)

	l2, rec := mustOpen(t, Options{FS: fs})
	defer l2.Close()
	if string(rec.Checkpoint) != "good" {
		t.Fatalf("recovered checkpoint %q, want good", rec.Checkpoint)
	}
	// The temp file was cleaned up.
	if _, err := fs.ReadFile(ckptName(5) + tmpSuffix); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp checkpoint survived: %v", err)
	}
}

func TestStateCounters(t *testing.T) {
	fs := NewMemFS()
	l, _ := mustOpen(t, Options{FS: fs})
	appendN(t, l, 0, 7)
	if err := l.Checkpoint([]byte("s")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 7, 3)
	st := l.State()
	if st.Appends != 10 || st.LastSeq != 10 || st.CheckpointSeq != 7 || st.CheckpointAge != 3 || st.Checkpoints != 1 {
		t.Fatalf("state = %+v", st)
	}
	l.Close()

	l2, _ := mustOpen(t, Options{FS: fs})
	defer l2.Close()
	st2 := l2.State()
	if st2.RecoveredRecords != 3 || st2.RecoveredFromSeq != 7 || st2.LastSeq != 10 {
		t.Fatalf("post-recovery state = %+v", st2)
	}
}

func TestDirFS(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	fs, err := DirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := mustOpen(t, Options{FS: fs, Fsync: FsyncAlways})
	appendN(t, l, 0, 8)
	if err := l.Checkpoint([]byte("on-disk")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 8, 2)
	l.Close()

	fs2, err := DirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, Options{FS: fs2})
	defer l2.Close()
	if string(rec.Checkpoint) != "on-disk" || len(rec.Records) != 2 {
		t.Fatalf("recovered %q + %d records", rec.Checkpoint, len(rec.Records))
	}

	// Torn tail on the real filesystem: chop the last 5 bytes.
	l2.Close()
	segs, _ := fs2.List()
	var tail string
	for _, n := range segs {
		if _, ok := parseSeq(n, segPrefix, segSuffix); ok {
			tail = n // sorted; last wins
		}
	}
	data, _ := fs2.ReadFile(tail)
	if err := os.WriteFile(filepath.Join(dir, tail), data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	fs3, _ := DirFS(dir)
	l3, rec3 := mustOpen(t, Options{FS: fs3})
	defer l3.Close()
	if rec3.Report.Truncated == 0 {
		t.Fatal("expected torn-tail truncation on DirFS")
	}
	if len(rec3.Records) != 1 {
		t.Fatalf("recovered %d records after tear, want 1", len(rec3.Records))
	}
}

func TestDeterministicBytes(t *testing.T) {
	run := func() map[string][]byte {
		fs := NewMemFS()
		l, _ := mustOpen(t, Options{FS: fs, SegmentBytes: 120})
		appendN(t, l, 0, 9)
		if err := l.Checkpoint([]byte("ckpt")); err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 9, 4)
		l.Close()
		return fs.Snapshot()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different file sets: %d vs %d", len(a), len(b))
	}
	for name, data := range a {
		if !bytes.Equal(data, b[name]) {
			t.Fatalf("file %s differs between identical runs", name)
		}
	}
}
